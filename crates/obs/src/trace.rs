//! Span-based query tracing.
//!
//! A [`QueryTrace`] is minted at the edge (the LB, or the TSDB HTTP API when
//! hit directly) and travels across processes as a plain ID in the
//! `x-ceems-trace-id` header ([`crate::TRACE_HEADER`]). Within a process it is
//! carried implicitly through a thread-local "current trace" so deep layers
//! (the PromQL evaluator, the storage select path) can attach stage timings
//! and work counts without threading a context argument through every
//! signature. Parallel fan-out sites re-enter the parent trace on their worker
//! threads via [`enter`].
//!
//! All recording is O(1)-ish and lock-held-briefly; when no trace is active
//! ([`current`] is `None`) the instrumented code paths skip recording
//! entirely, so untraced queries pay only a thread-local read.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One completed stage: a named wall-time interval within the trace.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stage name (e.g. `parse`, `eval`, `lb_auth`).
    pub name: String,
    /// Wall time spent in the stage, in milliseconds.
    pub ms: f64,
}

/// A finished-trace snapshot: everything needed to render the breakdown.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// The trace ID (minted or accepted from the propagation header).
    pub id: String,
    /// Total wall time since the trace began, in milliseconds.
    pub total_ms: f64,
    /// Completed stages in completion order.
    pub stages: Vec<StageReport>,
    /// Work counts accumulated across all stages (series touched, samples
    /// decoded, steps fanned out, ...).
    pub counts: BTreeMap<&'static str, u64>,
}

impl TraceReport {
    /// Renders the report as the `data.trace` JSON object every traced
    /// endpoint returns: `traceId`, `totalMs`, `stages` (name/ms pairs in
    /// completion order) and `counts`.
    pub fn to_json(&self) -> serde_json::Value {
        let stages: Vec<serde_json::Value> = self
            .stages
            .iter()
            .map(|s| serde_json::json!({"name": s.name, "ms": s.ms}))
            .collect();
        let counts: serde_json::Map<String, serde_json::Value> = self
            .counts
            .iter()
            .map(|(k, v)| ((*k).to_string(), serde_json::json!(*v)))
            .collect();
        serde_json::json!({
            "traceId": self.id,
            "totalMs": self.total_ms,
            "stages": stages,
            "counts": counts,
        })
    }
}

struct TraceInner {
    id: String,
    start: Instant,
    stages: Mutex<Vec<StageReport>>,
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

/// A shareable, thread-safe query trace. Clones share state.
#[derive(Clone)]
pub struct QueryTrace {
    inner: Arc<TraceInner>,
}

impl QueryTrace {
    /// Starts a trace, accepting an upstream ID or minting a fresh one.
    pub fn begin(upstream_id: Option<&str>) -> QueryTrace {
        let id = match upstream_id {
            Some(s) if !s.is_empty() => s.to_string(),
            _ => mint_id(),
        };
        QueryTrace {
            inner: Arc::new(TraceInner {
                id,
                start: Instant::now(),
                stages: Mutex::new(Vec::new()),
                counts: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The trace ID.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Opens a named stage; its wall time is recorded when the guard drops.
    pub fn stage(&self, name: &'static str) -> StageGuard {
        StageGuard {
            trace: self.clone(),
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Records an already-measured stage duration.
    pub fn record_stage_ms(&self, name: impl Into<String>, ms: f64) {
        self.inner.stages.lock().push(StageReport {
            name: name.into(),
            ms,
        });
    }

    /// Adds `n` to a named work count.
    pub fn add_count(&self, key: &'static str, n: u64) {
        *self.inner.counts.lock().entry(key).or_insert(0) += n;
    }

    /// Milliseconds since the trace began.
    pub fn total_ms(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Snapshots the trace for rendering.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            id: self.inner.id.clone(),
            total_ms: self.total_ms(),
            stages: self.inner.stages.lock().clone(),
            counts: self.inner.counts.lock().clone(),
        }
    }
}

/// Records the stage's wall time into the trace on drop.
pub struct StageGuard {
    trace: QueryTrace,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl StageGuard {
    /// Ends the stage now (instead of at scope exit).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.done {
            self.done = true;
            self.trace
                .record_stage_ms(self.name, self.start.elapsed().as_secs_f64() * 1000.0);
        }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        self.close();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<QueryTrace>> = const { RefCell::new(None) };
}

/// The trace active on this thread, if any.
pub fn current() -> Option<QueryTrace> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Makes `trace` the current trace for this thread until the returned guard
/// drops (the previous current trace, if any, is restored). Fan-out sites
/// call this on worker threads with the parent's trace.
pub fn enter(trace: Option<QueryTrace>) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().take());
    CURRENT.with(|c| *c.borrow_mut() = trace);
    CurrentGuard { prev }
}

/// Restores the previously-current trace on drop.
pub struct CurrentGuard {
    prev: Option<QueryTrace>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Mints a 16-hex-char trace ID: wall clock + pid + a process-wide counter,
/// mixed through the std hasher. Unique enough to correlate log lines.
pub fn mint_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    SEQ.fetch_add(1, Ordering::Relaxed).hash(&mut h);
    if let Ok(d) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        d.subsec_nanos().hash(&mut h);
        d.as_secs().hash(&mut h);
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_and_counts_accumulate() {
        let t = QueryTrace::begin(None);
        {
            let _s = t.stage("parse");
        }
        let s = t.stage("eval");
        t.add_count("series", 5);
        t.add_count("series", 2);
        t.add_count("steps", 10);
        s.finish();
        let r = t.report();
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].name, "parse");
        assert_eq!(r.stages[1].name, "eval");
        assert_eq!(r.counts["series"], 7);
        assert_eq!(r.counts["steps"], 10);
        let stage_sum: f64 = r.stages.iter().map(|s| s.ms).sum();
        assert!(stage_sum <= r.total_ms + 1e-6);
    }

    #[test]
    fn upstream_id_is_kept_and_minted_ids_differ() {
        let t = QueryTrace::begin(Some("deadbeef"));
        assert_eq!(t.id(), "deadbeef");
        let a = QueryTrace::begin(None);
        let b = QueryTrace::begin(None);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id().len(), 16);
    }

    #[test]
    fn thread_local_enter_nests_and_restores() {
        assert!(current().is_none());
        let outer = QueryTrace::begin(None);
        let g1 = enter(Some(outer.clone()));
        assert_eq!(current().unwrap().id(), outer.id());
        {
            let inner = QueryTrace::begin(None);
            let _g2 = enter(Some(inner.clone()));
            assert_eq!(current().unwrap().id(), inner.id());
        }
        assert_eq!(current().unwrap().id(), outer.id());
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn worker_threads_share_the_trace() {
        let t = QueryTrace::begin(None);
        let _g = enter(Some(t.clone()));
        let parent = current();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let parent = parent.clone();
                s.spawn(move || {
                    let _g = enter(parent);
                    current().unwrap().add_count("work", 1);
                });
            }
        });
        assert_eq!(t.report().counts["work"], 4);
    }
}
