//! Step-aligned, extent-based results cache.
//!
//! Keys combine the tenant, the *normalized* expression (so formatting
//! variants share entries), the step, the grid phase (`start mod step` —
//! two requests only share grid points when their phases match), and the
//! extent's exact step span. Interior extents of a split query always span
//! their full aligned window, so they are shared by any request that
//! covers that window on the same grid; boundary extents are reused by
//! repeats of the same request shape (the dominant dashboard-reload case).
//!
//! Values are immutable [`ExtentData`] snapshots of past results. The
//! frontend never inserts extents newer than `now − recent_window`, so
//! entries describe settled history and need no invalidation. A byte
//! budget bounds the cache; eviction is least-recently-used.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::split::ExtentData;

/// Cache key: one extent of one logical query shape for one tenant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExtentKey {
    /// Tenant (from `X-Grafana-User`; empty for anonymous).
    pub tenant: String,
    /// Normalized expression rendering.
    pub expr: String,
    /// Step width (ms).
    pub step_ms: i64,
    /// Grid phase: `start.rem_euclid(step)` (ms).
    pub phase_ms: i64,
    /// First step of the extent (ms).
    pub first_step_ms: i64,
    /// Last step of the extent (ms).
    pub last_step_ms: i64,
}

struct Entry {
    data: Arc<ExtentData>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<ExtentKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// A byte-bounded LRU over extent results. `capacity_bytes == 0` disables
/// the cache (every lookup misses, inserts are dropped).
pub struct ResultsCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl ResultsCache {
    /// Creates a cache with the given byte budget.
    pub fn new(capacity_bytes: usize) -> ResultsCache {
        ResultsCache {
            capacity_bytes,
            inner: Mutex::new(Inner { map: HashMap::new(), bytes: 0, tick: 0 }),
        }
    }

    /// Current resident bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached extents.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches an extent, refreshing its recency.
    pub fn get(&self, key: &ExtentKey) -> Option<Arc<ExtentData>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.data.clone())
    }

    /// Inserts an extent, evicting least-recently-used entries if the byte
    /// budget overflows. Entries larger than the whole budget are dropped.
    pub fn put(&self, key: ExtentKey, data: Arc<ExtentData>) {
        let bytes = data.approx_bytes();
        if bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(key, Entry { data, bytes, last_used: tick }) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.capacity_bytes {
            // O(n) victim scan; entry counts stay small (each entry is a
            // whole extent, not a sample).
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.bytes -= e.bytes;
                    }
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::ExtentSeries;

    fn key(first: i64) -> ExtentKey {
        ExtentKey {
            tenant: "alice".into(),
            expr: "sum(x)".into(),
            step_ms: 15_000,
            phase_ms: 0,
            first_step_ms: first,
            last_step_ms: first + 60_000,
        }
    }

    fn data(samples: usize) -> Arc<ExtentData> {
        let series = ExtentSeries {
            metric: serde_json::json!({"__name__": "x"}),
            metric_key: "k".into(),
            samples: (0..samples as i64)
                .map(|i| (i * 15_000, serde_json::json!([i as f64 * 15.0, "1"])))
                .collect(),
        };
        Arc::new(ExtentData { series: vec![series] })
    }

    #[test]
    fn get_put_and_lru_eviction() {
        let one = data(10).approx_bytes();
        let cache = ResultsCache::new(one * 2 + one / 2); // room for 2
        cache.put(key(0), data(10));
        cache.put(key(1), data(10));
        assert!(cache.get(&key(0)).is_some());
        assert_eq!(cache.len(), 2);
        // Touch key(0) so key(1) is the LRU victim.
        cache.get(&key(0));
        cache.put(key(2), data(10));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn zero_budget_disables() {
        let cache = ResultsCache::new(0);
        cache.put(key(0), data(1));
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_entry_rejected() {
        let cache = ResultsCache::new(64);
        cache.put(key(0), data(1000));
        assert!(cache.is_empty());
    }
}
