//! Where the frontend sends the queries it cannot answer from cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ceems_http::resilience::RetryPolicy;
use ceems_http::{Client, Request, Response, Router};

/// A sink for sub-queries and passthrough requests. Implementations must be
/// callable from several fan-out threads at once.
pub trait Downstream: Send + Sync {
    /// Executes one request and returns the response, or a transport-level
    /// error message.
    fn forward(&self, req: &Request) -> Result<Response, String>;
}

/// HTTP downstream: round-robins requests over TSDB replica base URLs,
/// trying the next replica on transport failure. One full rotation through
/// the replicas counts as one attempt of the [`RetryPolicy`]: when every
/// replica refuses, the rotation is retried under jittered backoff (a
/// restarting replica often comes back within tens of milliseconds) until
/// the policy's attempts or deadline run out.
pub struct HttpDownstream {
    client: Client,
    replicas: Vec<String>,
    next: AtomicUsize,
    retry: RetryPolicy,
}

impl HttpDownstream {
    /// Creates a downstream over replica base URLs (no trailing slashes),
    /// with the default retry policy: 3 rotations, 10 → 200 ms backoff,
    /// 2 s total deadline.
    pub fn new(replicas: Vec<String>) -> HttpDownstream {
        assert!(!replicas.is_empty(), "need at least one replica URL");
        HttpDownstream {
            client: Client::new(),
            replicas,
            next: AtomicUsize::new(0),
            retry: RetryPolicy::new(3)
                .with_backoff(Duration::from_millis(10), Duration::from_millis(200))
                .with_deadline(Duration::from_secs(2)),
        }
    }

    /// Replaces the HTTP client (tests inject fault-plan-wrapped clients).
    pub fn with_client(mut self, client: Client) -> HttpDownstream {
        self.client = client;
        self
    }

    /// Replaces the retry policy ([`RetryPolicy::disabled`] for strict
    /// one-shot forwarding).
    pub fn with_retry(mut self, retry: RetryPolicy) -> HttpDownstream {
        self.retry = retry;
        self
    }
}

impl Downstream for HttpDownstream {
    fn forward(&self, req: &Request) -> Result<Response, String> {
        self.retry.run(|_attempt| {
            let start = self.next.fetch_add(1, Ordering::Relaxed);
            let mut last_err = String::new();
            for i in 0..self.replicas.len() {
                let base = &self.replicas[(start + i) % self.replicas.len()];
                let url = format!("{base}{}", req.path_and_query());
                let mut client = self.client.clone();
                for (name, value) in &req.headers {
                    client = client.with_header(name, value.clone());
                }
                match client.request(req.method, &url, req.body.clone(), req.header("content-type"))
                {
                    Ok(resp) => return Ok(resp),
                    Err(e) => last_err = e.to_string(),
                }
            }
            Err(last_err)
        })
    }
}

/// In-process downstream dispatching straight into a [`Router`] — used by
/// tests and benches to avoid socket round-trips, and by single-binary
/// deployments embedding the TSDB.
pub struct RouterDownstream {
    router: Arc<Router>,
}

impl RouterDownstream {
    /// Wraps a router (e.g. `ceems_tsdb::httpapi::api_router`).
    pub fn new(router: Router) -> RouterDownstream {
        RouterDownstream { router: Arc::new(router) }
    }
}

impl Downstream for RouterDownstream {
    fn forward(&self, req: &Request) -> Result<Response, String> {
        Ok(self.router.dispatch(req.clone()))
    }
}
