//! The query frontend proper: request classification, split/cache/merge
//! orchestration, per-tenant admission, and self-monitoring.
//!
//! `query_range` requests whose expression is split-safe are decomposed
//! into `split_interval`-aligned extents ([`crate::split`]); settled
//! extents are served from the results cache ([`crate::cache`]) and only
//! the uncovered remainder is fetched from the TSDB, in parallel. Anything
//! else — instant queries, label/series lookups, split-unsafe expressions
//! (`topk`, `offset`, …), malformed parameters — passes through to the
//! downstream verbatim, so error bodies and edge-case semantics stay
//! byte-identical to an unfronted deployment.
//!
//! Every query first takes a slot from the [`FairScheduler`]; tenants that
//! overflow their queue get `429 Too Many Requests` with a `Retry-After`
//! the shared `ceems-http` client knows how to honor.

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

use serde_json::{json, Value as Json};

use ceems_http::{HttpServer, Request, Response, Router, ServerConfig, Status, StreamWriter};
use ceems_metrics::{Counter, CounterVec, Gauge, GaugeVec, Histogram};
use ceems_obs::http::TRACE_STORED_HEADER;
use ceems_obs::trace::QueryTrace;
use ceems_obs::{HttpInstruments, Obs, TraceSink, TRACE_HEADER};
use ceems_tsdb::promql::{normalize, parse_expr, split_safety, SplitSafety};

use crate::cache::{ExtentKey, ResultsCache};
use crate::downstream::Downstream;
use crate::sched::{FairScheduler, SchedulerConfig};
use crate::split::{merge_extents, ms_to_secs_param, split_grid, Extent, ExtentData, StepGrid};

/// Clock supplying "now" in Unix milliseconds (the `recent_window`
/// reference point). Simulated deployments pass the simulation clock.
pub type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

/// Frontend tuning knobs. Times are milliseconds.
#[derive(Clone)]
pub struct QfeConfig {
    /// Split window width; sub-queries are aligned to multiples of this.
    pub split_interval_ms: i64,
    /// Results-cache budget in bytes; `0` disables caching.
    pub cache_bytes: usize,
    /// Results newer than `now − recent_window` are never cached (they may
    /// still change as ingestion catches up).
    pub recent_window_ms: i64,
    /// Admission limits.
    pub scheduler: SchedulerConfig,
    /// Maximum threads fanning out sub-queries for one request.
    pub max_fanout: usize,
    /// Clock for the `recent_window` horizon.
    pub now: NowFn,
    /// Trace sink (S22): when set, every split range query records its
    /// `qfe_cache`/`qfe_split` stages and offers the finished report;
    /// stored traces tag the response with [`TRACE_STORED_HEADER`].
    pub trace_sink: Option<Arc<TraceSink>>,
    /// Live `query_live` subscriptions allowed per tenant (S23); excess
    /// subscribers shed with `429 Too Many Requests`.
    pub max_live_per_tenant: usize,
    /// Per-tenant head-sampling rate overrides (`obs.tenant_sample_rates`).
    /// The effective rate is forwarded downstream in
    /// `x-ceems-trace-sample-rate` so every hop reaches the same sampling
    /// verdict. The reserved `__ceems_meta__` tenant is always pinned to
    /// 1.0 — self-monitoring traces are never sampled away.
    pub tenant_sample_rates: std::collections::BTreeMap<String, f64>,
    /// Staleness bound for degraded stale-cache serves (S24): when every
    /// replica is down and the freshest cached step is older than this,
    /// the frontend answers 502 instead of a silently ancient "success".
    /// `0` (the default) keeps the bound off.
    pub max_stale_ms: i64,
}

impl Default for QfeConfig {
    fn default() -> Self {
        QfeConfig {
            split_interval_ms: 86_400_000,
            cache_bytes: 64 << 20,
            recent_window_ms: 600_000,
            scheduler: SchedulerConfig::default(),
            max_fanout: 8,
            now: system_now(),
            trace_sink: None,
            max_live_per_tenant: 16,
            tenant_sample_rates: Default::default(),
            max_stale_ms: 0,
        }
    }
}

/// The wall clock as a [`NowFn`].
pub fn system_now() -> NowFn {
    Arc::new(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    })
}

struct QfeInstruments {
    cache_requests: CounterVec,
    cached_steps: Counter,
    fetched_steps: Counter,
    split_subqueries: Histogram,
    shed: Counter,
    fallbacks: Counter,
    stale_serves: Counter,
    queue_depth: GaugeVec,
    cache_bytes: Gauge,
    cache_extents: Gauge,
    live_subscribers: Gauge,
    live_deltas: Counter,
    live_shed: Counter,
}

impl QfeInstruments {
    fn new(obs: &Obs) -> QfeInstruments {
        QfeInstruments {
            cache_requests: obs.counter_vec(
                "ceems_qfe_cache_requests_total",
                "Range queries by cache outcome (hit, partial, miss, bypass, fallback, degraded).",
                &["outcome"],
            ),
            cached_steps: obs.counter(
                "ceems_qfe_cached_steps_total",
                "Grid steps served from the results cache.",
            ),
            fetched_steps: obs.counter(
                "ceems_qfe_fetched_steps_total",
                "Grid steps fetched from the TSDB.",
            ),
            split_subqueries: obs.histogram(
                "ceems_qfe_split_subqueries",
                "Extents per split range query (fan-out width).",
                vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            shed: obs.counter(
                "ceems_qfe_shed_total",
                "Queries refused with 429 because a tenant queue overflowed.",
            ),
            fallbacks: obs.counter(
                "ceems_qfe_downstream_fallback_total",
                "Split queries re-proxied whole after a sub-query failed.",
            ),
            stale_serves: obs.counter(
                "ceems_qfe_stale_serves_total",
                "Degraded answers built from cached extents because every replica was down.",
            ),
            queue_depth: obs.gauge_vec(
                "ceems_qfe_tenant_queue_depth",
                "Queries currently queued, per tenant.",
                &["tenant"],
            ),
            cache_bytes: obs.gauge(
                "ceems_qfe_cache_bytes",
                "Resident bytes in the results cache.",
            ),
            cache_extents: obs.gauge(
                "ceems_qfe_cache_extents",
                "Extents resident in the results cache.",
            ),
            live_subscribers: obs.gauge(
                "ceems_qfe_live_subscribers",
                "Open query_live subscriptions.",
            ),
            live_deltas: obs.counter(
                "ceems_qfe_live_deltas_total",
                "Step deltas pushed to live subscribers.",
            ),
            live_shed: obs.counter(
                "ceems_qfe_live_shed_total",
                "query_live subscriptions refused at the per-tenant cap.",
            ),
        }
    }
}

/// The query frontend. Construct with [`QueryFrontend::new`], then either
/// mount [`QueryFrontend::router`] behind a server or call
/// [`QueryFrontend::handle`] directly (in-process deployments, tests).
pub struct QueryFrontend {
    downstream: Arc<dyn Downstream>,
    cfg: QfeConfig,
    cache: ResultsCache,
    sched: Arc<FairScheduler>,
    obs: Obs,
    ins: QfeInstruments,
    http: HttpInstruments,
    live: Mutex<Vec<LiveSubscription>>,
}

/// One open `query_live` stream: the query re-renders on the step grid the
/// initial full render established, and each completed step past
/// `last_sent_step_ms` goes out as an SSE `delta` event.
struct LiveSubscription {
    tenant: String,
    query: String,
    step_ms: i64,
    last_sent_step_ms: i64,
    writer: StreamWriter,
}

impl QueryFrontend {
    /// Creates a frontend over a downstream.
    pub fn new(downstream: Arc<dyn Downstream>, cfg: QfeConfig) -> Arc<QueryFrontend> {
        let obs = Obs::new();
        let ins = QfeInstruments::new(&obs);
        let http = HttpInstruments::new("qfe", obs.registry());
        ceems_obs::register_build_info(obs.registry(), "qfe");
        Arc::new(QueryFrontend {
            downstream,
            cache: ResultsCache::new(cfg.cache_bytes),
            sched: FairScheduler::new(cfg.scheduler),
            cfg,
            obs,
            ins,
            http,
            live: Mutex::new(Vec::new()),
        })
    }

    /// The frontend's metrics registry (served at `/metrics`).
    pub fn registry(&self) -> &ceems_metrics::Registry {
        self.obs.registry()
    }

    /// The results cache (tests peek at residency).
    pub fn cache(&self) -> &ResultsCache {
        &self.cache
    }

    /// The admission scheduler (tests peek at shed counts).
    pub fn scheduler(&self) -> &Arc<FairScheduler> {
        &self.sched
    }

    /// Handles one request end to end.
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        match req.path.as_str() {
            "/api/v1/query_range" => self.admitted(req, |fe| fe.handle_range(req)),
            "/api/v1/query" => self.admitted(req, |fe| fe.passthrough(req, None)),
            "/api/v1/query_live" => self.admitted(req, |fe| fe.handle_live(req)),
            _ => self.forward_or_gateway_error(req),
        }
    }

    /// The per-tenant head-sampling rate override, if any. The reserved
    /// meta tenant is pinned to 1.0 (self-monitoring traces always kept).
    fn effective_sample_rate(&self, tenant: &str) -> Option<f64> {
        if tenant == "__ceems_meta__" {
            return Some(1.0);
        }
        self.cfg.tenant_sample_rates.get(tenant).copied()
    }

    /// Opens a live query subscription (S23): one full render of the
    /// trailing window, then the response is held open as an SSE stream and
    /// [`QueryFrontend::push_live`] appends per-step `delta` events as
    /// samples arrive. `query` and `step` are required; `since` (seconds of
    /// history in the initial render) defaults to 300.
    fn handle_live(self: &Arc<Self>, req: &Request) -> Response {
        let (Some(query), Some(step_ms)) = (req.query_param("query"), parse_step_param(req))
        else {
            return Response::error(
                Status::BAD_REQUEST,
                "query_live requires query and step parameters",
            );
        };
        let since_ms = req
            .query_param("since")
            .and_then(|v| v.parse::<f64>().ok())
            .map(|s| (s * 1000.0) as i64)
            .filter(|s| *s > 0)
            .unwrap_or(300_000);
        let tenant = tenant_of(req).to_string();

        {
            let live = self.live.lock().unwrap();
            let held = live.iter().filter(|s| s.tenant == tenant).count();
            if held >= self.cfg.max_live_per_tenant {
                self.ins.live_shed.inc();
                return Response::error(
                    Status::TOO_MANY_REQUESTS,
                    format!(
                        "qfe: tenant {tenant:?} at live subscription cap ({})",
                        self.cfg.max_live_per_tenant
                    ),
                )
                .with_retry_after(1.0);
            }
        }

        // Full render over the phase-0 step grid ending at the last
        // completed step; deltas continue the same grid, so assembling
        // full+deltas reproduces a poll-mode render byte-for-byte.
        let now_ms = (self.cfg.now)();
        let end_ms = now_ms.div_euclid(step_ms) * step_ms;
        let start_ms = end_ms - (since_ms.div_euclid(step_ms).max(1)) * step_ms;
        let full = self.render_window(req, query, start_ms, end_ms, step_ms);
        if full.status != Status::OK {
            return full;
        }

        let (resp, writer) = Response::streaming(Status::OK);
        if !writer.send(sse_event("full", &full.body)) {
            return Response::error(Status::INTERNAL, "qfe: live stream closed at open");
        }
        self.live.lock().unwrap().push(LiveSubscription {
            tenant,
            query: query.to_string(),
            step_ms,
            last_sent_step_ms: end_ms,
            writer,
        });
        self.ins
            .live_subscribers
            .set(self.live.lock().unwrap().len() as f64);
        resp.with_header("content-type", "text/event-stream")
            .with_header("x-ceems-qfe-live-from", ms_to_secs_param(end_ms))
    }

    /// Pushes newly completed steps to every live subscriber. Called by the
    /// ingest path (the stream bus wires this up after each push batch);
    /// polling deployments may also drive it off a timer. Returns the
    /// number of delta events sent; dead subscribers are dropped.
    pub fn push_live(self: &Arc<Self>, now_ms: i64) -> u64 {
        // Snapshot due work without holding the lock across renders.
        let due: Vec<(usize, String, String, i64, i64, i64)> = {
            let live = self.live.lock().unwrap();
            live.iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    let latest = now_ms.div_euclid(s.step_ms) * s.step_ms;
                    (latest > s.last_sent_step_ms).then(|| {
                        (
                            i,
                            s.tenant.clone(),
                            s.query.clone(),
                            s.last_sent_step_ms + s.step_ms,
                            latest,
                            s.step_ms,
                        )
                    })
                })
                .collect()
        };
        if due.is_empty() {
            return 0;
        }

        let mut sent = 0u64;
        let mut dead: Vec<usize> = Vec::new();
        for (idx, tenant, query, from_ms, to_ms, step_ms) in due {
            let qtrace = QueryTrace::begin(None);
            let stage = qtrace.stage("live_delta");
            let mut sub = Request::new(ceems_http::Method::Get, "/api/v1/query_live");
            sub = sub.with_header("x-grafana-user", &tenant);
            let delta = self.render_window(&sub, &query, from_ms, to_ms, step_ms);
            stage.finish();
            if let Some(sink) = &self.cfg.trace_sink {
                sink.offer_at_rate(
                    "qfe",
                    "/api/v1/query_live",
                    &tenant,
                    &qtrace.report(),
                    self.effective_sample_rate(&tenant),
                );
            }
            if delta.status != Status::OK {
                continue; // transient downstream trouble; retry next push
            }
            let mut live = self.live.lock().unwrap();
            let Some(sub) = live.get_mut(idx) else { continue };
            // A concurrent subscribe may have shifted indices; re-check
            // identity before updating state.
            if sub.query != query || sub.tenant != tenant {
                continue;
            }
            if sub.writer.send(sse_event("delta", &delta.body)) {
                sub.last_sent_step_ms = to_ms;
                sent += 1;
                self.ins.live_deltas.inc();
            } else {
                dead.push(idx);
            }
        }
        if !dead.is_empty() {
            let mut live = self.live.lock().unwrap();
            dead.sort_unstable_by(|a, b| b.cmp(a));
            for idx in dead {
                if idx < live.len() {
                    live.remove(idx);
                }
            }
            self.ins.live_subscribers.set(live.len() as f64);
        }
        sent
    }

    /// Open live subscriptions (tests and status endpoints).
    pub fn live_subscriber_count(&self) -> usize {
        self.live.lock().unwrap().len()
    }

    /// Renders one aligned window through the split/cache path by
    /// synthesizing an internal `query_range` request — live full renders
    /// and deltas therefore hit the same extent cache as polled queries.
    fn render_window(
        self: &Arc<Self>,
        req: &Request,
        query: &str,
        start_ms: i64,
        end_ms: i64,
        step_ms: i64,
    ) -> Response {
        let mut sub = Request::new(ceems_http::Method::Get, "/api/v1/query_range");
        sub.query = vec![
            ("query".to_string(), query.to_string()),
            ("start".to_string(), ms_to_secs_param(start_ms)),
            ("end".to_string(), ms_to_secs_param(end_ms)),
            ("step".to_string(), ms_to_secs_param(step_ms)),
        ];
        for name in ["x-grafana-user", TRACE_HEADER] {
            if let Some(v) = req.header(name) {
                sub = sub.with_header(name, v);
            }
        }
        self.handle_range(&sub)
    }

    /// Runs `f` under a scheduler permit, or sheds with 429 + Retry-After.
    fn admitted(
        self: &Arc<Self>,
        req: &Request,
        f: impl FnOnce(&Arc<Self>) -> Response,
    ) -> Response {
        let tenant = tenant_of(req);
        let permit = self.sched.acquire(tenant);
        self.ins
            .queue_depth
            .with_label_values(&[tenant])
            .set(self.sched.queue_depth(tenant) as f64);
        match permit {
            Ok(_permit) => f(self),
            Err(shed) => {
                self.ins.shed.inc();
                Response::error(
                    Status::TOO_MANY_REQUESTS,
                    format!("qfe: tenant {tenant:?} queue full, retry later"),
                )
                .with_retry_after(shed.retry_after_s)
            }
        }
    }

    /// The split/cache/merge path. Anything it cannot prove it can
    /// reproduce byte-for-byte falls back to [`Self::passthrough`].
    fn handle_range(self: &Arc<Self>, req: &Request) -> Response {
        let started = Instant::now();

        // Mirror the TSDB's own parameter parsing exactly; on any
        // divergence let the TSDB produce its own (identical) error.
        let params = (
            parse_time_param(req, "start"),
            parse_time_param(req, "end"),
            parse_step_param(req),
            req.query_param("query"),
        );
        let (Some(start_ms), Some(end_ms), Some(step_ms), Some(query)) = params else {
            return self.passthrough(req, Some("bypass"));
        };
        let expr = match parse_expr(query) {
            Ok(e) => e,
            Err(_) => return self.passthrough(req, Some("bypass")),
        };
        // Every sub-query re-reads its own lookback window (`rate`,
        // `increase`, `*_over_time`, the instant-vector staleness window)
        // from storage, so splitting never changes what a step sees — only
        // provably split-safe shapes get here at all.
        if let SplitSafety::Unsafe { .. } = split_safety(&expr) {
            return self.passthrough(req, Some("bypass"));
        }
        let grid = StepGrid { start_ms, end_ms, step_ms };
        if grid.is_empty() {
            return self.passthrough(req, Some("bypass"));
        }

        let qtrace = QueryTrace::begin(req.header(TRACE_HEADER));
        let extents = split_grid(grid, self.cfg.split_interval_ms);
        let norm = normalize(&expr);
        let phase_ms = start_ms.rem_euclid(step_ms);
        let tenant = tenant_of(req);
        let horizon_ms = (self.cfg.now)() - self.cfg.recent_window_ms;

        // Cache lookup.
        let lookup_started = Instant::now();
        let mut slots: Vec<Option<Arc<ExtentData>>> = Vec::with_capacity(extents.len());
        let mut cached_steps = 0usize;
        for e in &extents {
            let hit = self.cache.get(&extent_key(tenant, &norm, step_ms, phase_ms, e));
            if hit.is_some() {
                cached_steps += e.step_count();
            }
            slots.push(hit);
        }
        let lookup_ms = lookup_started.elapsed().as_secs_f64() * 1e3;

        // Fetch the misses, fanning out across threads.
        let missing: Vec<usize> =
            (0..extents.len()).filter(|i| slots[*i].is_none()).collect();
        let fetched_steps: usize = missing.iter().map(|i| extents[*i].step_count()).sum();
        let fetch_started = Instant::now();
        let fetched: Vec<Option<Arc<ExtentData>>> = self.fetch_extents(req, &extents, &missing);
        let fetch_ms = fetch_started.elapsed().as_secs_f64() * 1e3;
        let mut failed = false;
        for (slot, data) in missing.iter().zip(fetched) {
            match data {
                Some(d) => slots[*slot] = Some(d),
                None => failed = true,
            }
        }
        if failed {
            // A sub-query failed (transport error, non-success status,
            // unexpected shape): re-run the query whole so the client sees
            // exactly what the TSDB would say. When the whole-query retry
            // cannot reach any replica either, degrade: answer from the
            // cached extents (with a warning) rather than failing the
            // dashboard outright.
            self.ins.fallbacks.inc();
            let fallback = self.passthrough(req, Some("fallback"));
            if fallback.status != Status::BAD_GATEWAY || cached_steps == 0 {
                return fallback;
            }
            self.ins.stale_serves.inc();
            return self.serve_stale(&extents, &slots, cached_steps);
        }

        // Store settled extents for the next request.
        for (i, e) in extents.iter().enumerate() {
            if missing.contains(&i) && e.last_step_ms <= horizon_ms {
                self.cache.put(
                    extent_key(tenant, &norm, step_ms, phase_ms, e),
                    slots[i].clone().unwrap(),
                );
            }
        }

        // Merge back into the unsplit response.
        let merge_started = Instant::now();
        let pairs: Vec<(Extent, Arc<ExtentData>)> = extents
            .iter()
            .copied()
            .zip(slots.into_iter().map(|s| s.unwrap()))
            .collect();
        let result = merge_extents(&pairs);
        let mut data = json!({"resultType": "matrix", "result": result});
        let merge_ms = merge_started.elapsed().as_secs_f64() * 1e3;

        let outcome = if missing.is_empty() {
            "hit"
        } else if cached_steps > 0 {
            "partial"
        } else {
            "miss"
        };
        self.ins.cache_requests.with_label_values(&[outcome]).inc();
        self.ins.cached_steps.add(cached_steps as f64);
        self.ins.fetched_steps.add(fetched_steps as f64);
        self.ins.split_subqueries.observe(extents.len() as f64);
        self.ins.cache_bytes.set(self.cache.bytes() as f64);
        self.ins.cache_extents.set(self.cache.len() as f64);

        // Stages are recorded for explicit `?trace=1` requests AND whenever
        // a trace sink is wired (always-on sampling) — the sink then decides
        // whether this trace is stored (head sample or slow-query tail).
        if trace_requested(req) || self.cfg.trace_sink.is_some() {
            qtrace.record_stage_ms("qfe_cache", lookup_ms + merge_ms);
            qtrace.record_stage_ms("qfe_split", fetch_ms);
            qtrace.add_count("subqueries", missing.len() as u64);
            qtrace.add_count("cachedSteps", cached_steps as u64);
            qtrace.add_count("fetchedSteps", fetched_steps as u64);
            if trace_requested(req) {
                if let Json::Object(map) = &mut data {
                    map.insert("trace".to_string(), qtrace.report().to_json());
                }
            }
        }
        let body = serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap();
        let _ = started;
        let resp = Response::json(body)
            .with_header("x-ceems-qfe-cache", outcome)
            .with_header("x-ceems-qfe-cached-steps", cached_steps.to_string())
            .with_header("x-ceems-qfe-fetched-steps", fetched_steps.to_string());
        let stored = self.cfg.trace_sink.as_ref().and_then(|sink| {
            sink.offer_at_rate(
                "qfe",
                "/api/v1/query_range",
                tenant,
                &qtrace.report(),
                self.effective_sample_rate(tenant),
            )
        });
        match stored {
            Some(key) => resp.with_header(TRACE_STORED_HEADER, key),
            None => resp,
        }
    }

    /// Degraded render (S19): every replica is down, but part of the range
    /// sits in the results cache. Serves the cached extents (with gaps
    /// where nothing is cached), flags the response with a root-level
    /// `warnings` array and an `x-ceems-qfe-degraded: stale; age=<s>s`
    /// header — a stale dashboard beats a dead one, and the stamped age
    /// keeps it honest. When `max_stale_ms` bounds staleness (S24) and the
    /// freshest cached step is older than that, the degraded serve itself
    /// is refused with 502: past the bound, "no answer" is more truthful
    /// than an ancient one.
    fn serve_stale(
        &self,
        extents: &[Extent],
        slots: &[Option<Arc<ExtentData>>],
        cached_steps: usize,
    ) -> Response {
        let pairs: Vec<(Extent, Arc<ExtentData>)> = extents
            .iter()
            .copied()
            .zip(slots.iter().cloned())
            .filter_map(|(e, s)| s.map(|d| (e, d)))
            .collect();
        // Age of the answer = distance from "now" to the freshest step we
        // can actually serve.
        let freshest_ms = pairs.iter().map(|(e, _)| e.last_step_ms).max().unwrap_or(0);
        let age_ms = ((self.cfg.now)() - freshest_ms).max(0);
        let age_s = age_ms / 1000;
        if self.cfg.max_stale_ms > 0 && age_ms > self.cfg.max_stale_ms {
            self.ins
                .cache_requests
                .with_label_values(&["too-stale"])
                .inc();
            return Response::error(
                Status::BAD_GATEWAY,
                format!(
                    "qfe: all replicas down and cached data is {age_s}s stale \
                     (max_stale {}s)",
                    self.cfg.max_stale_ms / 1000,
                ),
            );
        }
        let missing = extents.len() - pairs.len();
        let result = merge_extents(&pairs);
        self.ins
            .cache_requests
            .with_label_values(&["degraded"])
            .inc();
        let body = serde_json::to_vec(&json!({
            "status": "success",
            "warnings": [format!(
                "qfe: {missing} of {} extents unavailable (all replicas down); \
                 serving {cached_steps} cached steps ({age_s}s stale)",
                extents.len(),
            )],
            "data": {"resultType": "matrix", "result": result},
        }))
        .unwrap();
        Response::json(body)
            .with_header("x-ceems-qfe-cache", "degraded")
            .with_header("x-ceems-qfe-degraded", format!("stale; age={age_s}s"))
            .with_header("x-ceems-qfe-cached-steps", cached_steps.to_string())
    }

    /// Fetches `missing` extents from the downstream, at most
    /// `max_fanout` at a time. Returns results in `missing` order; `None`
    /// marks a failed sub-query.
    fn fetch_extents(
        &self,
        req: &Request,
        extents: &[Extent],
        missing: &[usize],
    ) -> Vec<Option<Arc<ExtentData>>> {
        if missing.is_empty() {
            return Vec::new();
        }
        let out: Vec<Mutex<Option<Arc<ExtentData>>>> =
            missing.iter().map(|_| Mutex::new(None)).collect();
        let threads = missing.len().min(self.cfg.max_fanout.max(1));
        let chunk = missing.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (c, chunk_slots) in missing.chunks(chunk).enumerate() {
                let out = &out;
                s.spawn(move || {
                    for (j, slot) in chunk_slots.iter().enumerate() {
                        let mut sub = sub_request(req, &extents[*slot]);
                        if let Some(rate) = self.effective_sample_rate(tenant_of(req)) {
                            sub = sub.with_header(SAMPLE_RATE_HEADER, format!("{rate}"));
                        }
                        let data = match self.downstream.forward(&sub) {
                            Ok(resp) if resp.status.is_success() => {
                                ExtentData::from_response(&resp.body).map(Arc::new)
                            }
                            _ => None,
                        };
                        *out[c * chunk + j].lock().unwrap() = data;
                    }
                });
            }
        });
        out.into_iter().map(|m| m.into_inner().unwrap()).collect()
    }

    /// Forwards the request verbatim. When this replaces a traced query,
    /// the inner trace gets a `qfe_proxy` stage accounting for the
    /// frontend's own overhead, and `totalMs` is re-rooted here.
    fn passthrough(self: &Arc<Self>, req: &Request, outcome: Option<&str>) -> Response {
        if let Some(outcome) = outcome {
            self.ins.cache_requests.with_label_values(&[outcome]).inc();
        }
        let started = Instant::now();
        let forwarded;
        let req = match self.effective_sample_rate(tenant_of(req)) {
            Some(rate) if req.header(SAMPLE_RATE_HEADER).is_none() => {
                forwarded = req.clone().with_header(SAMPLE_RATE_HEADER, format!("{rate}"));
                &forwarded
            }
            _ => req,
        };
        let mut resp = match self.downstream.forward(req) {
            Ok(resp) => resp,
            Err(e) => {
                return Response::error(
                    Status::BAD_GATEWAY,
                    format!("qfe: downstream unavailable: {e}"),
                )
            }
        };
        if trace_requested(req) && resp.status.is_success() {
            let total_ms = started.elapsed().as_secs_f64() * 1e3;
            if let Some(body) = rewrite_passthrough_trace(&resp.body, total_ms) {
                resp.body = body;
            }
        }
        match outcome {
            Some(outcome) => resp.with_header("x-ceems-qfe-cache", outcome),
            None => resp,
        }
    }

    /// Non-query traffic (labels, series, federation, …): proxy, no
    /// scheduling, no rewriting.
    fn forward_or_gateway_error(&self, req: &Request) -> Response {
        match self.downstream.forward(req) {
            Ok(resp) => resp,
            Err(e) => Response::error(
                Status::BAD_GATEWAY,
                format!("qfe: downstream unavailable: {e}"),
            ),
        }
    }

    /// Builds the frontend router: `/metrics` first, then everything else
    /// into [`Self::handle`].
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        ceems_obs::add_metrics_route(&mut router, self.obs.registry().clone());
        for method in [
            ceems_http::Method::Get,
            ceems_http::Method::Post,
            ceems_http::Method::Delete,
        ] {
            let me = self.clone();
            router.route(method, "/*rest", move |req| me.handle(req));
        }
        router
    }

    /// Serves the frontend on an ephemeral port with request
    /// instrumentation. Workers are sized past the scheduler's global
    /// concurrency cap so queued queries (which block their worker) cannot
    /// starve `/metrics`.
    pub fn serve(self: &Arc<Self>) -> std::io::Result<HttpServer> {
        self.serve_with(ServerConfig::ephemeral())
    }

    /// Serves the frontend with explicit server tuning. The worker count is
    /// still derived from the scheduler caps (overriding it risks queued
    /// queries starving the reactor's handler pool), but connection caps,
    /// idle timeout and reactor threads come from `config`.
    pub fn serve_with(self: &Arc<Self>, config: ServerConfig) -> std::io::Result<HttpServer> {
        let workers = self.cfg.scheduler.max_concurrency + self.cfg.scheduler.tenant_queue_depth + 4;
        HttpServer::serve_fn(config.with_workers(workers), self.http.wrap(self.router()))
    }
}

/// Tenant identity: the LB forwards the authenticated user in
/// `X-Grafana-User`; direct/anonymous traffic shares one bucket.
fn tenant_of(req: &Request) -> &str {
    req.header("x-grafana-user").unwrap_or("anonymous")
}

/// Header carrying the effective head-sampling rate to downstream hops.
pub const SAMPLE_RATE_HEADER: &str = "x-ceems-trace-sample-rate";

/// Serializes one SSE event. Bodies are single-line JSON, so one `data:`
/// line suffices.
fn sse_event(event: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + event.len() + 16);
    out.extend_from_slice(b"event: ");
    out.extend_from_slice(event.as_bytes());
    out.extend_from_slice(b"\ndata: ");
    out.extend_from_slice(body);
    out.extend_from_slice(b"\n\n");
    out
}

fn extent_key(tenant: &str, norm: &str, step_ms: i64, phase_ms: i64, e: &Extent) -> ExtentKey {
    ExtentKey {
        tenant: tenant.to_string(),
        expr: norm.to_string(),
        step_ms,
        phase_ms,
        first_step_ms: e.first_step_ms,
        last_step_ms: e.last_step_ms,
    }
}

/// `?trace=1` (or `trace=true`), as the TSDB defines it.
fn trace_requested(req: &Request) -> bool {
    matches!(req.query_param("trace"), Some("1") | Some("true"))
}

/// `start`/`end` exactly as `ceems_tsdb::httpapi::parse_time` reads them
/// (sans defaulting — a missing parameter bypasses splitting).
fn parse_time_param(req: &Request, name: &str) -> Option<i64> {
    let raw = req.query_param(name)?;
    let secs: f64 = raw.parse().ok()?;
    if secs.is_finite() {
        Some((secs * 1000.0) as i64)
    } else {
        None
    }
}

/// `step` exactly as the TSDB reads it.
fn parse_step_param(req: &Request) -> Option<i64> {
    let sec: f64 = req.query_param("step")?.parse().ok()?;
    if sec > 0.0 {
        Some((sec * 1000.0) as i64)
    } else {
        None
    }
}

/// Builds the sub-request for one extent: same query string and step
/// parameter verbatim, `start`/`end` trimmed to the extent, identity and
/// trace headers forwarded, `trace` param stripped (the frontend reports
/// its own stages).
fn sub_request(req: &Request, e: &Extent) -> Request {
    let mut sub = Request::new(req.method, &req.path);
    sub.query = vec![
        ("query".to_string(), req.query_param("query").unwrap_or("").to_string()),
        ("start".to_string(), ms_to_secs_param(e.first_step_ms)),
        ("end".to_string(), ms_to_secs_param(e.last_step_ms)),
        ("step".to_string(), req.query_param("step").unwrap_or("").to_string()),
    ];
    for name in ["x-grafana-user", TRACE_HEADER] {
        if let Some(v) = req.header(name) {
            sub = sub.with_header(name, v);
        }
    }
    sub
}

/// Appends a `qfe_proxy` stage to a proxied trace and re-roots `totalMs`
/// at the frontend, keeping `sum(stages) ≤ totalMs`.
fn rewrite_passthrough_trace(body: &[u8], total_ms: f64) -> Option<Vec<u8>> {
    let mut v: Json = serde_json::from_slice(body).ok()?;
    let Json::Object(root) = &mut v else {
        return None;
    };
    let Some(Json::Object(data)) = root.get_mut("data") else {
        return None;
    };
    let Some(Json::Object(trace)) = data.get_mut("trace") else {
        return None;
    };
    let inner_total = trace.get("totalMs").and_then(|t| t.as_f64()).unwrap_or(0.0);
    let total_ms = total_ms.max(inner_total);
    if let Some(Json::Array(stages)) = trace.get_mut("stages") {
        stages.push(json!({"name": "qfe_proxy", "ms": total_ms - inner_total}));
    }
    trace.insert("totalMs".to_string(), json!(total_ms));
    serde_json::to_vec(&v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::Method;

    use std::sync::atomic::{AtomicBool, Ordering};

    /// Downstream that records sub-requests and evaluates a fixed series:
    /// `m` has value `t/1000` at every step. `fail` can be flipped mid-test
    /// to simulate every replica going down.
    struct FakeDownstream {
        calls: Mutex<Vec<String>>,
        fail: AtomicBool,
    }

    impl Downstream for FakeDownstream {
        fn forward(&self, req: &Request) -> Result<Response, String> {
            self.calls.lock().unwrap().push(req.path_and_query());
            if self.fail.load(Ordering::Relaxed) {
                return Err("boom".to_string());
            }
            let start = (req.query_param("start").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let end = (req.query_param("end").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let step = (req.query_param("step").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let values: Vec<Json> = StepGrid { start_ms: start, end_ms: end, step_ms: step }
                .steps()
                .map(|t| json!([t as f64 / 1000.0, format!("{}", t / 1000)]))
                .collect();
            let data = json!({
                "resultType": "matrix",
                "result": [{"metric": {"__name__": "m"}, "values": values}],
            });
            let body = serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap();
            Ok(Response::json(body))
        }
    }

    fn frontend(fail: bool, now_ms: i64) -> (Arc<QueryFrontend>, Arc<FakeDownstream>) {
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(fail),
        });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(move || now_ms),
            ..QfeConfig::default()
        };
        (QueryFrontend::new(ds.clone() as Arc<dyn Downstream>, cfg), ds)
    }

    fn range_req(query: &str, start_s: i64, end_s: i64, step_s: i64) -> Request {
        Request::new(
            Method::Get,
            &format!("/api/v1/query_range?query={query}&start={start_s}&end={end_s}&step={step_s}"),
        )
    }

    #[test]
    fn splits_then_serves_second_request_from_cache() {
        let (fe, ds) = frontend(false, 10_000_000);
        let req = range_req("m", 0, 179, 15);
        let first = fe.handle(&req);
        assert_eq!(first.status, Status::OK);
        assert_eq!(first.header("x-ceems-qfe-cache"), Some("miss"));
        let fanned = ds.calls.lock().unwrap().len();
        assert_eq!(fanned, 3, "0..179 at 60s windows spans 3 extents");

        let second = fe.handle(&req);
        assert_eq!(second.header("x-ceems-qfe-cache"), Some("hit"));
        assert_eq!(ds.calls.lock().unwrap().len(), fanned, "no new sub-queries");
        assert_eq!(first.body, second.body, "cached render is byte-identical");
    }

    #[test]
    fn unsafe_expressions_bypass_split_and_cache() {
        let (fe, ds) = frontend(false, 10_000_000);
        let req = range_req("topk(2, m)", 0, 179, 15);
        let resp = fe.handle(&req);
        assert_eq!(resp.header("x-ceems-qfe-cache"), Some("bypass"));
        let calls = ds.calls.lock().unwrap();
        assert_eq!(calls.len(), 1, "forwarded whole, not split");
        assert!(calls[0].contains("query=topk"));
        assert!(fe.cache().is_empty());
    }

    #[test]
    fn recent_window_is_never_cached() {
        // now = 120s; recent_window covers everything ⇒ nothing cacheable.
        let ds = Arc::new(FakeDownstream { calls: Mutex::new(Vec::new()), fail: AtomicBool::new(false) });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 1_000_000,
            now: Arc::new(|| 120_000),
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds.clone() as Arc<dyn Downstream>, cfg);
        let resp = fe.handle(&range_req("m", 0, 119, 15));
        assert_eq!(resp.status, Status::OK);
        assert!(fe.cache().is_empty(), "recent extents must not be cached");
        let again = fe.handle(&range_req("m", 0, 119, 15));
        assert_eq!(again.header("x-ceems-qfe-cache"), Some("miss"));
    }

    #[test]
    fn failed_subquery_falls_back_to_whole_proxy() {
        let (fe, ds) = frontend(true, 10_000_000);
        let resp = fe.handle(&range_req("m", 0, 179, 15));
        // Sub-queries failed, then the whole-proxy fallback failed too (the
        // fake downstream fails everything): a 502 surfaces.
        assert_eq!(resp.status, Status::BAD_GATEWAY);
        assert!(ds.calls.lock().unwrap().len() >= 2);
    }

    #[test]
    fn all_replicas_down_serves_stale_cache_with_warning() {
        let (fe, ds) = frontend(false, 10_000_000);
        let warm = fe.handle(&range_req("m", 0, 179, 15));
        assert_eq!(warm.status, Status::OK);
        ds.fail.store(true, Ordering::Relaxed);

        // The longer range needs one fresh extent. Every replica is down,
        // so the frontend serves the three cached extents and says so.
        let resp = fe.handle(&range_req("m", 0, 239, 15));
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        // now = 10_000s and the freshest cached step is 165s: the stamped
        // age is the distance between them.
        assert_eq!(resp.header("x-ceems-qfe-degraded"), Some("stale; age=9835s"));
        assert_eq!(resp.header("x-ceems-qfe-cache"), Some("degraded"));
        let v: Json = serde_json::from_slice(&resp.body).unwrap();
        let warnings = v["warnings"].as_array().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].as_str().unwrap().contains("1 of 4 extents"),
            "warning: {}",
            warnings[0]
        );
        // The cached 0..179 window is present; the missing extent is a
        // gap, not an error.
        let values = v["data"]["result"][0]["values"].as_array().unwrap();
        assert_eq!(values.first().unwrap()[0].as_f64(), Some(0.0));
        assert_eq!(values.last().unwrap()[0].as_f64(), Some(165.0));
        assert_eq!(fe.ins.stale_serves.get(), 1.0);

        // With nothing cached there is nothing to degrade to: plain 502.
        let miss = fe.handle(&range_req("other", 0, 59, 15));
        assert_eq!(miss.status, Status::BAD_GATEWAY);
        assert_eq!(fe.ins.stale_serves.get(), 1.0);
    }

    #[test]
    fn stale_serves_beyond_max_stale_are_refused() {
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(false),
        });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(|| 10_000_000),
            // Freshest cacheable step is 165s; 10_000s − 165s ≫ 900s.
            max_stale_ms: 900_000,
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds.clone() as Arc<dyn Downstream>, cfg);
        let warm = fe.handle(&range_req("m", 0, 179, 15));
        assert_eq!(warm.status, Status::OK);
        ds.fail.store(true, Ordering::Relaxed);

        let resp = fe.handle(&range_req("m", 0, 239, 15));
        assert_eq!(
            resp.status,
            Status::BAD_GATEWAY,
            "a degraded answer older than max_stale must be refused"
        );
        assert!(resp.body_string().contains("stale"), "body: {}", resp.body_string());
        assert!(resp.header("x-ceems-qfe-degraded").is_none());
    }

    #[test]
    fn trace_reports_qfe_stages() {
        let (fe, _ds) = frontend(false, 10_000_000);
        let req = Request::new(
            Method::Get,
            "/api/v1/query_range?query=m&start=0&end=179&step=15&trace=1",
        );
        let resp = fe.handle(&req);
        let v: Json = serde_json::from_slice(&resp.body).unwrap();
        let trace = &v["data"]["trace"];
        let stages: Vec<&str> = trace["stages"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["name"].as_str().unwrap())
            .collect();
        assert!(stages.contains(&"qfe_cache"), "stages: {stages:?}");
        assert!(stages.contains(&"qfe_split"));
        let sum: f64 = trace["stages"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["ms"].as_f64().unwrap())
            .sum();
        assert!(sum <= trace["totalMs"].as_f64().unwrap() + 1e-6);
        assert_eq!(trace["counts"]["subqueries"], 3);
    }

    fn sse_events(chunks: &[Vec<u8>]) -> Vec<(String, Json)> {
        let text: String = chunks
            .iter()
            .map(|c| String::from_utf8_lossy(c).into_owned())
            .collect();
        text.split("\n\n")
            .filter(|e| !e.trim().is_empty())
            .map(|e| {
                let mut event = String::new();
                let mut data = Json::Null;
                for line in e.lines() {
                    if let Some(v) = line.strip_prefix("event: ") {
                        event = v.to_string();
                    } else if let Some(v) = line.strip_prefix("data: ") {
                        data = serde_json::from_str(v).unwrap();
                    }
                }
                (event, data)
            })
            .collect()
    }

    fn values_of(data: &Json) -> Vec<Json> {
        data["data"]["result"][0]["values"]
            .as_array()
            .cloned()
            .unwrap_or_default()
    }

    #[test]
    fn query_live_pushes_step_deltas_matching_poll_mode() {
        use std::sync::atomic::AtomicI64;
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(false),
        });
        let clock = Arc::new(AtomicI64::new(100_000));
        let c = clock.clone();
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(move || c.load(Ordering::Relaxed)),
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds as Arc<dyn Downstream>, cfg);

        let req = Request::new(Method::Get, "/api/v1/query_live?query=m&step=15&since=60");
        let resp = fe.handle(&req);
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.header("content-type"), Some("text/event-stream"));
        let stream = resp.stream.clone().expect("live response streams");
        let (chunks, _) = stream.take_chunks();
        let events = sse_events(&chunks);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "full");
        // Full render: steps 30..=90 (end floored to the 15s grid).
        let full_values = values_of(&events[0].1);
        assert_eq!(full_values.first().unwrap()[0].as_f64(), Some(30.0));
        assert_eq!(full_values.last().unwrap()[0].as_f64(), Some(90.0));
        assert_eq!(fe.live_subscriber_count(), 1);

        // Nothing new yet: same step, no delta.
        assert_eq!(fe.push_live(101_000), 0);

        // Two steps complete: one delta carrying both.
        clock.store(121_000, Ordering::Relaxed);
        assert_eq!(fe.push_live(121_000), 1);
        let (chunks, _) = stream.take_chunks();
        let events = sse_events(&chunks);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "delta");
        let delta_values = values_of(&events[0].1);
        assert_eq!(delta_values.first().unwrap()[0].as_f64(), Some(105.0));
        assert_eq!(delta_values.last().unwrap()[0].as_f64(), Some(120.0));

        // Assembled full+delta equals a poll-mode render of the same grid.
        let poll = fe.handle(&range_req("m", 30, 120, 15));
        let poll_v: Json = serde_json::from_slice(&poll.body).unwrap();
        let mut assembled = full_values.clone();
        assembled.extend(delta_values);
        assert_eq!(
            serde_json::to_vec(&assembled).unwrap(),
            serde_json::to_vec(&poll_v["data"]["result"][0]["values"]).unwrap(),
            "live assembly must be byte-identical to poll mode"
        );

        // Consumer disconnect: the subscription is dropped at next push.
        stream.abort();
        clock.store(136_000, Ordering::Relaxed);
        assert_eq!(fe.push_live(136_000), 0);
        assert_eq!(fe.live_subscriber_count(), 0);
    }

    #[test]
    fn query_live_caps_subscriptions_per_tenant() {
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(false),
        });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(|| 100_000),
            max_live_per_tenant: 1,
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds as Arc<dyn Downstream>, cfg);
        let req = Request::new(Method::Get, "/api/v1/query_live?query=m&step=15");
        let first = fe.handle(&req);
        assert_eq!(first.status, Status::OK);
        let second = fe.handle(&req);
        assert_eq!(second.status, Status::TOO_MANY_REQUESTS);
        assert!(second.header("retry-after").is_some());
        // Another tenant still fits.
        let other = fe.handle(&req.clone().with_header("x-grafana-user", "bob"));
        assert_eq!(other.status, Status::OK);
        assert_eq!(fe.ins.live_shed.get(), 1.0);
    }

    #[test]
    fn tenant_sample_rate_propagates_downstream() {
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(false),
        });
        let mut rates = std::collections::BTreeMap::new();
        rates.insert("alice".to_string(), 0.25);
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(|| 10_000_000),
            tenant_sample_rates: rates,
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds as Arc<dyn Downstream>, cfg);
        assert_eq!(fe.effective_sample_rate("alice"), Some(0.25));
        assert_eq!(fe.effective_sample_rate("bob"), None);
        assert_eq!(
            fe.effective_sample_rate("__ceems_meta__"),
            Some(1.0),
            "meta tenant pinned to full sampling"
        );
        let resp = fe.handle(&range_req("m", 0, 59, 15).with_header("x-grafana-user", "alice"));
        assert_eq!(resp.status, Status::OK);
    }

    #[test]
    fn shed_returns_429_with_retry_after() {
        let ds = Arc::new(FakeDownstream { calls: Mutex::new(Vec::new()), fail: AtomicBool::new(false) });
        let cfg = QfeConfig {
            scheduler: SchedulerConfig {
                tenant_queue_depth: 0,
                max_tenant_concurrency: 1,
                max_concurrency: 1,
                retry_after_s: 0.25,
            },
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds as Arc<dyn Downstream>, cfg);
        // Hold the only slot on another thread, then overflow the queue.
        let _held = fe.scheduler().acquire("alice").unwrap();
        let resp = fe.handle(&range_req("m", 0, 10, 5).with_header("x-grafana-user", "alice"));
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        assert_eq!(resp.retry_after_secs(), Some(0.25));
        assert_eq!(fe.scheduler().shed_count(), 1);
    }
}
