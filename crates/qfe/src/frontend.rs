//! The query frontend proper: request classification, split/cache/merge
//! orchestration, per-tenant admission, and self-monitoring.
//!
//! `query_range` requests whose expression is split-safe are decomposed
//! into `split_interval`-aligned extents ([`crate::split`]); settled
//! extents are served from the results cache ([`crate::cache`]) and only
//! the uncovered remainder is fetched from the TSDB, in parallel. Anything
//! else — instant queries, label/series lookups, split-unsafe expressions
//! (`topk`, `offset`, …), malformed parameters — passes through to the
//! downstream verbatim, so error bodies and edge-case semantics stay
//! byte-identical to an unfronted deployment.
//!
//! Every query first takes a slot from the [`FairScheduler`]; tenants that
//! overflow their queue get `429 Too Many Requests` with a `Retry-After`
//! the shared `ceems-http` client knows how to honor.

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

use serde_json::{json, Value as Json};

use ceems_http::{HttpServer, Request, Response, Router, ServerConfig, Status};
use ceems_metrics::{Counter, CounterVec, Gauge, GaugeVec, Histogram};
use ceems_obs::http::TRACE_STORED_HEADER;
use ceems_obs::trace::QueryTrace;
use ceems_obs::{HttpInstruments, Obs, TraceSink, TRACE_HEADER};
use ceems_tsdb::promql::{normalize, parse_expr, split_safety, SplitSafety};

use crate::cache::{ExtentKey, ResultsCache};
use crate::downstream::Downstream;
use crate::sched::{FairScheduler, SchedulerConfig};
use crate::split::{merge_extents, ms_to_secs_param, split_grid, Extent, ExtentData, StepGrid};

/// Clock supplying "now" in Unix milliseconds (the `recent_window`
/// reference point). Simulated deployments pass the simulation clock.
pub type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

/// Frontend tuning knobs. Times are milliseconds.
#[derive(Clone)]
pub struct QfeConfig {
    /// Split window width; sub-queries are aligned to multiples of this.
    pub split_interval_ms: i64,
    /// Results-cache budget in bytes; `0` disables caching.
    pub cache_bytes: usize,
    /// Results newer than `now − recent_window` are never cached (they may
    /// still change as ingestion catches up).
    pub recent_window_ms: i64,
    /// Admission limits.
    pub scheduler: SchedulerConfig,
    /// Maximum threads fanning out sub-queries for one request.
    pub max_fanout: usize,
    /// Clock for the `recent_window` horizon.
    pub now: NowFn,
    /// Trace sink (S22): when set, every split range query records its
    /// `qfe_cache`/`qfe_split` stages and offers the finished report;
    /// stored traces tag the response with [`TRACE_STORED_HEADER`].
    pub trace_sink: Option<Arc<TraceSink>>,
}

impl Default for QfeConfig {
    fn default() -> Self {
        QfeConfig {
            split_interval_ms: 86_400_000,
            cache_bytes: 64 << 20,
            recent_window_ms: 600_000,
            scheduler: SchedulerConfig::default(),
            max_fanout: 8,
            now: system_now(),
            trace_sink: None,
        }
    }
}

/// The wall clock as a [`NowFn`].
pub fn system_now() -> NowFn {
    Arc::new(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0)
    })
}

struct QfeInstruments {
    cache_requests: CounterVec,
    cached_steps: Counter,
    fetched_steps: Counter,
    split_subqueries: Histogram,
    shed: Counter,
    fallbacks: Counter,
    stale_serves: Counter,
    queue_depth: GaugeVec,
    cache_bytes: Gauge,
    cache_extents: Gauge,
}

impl QfeInstruments {
    fn new(obs: &Obs) -> QfeInstruments {
        QfeInstruments {
            cache_requests: obs.counter_vec(
                "ceems_qfe_cache_requests_total",
                "Range queries by cache outcome (hit, partial, miss, bypass, fallback, degraded).",
                &["outcome"],
            ),
            cached_steps: obs.counter(
                "ceems_qfe_cached_steps_total",
                "Grid steps served from the results cache.",
            ),
            fetched_steps: obs.counter(
                "ceems_qfe_fetched_steps_total",
                "Grid steps fetched from the TSDB.",
            ),
            split_subqueries: obs.histogram(
                "ceems_qfe_split_subqueries",
                "Extents per split range query (fan-out width).",
                vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            shed: obs.counter(
                "ceems_qfe_shed_total",
                "Queries refused with 429 because a tenant queue overflowed.",
            ),
            fallbacks: obs.counter(
                "ceems_qfe_downstream_fallback_total",
                "Split queries re-proxied whole after a sub-query failed.",
            ),
            stale_serves: obs.counter(
                "ceems_qfe_stale_serves_total",
                "Degraded answers built from cached extents because every replica was down.",
            ),
            queue_depth: obs.gauge_vec(
                "ceems_qfe_tenant_queue_depth",
                "Queries currently queued, per tenant.",
                &["tenant"],
            ),
            cache_bytes: obs.gauge(
                "ceems_qfe_cache_bytes",
                "Resident bytes in the results cache.",
            ),
            cache_extents: obs.gauge(
                "ceems_qfe_cache_extents",
                "Extents resident in the results cache.",
            ),
        }
    }
}

/// The query frontend. Construct with [`QueryFrontend::new`], then either
/// mount [`QueryFrontend::router`] behind a server or call
/// [`QueryFrontend::handle`] directly (in-process deployments, tests).
pub struct QueryFrontend {
    downstream: Arc<dyn Downstream>,
    cfg: QfeConfig,
    cache: ResultsCache,
    sched: Arc<FairScheduler>,
    obs: Obs,
    ins: QfeInstruments,
    http: HttpInstruments,
}

impl QueryFrontend {
    /// Creates a frontend over a downstream.
    pub fn new(downstream: Arc<dyn Downstream>, cfg: QfeConfig) -> Arc<QueryFrontend> {
        let obs = Obs::new();
        let ins = QfeInstruments::new(&obs);
        let http = HttpInstruments::new("qfe", obs.registry());
        ceems_obs::register_build_info(obs.registry(), "qfe");
        Arc::new(QueryFrontend {
            downstream,
            cache: ResultsCache::new(cfg.cache_bytes),
            sched: FairScheduler::new(cfg.scheduler),
            cfg,
            obs,
            ins,
            http,
        })
    }

    /// The frontend's metrics registry (served at `/metrics`).
    pub fn registry(&self) -> &ceems_metrics::Registry {
        self.obs.registry()
    }

    /// The results cache (tests peek at residency).
    pub fn cache(&self) -> &ResultsCache {
        &self.cache
    }

    /// The admission scheduler (tests peek at shed counts).
    pub fn scheduler(&self) -> &Arc<FairScheduler> {
        &self.sched
    }

    /// Handles one request end to end.
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        match req.path.as_str() {
            "/api/v1/query_range" => self.admitted(req, |fe| fe.handle_range(req)),
            "/api/v1/query" => self.admitted(req, |fe| fe.passthrough(req, None)),
            _ => self.forward_or_gateway_error(req),
        }
    }

    /// Runs `f` under a scheduler permit, or sheds with 429 + Retry-After.
    fn admitted(
        self: &Arc<Self>,
        req: &Request,
        f: impl FnOnce(&Arc<Self>) -> Response,
    ) -> Response {
        let tenant = tenant_of(req);
        let permit = self.sched.acquire(tenant);
        self.ins
            .queue_depth
            .with_label_values(&[tenant])
            .set(self.sched.queue_depth(tenant) as f64);
        match permit {
            Ok(_permit) => f(self),
            Err(shed) => {
                self.ins.shed.inc();
                Response::error(
                    Status::TOO_MANY_REQUESTS,
                    format!("qfe: tenant {tenant:?} queue full, retry later"),
                )
                .with_retry_after(shed.retry_after_s)
            }
        }
    }

    /// The split/cache/merge path. Anything it cannot prove it can
    /// reproduce byte-for-byte falls back to [`Self::passthrough`].
    fn handle_range(self: &Arc<Self>, req: &Request) -> Response {
        let started = Instant::now();

        // Mirror the TSDB's own parameter parsing exactly; on any
        // divergence let the TSDB produce its own (identical) error.
        let params = (
            parse_time_param(req, "start"),
            parse_time_param(req, "end"),
            parse_step_param(req),
            req.query_param("query"),
        );
        let (Some(start_ms), Some(end_ms), Some(step_ms), Some(query)) = params else {
            return self.passthrough(req, Some("bypass"));
        };
        let expr = match parse_expr(query) {
            Ok(e) => e,
            Err(_) => return self.passthrough(req, Some("bypass")),
        };
        // Every sub-query re-reads its own lookback window (`rate`,
        // `increase`, `*_over_time`, the instant-vector staleness window)
        // from storage, so splitting never changes what a step sees — only
        // provably split-safe shapes get here at all.
        if let SplitSafety::Unsafe { .. } = split_safety(&expr) {
            return self.passthrough(req, Some("bypass"));
        }
        let grid = StepGrid { start_ms, end_ms, step_ms };
        if grid.is_empty() {
            return self.passthrough(req, Some("bypass"));
        }

        let qtrace = QueryTrace::begin(req.header(TRACE_HEADER));
        let extents = split_grid(grid, self.cfg.split_interval_ms);
        let norm = normalize(&expr);
        let phase_ms = start_ms.rem_euclid(step_ms);
        let tenant = tenant_of(req);
        let horizon_ms = (self.cfg.now)() - self.cfg.recent_window_ms;

        // Cache lookup.
        let lookup_started = Instant::now();
        let mut slots: Vec<Option<Arc<ExtentData>>> = Vec::with_capacity(extents.len());
        let mut cached_steps = 0usize;
        for e in &extents {
            let hit = self.cache.get(&extent_key(tenant, &norm, step_ms, phase_ms, e));
            if hit.is_some() {
                cached_steps += e.step_count();
            }
            slots.push(hit);
        }
        let lookup_ms = lookup_started.elapsed().as_secs_f64() * 1e3;

        // Fetch the misses, fanning out across threads.
        let missing: Vec<usize> =
            (0..extents.len()).filter(|i| slots[*i].is_none()).collect();
        let fetched_steps: usize = missing.iter().map(|i| extents[*i].step_count()).sum();
        let fetch_started = Instant::now();
        let fetched: Vec<Option<Arc<ExtentData>>> = self.fetch_extents(req, &extents, &missing);
        let fetch_ms = fetch_started.elapsed().as_secs_f64() * 1e3;
        let mut failed = false;
        for (slot, data) in missing.iter().zip(fetched) {
            match data {
                Some(d) => slots[*slot] = Some(d),
                None => failed = true,
            }
        }
        if failed {
            // A sub-query failed (transport error, non-success status,
            // unexpected shape): re-run the query whole so the client sees
            // exactly what the TSDB would say. When the whole-query retry
            // cannot reach any replica either, degrade: answer from the
            // cached extents (with a warning) rather than failing the
            // dashboard outright.
            self.ins.fallbacks.inc();
            let fallback = self.passthrough(req, Some("fallback"));
            if fallback.status != Status::BAD_GATEWAY || cached_steps == 0 {
                return fallback;
            }
            self.ins.stale_serves.inc();
            return self.serve_stale(&extents, &slots, cached_steps);
        }

        // Store settled extents for the next request.
        for (i, e) in extents.iter().enumerate() {
            if missing.contains(&i) && e.last_step_ms <= horizon_ms {
                self.cache.put(
                    extent_key(tenant, &norm, step_ms, phase_ms, e),
                    slots[i].clone().unwrap(),
                );
            }
        }

        // Merge back into the unsplit response.
        let merge_started = Instant::now();
        let pairs: Vec<(Extent, Arc<ExtentData>)> = extents
            .iter()
            .copied()
            .zip(slots.into_iter().map(|s| s.unwrap()))
            .collect();
        let result = merge_extents(&pairs);
        let mut data = json!({"resultType": "matrix", "result": result});
        let merge_ms = merge_started.elapsed().as_secs_f64() * 1e3;

        let outcome = if missing.is_empty() {
            "hit"
        } else if cached_steps > 0 {
            "partial"
        } else {
            "miss"
        };
        self.ins.cache_requests.with_label_values(&[outcome]).inc();
        self.ins.cached_steps.add(cached_steps as f64);
        self.ins.fetched_steps.add(fetched_steps as f64);
        self.ins.split_subqueries.observe(extents.len() as f64);
        self.ins.cache_bytes.set(self.cache.bytes() as f64);
        self.ins.cache_extents.set(self.cache.len() as f64);

        // Stages are recorded for explicit `?trace=1` requests AND whenever
        // a trace sink is wired (always-on sampling) — the sink then decides
        // whether this trace is stored (head sample or slow-query tail).
        if trace_requested(req) || self.cfg.trace_sink.is_some() {
            qtrace.record_stage_ms("qfe_cache", lookup_ms + merge_ms);
            qtrace.record_stage_ms("qfe_split", fetch_ms);
            qtrace.add_count("subqueries", missing.len() as u64);
            qtrace.add_count("cachedSteps", cached_steps as u64);
            qtrace.add_count("fetchedSteps", fetched_steps as u64);
            if trace_requested(req) {
                if let Json::Object(map) = &mut data {
                    map.insert("trace".to_string(), qtrace.report().to_json());
                }
            }
        }
        let body = serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap();
        let _ = started;
        let resp = Response::json(body)
            .with_header("x-ceems-qfe-cache", outcome)
            .with_header("x-ceems-qfe-cached-steps", cached_steps.to_string())
            .with_header("x-ceems-qfe-fetched-steps", fetched_steps.to_string());
        let stored = self.cfg.trace_sink.as_ref().and_then(|sink| {
            sink.offer("qfe", "/api/v1/query_range", tenant, &qtrace.report())
        });
        match stored {
            Some(key) => resp.with_header(TRACE_STORED_HEADER, key),
            None => resp,
        }
    }

    /// Degraded render (S19): every replica is down, but part of the range
    /// sits in the results cache. Serves the cached extents (with gaps
    /// where nothing is cached), flags the response with a root-level
    /// `warnings` array and an `x-ceems-qfe-degraded: stale` header — a
    /// stale dashboard beats a dead one, and the warning keeps it honest.
    fn serve_stale(
        &self,
        extents: &[Extent],
        slots: &[Option<Arc<ExtentData>>],
        cached_steps: usize,
    ) -> Response {
        let pairs: Vec<(Extent, Arc<ExtentData>)> = extents
            .iter()
            .copied()
            .zip(slots.iter().cloned())
            .filter_map(|(e, s)| s.map(|d| (e, d)))
            .collect();
        let missing = extents.len() - pairs.len();
        let result = merge_extents(&pairs);
        self.ins
            .cache_requests
            .with_label_values(&["degraded"])
            .inc();
        let body = serde_json::to_vec(&json!({
            "status": "success",
            "warnings": [format!(
                "qfe: {missing} of {} extents unavailable (all replicas down); \
                 serving {cached_steps} cached steps",
                extents.len(),
            )],
            "data": {"resultType": "matrix", "result": result},
        }))
        .unwrap();
        Response::json(body)
            .with_header("x-ceems-qfe-cache", "degraded")
            .with_header("x-ceems-qfe-degraded", "stale")
            .with_header("x-ceems-qfe-cached-steps", cached_steps.to_string())
    }

    /// Fetches `missing` extents from the downstream, at most
    /// `max_fanout` at a time. Returns results in `missing` order; `None`
    /// marks a failed sub-query.
    fn fetch_extents(
        &self,
        req: &Request,
        extents: &[Extent],
        missing: &[usize],
    ) -> Vec<Option<Arc<ExtentData>>> {
        if missing.is_empty() {
            return Vec::new();
        }
        let out: Vec<Mutex<Option<Arc<ExtentData>>>> =
            missing.iter().map(|_| Mutex::new(None)).collect();
        let threads = missing.len().min(self.cfg.max_fanout.max(1));
        let chunk = missing.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (c, chunk_slots) in missing.chunks(chunk).enumerate() {
                let out = &out;
                s.spawn(move || {
                    for (j, slot) in chunk_slots.iter().enumerate() {
                        let sub = sub_request(req, &extents[*slot]);
                        let data = match self.downstream.forward(&sub) {
                            Ok(resp) if resp.status.is_success() => {
                                ExtentData::from_response(&resp.body).map(Arc::new)
                            }
                            _ => None,
                        };
                        *out[c * chunk + j].lock().unwrap() = data;
                    }
                });
            }
        });
        out.into_iter().map(|m| m.into_inner().unwrap()).collect()
    }

    /// Forwards the request verbatim. When this replaces a traced query,
    /// the inner trace gets a `qfe_proxy` stage accounting for the
    /// frontend's own overhead, and `totalMs` is re-rooted here.
    fn passthrough(self: &Arc<Self>, req: &Request, outcome: Option<&str>) -> Response {
        if let Some(outcome) = outcome {
            self.ins.cache_requests.with_label_values(&[outcome]).inc();
        }
        let started = Instant::now();
        let mut resp = match self.downstream.forward(req) {
            Ok(resp) => resp,
            Err(e) => {
                return Response::error(
                    Status::BAD_GATEWAY,
                    format!("qfe: downstream unavailable: {e}"),
                )
            }
        };
        if trace_requested(req) && resp.status.is_success() {
            let total_ms = started.elapsed().as_secs_f64() * 1e3;
            if let Some(body) = rewrite_passthrough_trace(&resp.body, total_ms) {
                resp.body = body;
            }
        }
        match outcome {
            Some(outcome) => resp.with_header("x-ceems-qfe-cache", outcome),
            None => resp,
        }
    }

    /// Non-query traffic (labels, series, federation, …): proxy, no
    /// scheduling, no rewriting.
    fn forward_or_gateway_error(&self, req: &Request) -> Response {
        match self.downstream.forward(req) {
            Ok(resp) => resp,
            Err(e) => Response::error(
                Status::BAD_GATEWAY,
                format!("qfe: downstream unavailable: {e}"),
            ),
        }
    }

    /// Builds the frontend router: `/metrics` first, then everything else
    /// into [`Self::handle`].
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        ceems_obs::add_metrics_route(&mut router, self.obs.registry().clone());
        for method in [
            ceems_http::Method::Get,
            ceems_http::Method::Post,
            ceems_http::Method::Delete,
        ] {
            let me = self.clone();
            router.route(method, "/*rest", move |req| me.handle(req));
        }
        router
    }

    /// Serves the frontend on an ephemeral port with request
    /// instrumentation. Workers are sized past the scheduler's global
    /// concurrency cap so queued queries (which block their worker) cannot
    /// starve `/metrics`.
    pub fn serve(self: &Arc<Self>) -> std::io::Result<HttpServer> {
        self.serve_with(ServerConfig::ephemeral())
    }

    /// Serves the frontend with explicit server tuning. The worker count is
    /// still derived from the scheduler caps (overriding it risks queued
    /// queries starving the reactor's handler pool), but connection caps,
    /// idle timeout and reactor threads come from `config`.
    pub fn serve_with(self: &Arc<Self>, config: ServerConfig) -> std::io::Result<HttpServer> {
        let workers = self.cfg.scheduler.max_concurrency + self.cfg.scheduler.tenant_queue_depth + 4;
        HttpServer::serve_fn(config.with_workers(workers), self.http.wrap(self.router()))
    }
}

/// Tenant identity: the LB forwards the authenticated user in
/// `X-Grafana-User`; direct/anonymous traffic shares one bucket.
fn tenant_of(req: &Request) -> &str {
    req.header("x-grafana-user").unwrap_or("anonymous")
}

fn extent_key(tenant: &str, norm: &str, step_ms: i64, phase_ms: i64, e: &Extent) -> ExtentKey {
    ExtentKey {
        tenant: tenant.to_string(),
        expr: norm.to_string(),
        step_ms,
        phase_ms,
        first_step_ms: e.first_step_ms,
        last_step_ms: e.last_step_ms,
    }
}

/// `?trace=1` (or `trace=true`), as the TSDB defines it.
fn trace_requested(req: &Request) -> bool {
    matches!(req.query_param("trace"), Some("1") | Some("true"))
}

/// `start`/`end` exactly as `ceems_tsdb::httpapi::parse_time` reads them
/// (sans defaulting — a missing parameter bypasses splitting).
fn parse_time_param(req: &Request, name: &str) -> Option<i64> {
    let raw = req.query_param(name)?;
    let secs: f64 = raw.parse().ok()?;
    if secs.is_finite() {
        Some((secs * 1000.0) as i64)
    } else {
        None
    }
}

/// `step` exactly as the TSDB reads it.
fn parse_step_param(req: &Request) -> Option<i64> {
    let sec: f64 = req.query_param("step")?.parse().ok()?;
    if sec > 0.0 {
        Some((sec * 1000.0) as i64)
    } else {
        None
    }
}

/// Builds the sub-request for one extent: same query string and step
/// parameter verbatim, `start`/`end` trimmed to the extent, identity and
/// trace headers forwarded, `trace` param stripped (the frontend reports
/// its own stages).
fn sub_request(req: &Request, e: &Extent) -> Request {
    let mut sub = Request::new(req.method, &req.path);
    sub.query = vec![
        ("query".to_string(), req.query_param("query").unwrap_or("").to_string()),
        ("start".to_string(), ms_to_secs_param(e.first_step_ms)),
        ("end".to_string(), ms_to_secs_param(e.last_step_ms)),
        ("step".to_string(), req.query_param("step").unwrap_or("").to_string()),
    ];
    for name in ["x-grafana-user", TRACE_HEADER] {
        if let Some(v) = req.header(name) {
            sub = sub.with_header(name, v);
        }
    }
    sub
}

/// Appends a `qfe_proxy` stage to a proxied trace and re-roots `totalMs`
/// at the frontend, keeping `sum(stages) ≤ totalMs`.
fn rewrite_passthrough_trace(body: &[u8], total_ms: f64) -> Option<Vec<u8>> {
    let mut v: Json = serde_json::from_slice(body).ok()?;
    let Json::Object(root) = &mut v else {
        return None;
    };
    let Some(Json::Object(data)) = root.get_mut("data") else {
        return None;
    };
    let Some(Json::Object(trace)) = data.get_mut("trace") else {
        return None;
    };
    let inner_total = trace.get("totalMs").and_then(|t| t.as_f64()).unwrap_or(0.0);
    let total_ms = total_ms.max(inner_total);
    if let Some(Json::Array(stages)) = trace.get_mut("stages") {
        stages.push(json!({"name": "qfe_proxy", "ms": total_ms - inner_total}));
    }
    trace.insert("totalMs".to_string(), json!(total_ms));
    serde_json::to_vec(&v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::Method;

    use std::sync::atomic::{AtomicBool, Ordering};

    /// Downstream that records sub-requests and evaluates a fixed series:
    /// `m` has value `t/1000` at every step. `fail` can be flipped mid-test
    /// to simulate every replica going down.
    struct FakeDownstream {
        calls: Mutex<Vec<String>>,
        fail: AtomicBool,
    }

    impl Downstream for FakeDownstream {
        fn forward(&self, req: &Request) -> Result<Response, String> {
            self.calls.lock().unwrap().push(req.path_and_query());
            if self.fail.load(Ordering::Relaxed) {
                return Err("boom".to_string());
            }
            let start = (req.query_param("start").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let end = (req.query_param("end").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let step = (req.query_param("step").unwrap().parse::<f64>().unwrap() * 1000.0) as i64;
            let values: Vec<Json> = StepGrid { start_ms: start, end_ms: end, step_ms: step }
                .steps()
                .map(|t| json!([t as f64 / 1000.0, format!("{}", t / 1000)]))
                .collect();
            let data = json!({
                "resultType": "matrix",
                "result": [{"metric": {"__name__": "m"}, "values": values}],
            });
            let body = serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap();
            Ok(Response::json(body))
        }
    }

    fn frontend(fail: bool, now_ms: i64) -> (Arc<QueryFrontend>, Arc<FakeDownstream>) {
        let ds = Arc::new(FakeDownstream {
            calls: Mutex::new(Vec::new()),
            fail: AtomicBool::new(fail),
        });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 0,
            now: Arc::new(move || now_ms),
            ..QfeConfig::default()
        };
        (QueryFrontend::new(ds.clone() as Arc<dyn Downstream>, cfg), ds)
    }

    fn range_req(query: &str, start_s: i64, end_s: i64, step_s: i64) -> Request {
        Request::new(
            Method::Get,
            &format!("/api/v1/query_range?query={query}&start={start_s}&end={end_s}&step={step_s}"),
        )
    }

    #[test]
    fn splits_then_serves_second_request_from_cache() {
        let (fe, ds) = frontend(false, 10_000_000);
        let req = range_req("m", 0, 179, 15);
        let first = fe.handle(&req);
        assert_eq!(first.status, Status::OK);
        assert_eq!(first.header("x-ceems-qfe-cache"), Some("miss"));
        let fanned = ds.calls.lock().unwrap().len();
        assert_eq!(fanned, 3, "0..179 at 60s windows spans 3 extents");

        let second = fe.handle(&req);
        assert_eq!(second.header("x-ceems-qfe-cache"), Some("hit"));
        assert_eq!(ds.calls.lock().unwrap().len(), fanned, "no new sub-queries");
        assert_eq!(first.body, second.body, "cached render is byte-identical");
    }

    #[test]
    fn unsafe_expressions_bypass_split_and_cache() {
        let (fe, ds) = frontend(false, 10_000_000);
        let req = range_req("topk(2, m)", 0, 179, 15);
        let resp = fe.handle(&req);
        assert_eq!(resp.header("x-ceems-qfe-cache"), Some("bypass"));
        let calls = ds.calls.lock().unwrap();
        assert_eq!(calls.len(), 1, "forwarded whole, not split");
        assert!(calls[0].contains("query=topk"));
        assert!(fe.cache().is_empty());
    }

    #[test]
    fn recent_window_is_never_cached() {
        // now = 120s; recent_window covers everything ⇒ nothing cacheable.
        let ds = Arc::new(FakeDownstream { calls: Mutex::new(Vec::new()), fail: AtomicBool::new(false) });
        let cfg = QfeConfig {
            split_interval_ms: 60_000,
            recent_window_ms: 1_000_000,
            now: Arc::new(|| 120_000),
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds.clone() as Arc<dyn Downstream>, cfg);
        let resp = fe.handle(&range_req("m", 0, 119, 15));
        assert_eq!(resp.status, Status::OK);
        assert!(fe.cache().is_empty(), "recent extents must not be cached");
        let again = fe.handle(&range_req("m", 0, 119, 15));
        assert_eq!(again.header("x-ceems-qfe-cache"), Some("miss"));
    }

    #[test]
    fn failed_subquery_falls_back_to_whole_proxy() {
        let (fe, ds) = frontend(true, 10_000_000);
        let resp = fe.handle(&range_req("m", 0, 179, 15));
        // Sub-queries failed, then the whole-proxy fallback failed too (the
        // fake downstream fails everything): a 502 surfaces.
        assert_eq!(resp.status, Status::BAD_GATEWAY);
        assert!(ds.calls.lock().unwrap().len() >= 2);
    }

    #[test]
    fn all_replicas_down_serves_stale_cache_with_warning() {
        let (fe, ds) = frontend(false, 10_000_000);
        let warm = fe.handle(&range_req("m", 0, 179, 15));
        assert_eq!(warm.status, Status::OK);
        ds.fail.store(true, Ordering::Relaxed);

        // The longer range needs one fresh extent. Every replica is down,
        // so the frontend serves the three cached extents and says so.
        let resp = fe.handle(&range_req("m", 0, 239, 15));
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-qfe-degraded"), Some("stale"));
        assert_eq!(resp.header("x-ceems-qfe-cache"), Some("degraded"));
        let v: Json = serde_json::from_slice(&resp.body).unwrap();
        let warnings = v["warnings"].as_array().unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].as_str().unwrap().contains("1 of 4 extents"),
            "warning: {}",
            warnings[0]
        );
        // The cached 0..179 window is present; the missing extent is a
        // gap, not an error.
        let values = v["data"]["result"][0]["values"].as_array().unwrap();
        assert_eq!(values.first().unwrap()[0].as_f64(), Some(0.0));
        assert_eq!(values.last().unwrap()[0].as_f64(), Some(165.0));
        assert_eq!(fe.ins.stale_serves.get(), 1.0);

        // With nothing cached there is nothing to degrade to: plain 502.
        let miss = fe.handle(&range_req("other", 0, 59, 15));
        assert_eq!(miss.status, Status::BAD_GATEWAY);
        assert_eq!(fe.ins.stale_serves.get(), 1.0);
    }

    #[test]
    fn trace_reports_qfe_stages() {
        let (fe, _ds) = frontend(false, 10_000_000);
        let req = Request::new(
            Method::Get,
            "/api/v1/query_range?query=m&start=0&end=179&step=15&trace=1",
        );
        let resp = fe.handle(&req);
        let v: Json = serde_json::from_slice(&resp.body).unwrap();
        let trace = &v["data"]["trace"];
        let stages: Vec<&str> = trace["stages"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["name"].as_str().unwrap())
            .collect();
        assert!(stages.contains(&"qfe_cache"), "stages: {stages:?}");
        assert!(stages.contains(&"qfe_split"));
        let sum: f64 = trace["stages"]
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s["ms"].as_f64().unwrap())
            .sum();
        assert!(sum <= trace["totalMs"].as_f64().unwrap() + 1e-6);
        assert_eq!(trace["counts"]["subqueries"], 3);
    }

    #[test]
    fn shed_returns_429_with_retry_after() {
        let ds = Arc::new(FakeDownstream { calls: Mutex::new(Vec::new()), fail: AtomicBool::new(false) });
        let cfg = QfeConfig {
            scheduler: SchedulerConfig {
                tenant_queue_depth: 0,
                max_tenant_concurrency: 1,
                max_concurrency: 1,
                retry_after_s: 0.25,
            },
            ..QfeConfig::default()
        };
        let fe = QueryFrontend::new(ds as Arc<dyn Downstream>, cfg);
        // Hold the only slot on another thread, then overflow the queue.
        let _held = fe.scheduler().acquire("alice").unwrap();
        let resp = fe.handle(&range_req("m", 0, 10, 5).with_header("x-grafana-user", "alice"));
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        assert_eq!(resp.retry_after_secs(), Some(0.25));
        assert_eq!(fe.scheduler().shed_count(), 1);
    }
}
