//! # ceems-qfe — the CEEMS query frontend
//!
//! Sits between the load balancer and the TSDB replicas and makes
//! dashboard-scale range queries cheap without changing a byte of their
//! results:
//!
//! * **Range splitting** ([`split`]): long `query_range` requests are
//!   decomposed into `split_interval`-aligned sub-ranges executed in
//!   parallel. Because the engine evaluates each grid step independently,
//!   partitioning the step grid reproduces the unsplit evaluation exactly —
//!   including `rate`/`increase` lookback, which each sub-query re-reads
//!   from storage.
//! * **Step-aligned results cache** ([`cache`]): immutable past extents are
//!   cached per (tenant, normalized expression, step, grid phase); repeat
//!   renders fetch only the uncovered remainder. A `recent_window` guard
//!   keeps still-settling data out of the cache.
//! * **Per-tenant fair scheduling** ([`sched`]): bounded per-tenant queues,
//!   round-robin dispatch and concurrency caps; overflow is shed with
//!   `429` + `Retry-After`.
//!
//! Split-unsafe expressions (`topk`, `offset`, …) and non-range traffic
//! pass through verbatim. See [`frontend::QueryFrontend`] for the wiring.

pub mod cache;
pub mod downstream;
pub mod frontend;
pub mod sched;
pub mod split;

pub use cache::{ExtentKey, ResultsCache};
pub use downstream::{Downstream, HttpDownstream, RouterDownstream};
pub use frontend::{system_now, NowFn, QfeConfig, QueryFrontend};
pub use sched::{FairScheduler, Permit, SchedulerConfig, Shed};
pub use split::{
    merge_extents, ms_to_secs_param, split_grid, Extent, ExtentData, ExtentSeries, StepGrid,
};
