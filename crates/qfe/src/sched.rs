//! Per-tenant fair scheduling and load shedding.
//!
//! Each tenant gets a bounded FIFO of waiting queries and a concurrency
//! cap. Freed slots are handed out round-robin *across tenants*, so one
//! tenant's 90-day panel burst cannot starve another tenant's 15-minute
//! panels: the flooder is capped at its concurrency limit, its overflow
//! queues up to `queue_depth`, and anything beyond that is shed with
//! `429 Too Many Requests` + `Retry-After`. A global cap bounds the total
//! downstream fan-in (and therefore how many frontend worker threads can
//! block here at once).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Scheduler limits.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Waiting queries allowed per tenant before shedding.
    pub tenant_queue_depth: usize,
    /// Concurrent queries allowed per tenant.
    pub max_tenant_concurrency: usize,
    /// Concurrent queries allowed across all tenants.
    pub max_concurrency: usize,
    /// `Retry-After` hint returned with a shed, in seconds.
    pub retry_after_s: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            tenant_queue_depth: 16,
            max_tenant_concurrency: 4,
            max_concurrency: 16,
            retry_after_s: 1.0,
        }
    }
}

/// A query was refused; retry after the embedded delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shed {
    /// Seconds the client should wait before retrying.
    pub retry_after_s: f64,
}

#[derive(Default)]
struct TenantState {
    running: usize,
    waiting: VecDeque<u64>,
}

#[derive(Default)]
struct SchedInner {
    tenants: HashMap<String, TenantState>,
    /// Tenants with waiters, in round-robin service order.
    rotation: VecDeque<String>,
    granted: HashSet<u64>,
    next_ticket: u64,
    total_running: usize,
    shed_count: u64,
}

/// The fair scheduler. Cloneable via `Arc`; `acquire` blocks the calling
/// worker until a slot frees (or sheds immediately on queue overflow).
pub struct FairScheduler {
    cfg: SchedulerConfig,
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

/// A held execution slot; dropping it releases the slot and dispatches the
/// next waiter round-robin.
pub struct Permit {
    sched: Arc<FairScheduler>,
    tenant: String,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sched.release(&self.tenant);
    }
}

impl FairScheduler {
    /// Creates a scheduler.
    pub fn new(cfg: SchedulerConfig) -> Arc<FairScheduler> {
        Arc::new(FairScheduler {
            cfg,
            inner: Mutex::new(SchedInner::default()),
            cv: Condvar::new(),
        })
    }

    /// The configured limits.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Total queries shed so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.lock().unwrap().shed_count
    }

    /// Queries currently waiting for `tenant`.
    pub fn queue_depth(&self, tenant: &str) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.tenants.get(tenant).map_or(0, |t| t.waiting.len())
    }

    /// Queries currently running for `tenant`.
    pub fn running(&self, tenant: &str) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.tenants.get(tenant).map_or(0, |t| t.running)
    }

    /// Acquires an execution slot for `tenant`, blocking while the tenant
    /// is at its concurrency cap (or the frontend at its global cap) and
    /// the tenant's queue has room. Sheds when the queue is full.
    pub fn acquire(self: &Arc<Self>, tenant: &str) -> Result<Permit, Shed> {
        let mut inner = self.inner.lock().unwrap();
        let (waiting_len, running) = {
            let state = inner.tenants.entry(tenant.to_string()).or_default();
            (state.waiting.len(), state.running)
        };

        let can_run_now = waiting_len == 0
            && running < self.cfg.max_tenant_concurrency
            && inner.total_running < self.cfg.max_concurrency;
        if can_run_now {
            inner.tenants.get_mut(tenant).unwrap().running += 1;
            inner.total_running += 1;
            return Ok(Permit { sched: self.clone(), tenant: tenant.to_string() });
        }

        if waiting_len >= self.cfg.tenant_queue_depth {
            inner.shed_count += 1;
            return Err(Shed { retry_after_s: self.cfg.retry_after_s });
        }

        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let state = inner.tenants.get_mut(tenant).unwrap();
        state.waiting.push_back(ticket);
        if !inner.rotation.iter().any(|t| t == tenant) {
            inner.rotation.push_back(tenant.to_string());
        }
        while !inner.granted.remove(&ticket) {
            inner = self.cv.wait(inner).unwrap();
        }
        Ok(Permit { sched: self.clone(), tenant: tenant.to_string() })
    }

    fn release(&self, tenant: &str) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(state) = inner.tenants.get_mut(tenant) {
            state.running = state.running.saturating_sub(1);
        }
        inner.total_running = inner.total_running.saturating_sub(1);
        self.dispatch(&mut inner);
        drop(inner);
        self.cv.notify_all();
    }

    /// Hands freed capacity to waiters, visiting tenants round-robin.
    fn dispatch(&self, inner: &mut SchedInner) {
        let mut skipped: VecDeque<String> = VecDeque::new();
        while inner.total_running < self.cfg.max_concurrency {
            let Some(tenant) = inner.rotation.pop_front() else {
                break;
            };
            let Some(state) = inner.tenants.get_mut(&tenant) else {
                continue;
            };
            if state.waiting.is_empty() {
                continue; // drop from rotation
            }
            if state.running >= self.cfg.max_tenant_concurrency {
                skipped.push_back(tenant);
                continue;
            }
            let ticket = state.waiting.pop_front().unwrap();
            state.running += 1;
            inner.total_running += 1;
            inner.granted.insert(ticket);
            // Still has waiters? Go to the back of the rotation.
            if !state.waiting.is_empty() {
                inner.rotation.push_back(tenant);
            }
        }
        inner.rotation.extend(skipped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn cfg(depth: usize, per_tenant: usize, global: usize) -> SchedulerConfig {
        SchedulerConfig {
            tenant_queue_depth: depth,
            max_tenant_concurrency: per_tenant,
            max_concurrency: global,
            retry_after_s: 0.5,
        }
    }

    #[test]
    fn immediate_grant_under_caps() {
        let s = FairScheduler::new(cfg(4, 2, 8));
        let p1 = s.acquire("a").unwrap();
        let _p2 = s.acquire("a").unwrap();
        assert_eq!(s.running("a"), 2);
        drop(p1);
        assert_eq!(s.running("a"), 1);
    }

    #[test]
    fn overflow_sheds_with_retry_after() {
        let s = FairScheduler::new(cfg(0, 1, 8));
        let _p = s.acquire("a").unwrap();
        let shed = match s.acquire("a") {
            Err(shed) => shed,
            Ok(_) => panic!("queue depth 0 sheds at once"),
        };
        assert_eq!(shed.retry_after_s, 0.5);
        assert_eq!(s.shed_count(), 1);
    }

    #[test]
    fn blocked_waiter_wakes_on_release() {
        let s = FairScheduler::new(cfg(4, 1, 8));
        let p = s.acquire("a").unwrap();
        let s2 = s.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let h = std::thread::spawn(move || {
            let _p = s2.acquire("a").unwrap();
            done2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0);
        assert_eq!(s.queue_depth("a"), 1);
        drop(p);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn round_robin_alternates_between_tenants() {
        // Global cap 1; tenants a and b each queue two waiters. Releases
        // must alternate a/b/a/b regardless of enqueue order.
        let s = FairScheduler::new(cfg(8, 1, 1));
        let p0 = s.acquire("a").unwrap();
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let mut handles = Vec::new();
        for (tenant, tag) in [("a", "a1"), ("a", "a2"), ("b", "b1"), ("b", "b2")] {
            let s = s.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                let p = s.acquire(tenant).unwrap();
                order.lock().unwrap().push(tag);
                std::thread::sleep(Duration::from_millis(5));
                drop(p);
            }));
            // Deterministic enqueue order: a1, a2, b1, b2.
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(p0);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        // a went first (head of rotation), then strict alternation.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn flooding_tenant_cannot_starve_another() {
        let s = FairScheduler::new(cfg(64, 2, 2));
        // Tenant a saturates the global cap and queues a pile more.
        let held: Vec<Permit> = (0..2).map(|_| s.acquire("a").unwrap()).collect();
        let mut floods = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            floods.push(std::thread::spawn(move || {
                let _p = s.acquire("a").unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        // Tenant b enqueues one; after one release, round-robin must pick b
        // ahead of a's earlier-queued backlog.
        let s2 = s.clone();
        let b = std::thread::spawn(move || {
            let _p = s2.acquire("b").unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        b.join().unwrap(); // b completed while a's backlog still drains
        for f in floods {
            f.join().unwrap();
        }
    }
}
