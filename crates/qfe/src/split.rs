//! Range-splitting arithmetic and result merging.
//!
//! A `query_range` request evaluates the expression on the step grid
//! `start, start+step, …, ≤ end`. This engine evaluates every step
//! independently (see `ceems_tsdb::promql::eval::range_query`), so
//! partitioning the *grid* across sub-requests — rather than the wall-clock
//! interval — reproduces the unsplit evaluation exactly: each step is
//! computed by exactly one sub-request, against the same storage, with the
//! same per-step lookback. The split boundaries are `split_interval`-aligned
//! in absolute time ("day-aligned" at the default interval), which is what
//! makes interior extents shareable between requests with different
//! endpoints.
//!
//! Merging reconstructs the unsplit response *byte for byte*: sample pairs
//! are kept verbatim as parsed JSON (the vendored serde_json prints floats
//! in shortest round-trip form and objects with sorted keys, so
//! parse→reprint is the identity on the TSDB's own output), and series
//! ordering is rebuilt by walking the step grid in ascending order,
//! appending series the first time they carry a sample — the same
//! first-seen rule the unsplit evaluator uses.

use std::collections::HashMap;

use serde_json::Value as Json;

/// The evaluation grid of a `query_range` request (all times in ms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepGrid {
    /// First step.
    pub start_ms: i64,
    /// Inclusive upper bound; the last step is the largest grid point ≤ this.
    pub end_ms: i64,
    /// Step width (> 0).
    pub step_ms: i64,
}

impl StepGrid {
    /// All step timestamps, ascending.
    pub fn steps(self) -> impl Iterator<Item = i64> {
        let (start, end, step) = (self.start_ms, self.end_ms, self.step_ms);
        (0..).map(move |i| start + i * step).take_while(move |t| *t <= end)
    }

    /// True when the grid holds no steps (`start > end`).
    pub fn is_empty(&self) -> bool {
        self.start_ms > self.end_ms
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            ((self.end_ms - self.start_ms) / self.step_ms + 1) as usize
        }
    }
}

/// One split extent: the contiguous run of grid steps falling inside a
/// single `split_interval`-aligned window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Window index (`floor(t / split_interval)` of every contained step).
    pub chunk: i64,
    /// First contained grid step (ms).
    pub first_step_ms: i64,
    /// Last contained grid step (ms).
    pub last_step_ms: i64,
    /// Step width, copied from the grid (ms).
    pub step_ms: i64,
}

impl Extent {
    /// Steps of this extent, ascending.
    pub fn steps(self) -> impl Iterator<Item = i64> {
        StepGrid {
            start_ms: self.first_step_ms,
            end_ms: self.last_step_ms,
            step_ms: self.step_ms,
        }
        .steps()
    }

    /// Number of steps in the extent (always ≥ 1 by construction).
    pub fn step_count(&self) -> usize {
        ((self.last_step_ms - self.first_step_ms) / self.step_ms + 1) as usize
    }
}

/// Partitions a grid into extents of at most one aligned window each.
/// Returns an empty vec for an empty grid.
pub fn split_grid(grid: StepGrid, split_interval_ms: i64) -> Vec<Extent> {
    let mut out: Vec<Extent> = Vec::new();
    for t in grid.steps() {
        let chunk = t.div_euclid(split_interval_ms);
        match out.last_mut() {
            Some(e) if e.chunk == chunk => e.last_step_ms = t,
            _ => out.push(Extent {
                chunk,
                first_step_ms: t,
                last_step_ms: t,
                step_ms: grid.step_ms,
            }),
        }
    }
    out
}

/// Renders a millisecond timestamp as the `start=`/`end=` seconds parameter
/// of a sub-request, such that the TSDB's `(secs * 1000.0) as i64` parse
/// recovers exactly `t_ms`. Division by 1000 is not always exactly
/// invertible in f64, so the value is nudged by ULPs until the round trip
/// lands (a couple of steps at most).
pub fn ms_to_secs_param(t_ms: i64) -> String {
    let mut s = t_ms as f64 / 1000.0;
    for _ in 0..4 {
        let back = (s * 1000.0) as i64;
        if back == t_ms {
            break;
        }
        // Truncation erred low or high; walk one ULP toward the target.
        let bits = s.to_bits();
        s = if (back < t_ms) == (s >= 0.0) {
            f64::from_bits(bits + 1)
        } else {
            f64::from_bits(bits.wrapping_sub(1))
        };
    }
    debug_assert_eq!((s * 1000.0) as i64, t_ms);
    format!("{s:?}")
}

/// One series of a fetched (or cached) extent, holding the downstream JSON
/// verbatim.
#[derive(Clone, Debug)]
pub struct ExtentSeries {
    /// The `metric` label object, exactly as the TSDB returned it.
    pub metric: Json,
    /// Canonical serialization of `metric` (sorted keys), the identity key.
    pub metric_key: String,
    /// Step (ms) → the verbatim `[unix_seconds, "value"]` pair.
    pub samples: HashMap<i64, Json>,
}

/// A fetched or cached extent result: series in downstream response order
/// (first-seen over the extent's steps).
#[derive(Clone, Debug, Default)]
pub struct ExtentData {
    /// Series in response order.
    pub series: Vec<ExtentSeries>,
}

impl ExtentData {
    /// Approximate heap footprint, for the cache's byte budget.
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<ExtentData>();
        for s in &self.series {
            n += std::mem::size_of::<ExtentSeries>() + s.metric_key.len() * 2;
            // Each sample: map slot + a small JSON array of two scalars.
            n += s.samples.len() * 96;
        }
        n
    }

    /// Parses a TSDB `query_range` success envelope into extent form.
    /// Returns `None` when the payload is not a success/matrix response —
    /// the caller falls back to proxying the original request.
    pub fn from_response(body: &[u8]) -> Option<ExtentData> {
        let v: Json = serde_json::from_slice(body).ok()?;
        if v.get("status")?.as_str()? != "success" {
            return None;
        }
        let data = v.get("data")?;
        if data.get("resultType")?.as_str()? != "matrix" {
            return None;
        }
        let mut out = ExtentData::default();
        for entry in data.get("result")?.as_array()? {
            let metric = entry.get("metric")?.clone();
            let metric_key = serde_json::to_string(&metric).ok()?;
            let mut samples = HashMap::new();
            for pair in entry.get("values")?.as_array()? {
                let t_secs = pair.get(0)?.as_f64()?;
                samples.insert((t_secs * 1000.0).round() as i64, pair.clone());
            }
            out.series.push(ExtentSeries { metric, metric_key, samples });
        }
        Some(out)
    }
}

/// Merges extent results (ascending, non-overlapping) back into the
/// unsplit `data.result` array.
///
/// Ordering proof sketch: the unsplit evaluator appends a series to its
/// output the first step it carries a sample, and series first seen at the
/// same step appear in that step's evaluation order. Each extent's series
/// order is exactly first-seen order over *its own* steps (it came from the
/// same evaluator), so walking steps ascending and, per step, scanning the
/// extent's series in stored order for not-yet-emitted series reproduces
/// both rules.
pub fn merge_extents(extents: &[(Extent, std::sync::Arc<ExtentData>)]) -> Vec<Json> {
    let mut order: Vec<(Json, Vec<Json>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for (extent, data) in extents {
        for t in extent.steps() {
            for s in &data.series {
                if let Some(pair) = s.samples.get(&t) {
                    let idx = *index.entry(s.metric_key.clone()).or_insert_with(|| {
                        order.push((s.metric.clone(), Vec::new()));
                        order.len() - 1
                    });
                    order[idx].1.push(pair.clone());
                }
            }
        }
    }
    order
        .into_iter()
        .map(|(metric, values)| {
            serde_json::json!({"metric": metric, "values": values})
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grid_steps_match_range_query_rule() {
        let g = StepGrid { start_ms: 10, end_ms: 70, step_ms: 30 };
        assert_eq!(g.steps().collect::<Vec<_>>(), vec![10, 40, 70]);
        assert_eq!(g.len(), 3);
        let empty = StepGrid { start_ms: 100, end_ms: 50, step_ms: 10 };
        assert!(empty.is_empty());
        assert_eq!(empty.steps().count(), 0);
    }

    #[test]
    fn split_is_aligned_and_complete() {
        let g = StepGrid { start_ms: 50, end_ms: 350, step_ms: 40 };
        let extents = split_grid(g, 100);
        // Steps: 50 90 | 130 170 | 210 250 290 | 330
        assert_eq!(extents.len(), 4);
        assert_eq!(extents[0], Extent { chunk: 0, first_step_ms: 50, last_step_ms: 90, step_ms: 40 });
        assert_eq!(extents[2].first_step_ms, 210);
        assert_eq!(extents[2].last_step_ms, 290);
        let all: Vec<i64> = extents.iter().flat_map(|e| e.steps()).collect();
        assert_eq!(all, g.steps().collect::<Vec<_>>());
    }

    #[test]
    fn negative_times_split_with_floor_semantics() {
        let g = StepGrid { start_ms: -250, end_ms: 50, step_ms: 100 };
        let extents = split_grid(g, 200);
        let all: Vec<i64> = extents.iter().flat_map(|e| e.steps()).collect();
        assert_eq!(all, vec![-250, -150, -50, 50]);
        assert_eq!(extents[0].chunk, -2);
    }

    #[test]
    fn ms_param_roundtrips_awkward_values() {
        for t in [0i64, 1, 999, 15_001, 135_000, 86_399_999, 1_700_000_000_123, -15_001] {
            let s = ms_to_secs_param(t);
            let parsed: f64 = s.parse().unwrap();
            assert_eq!((parsed * 1000.0) as i64, t, "param {s} for {t}");
        }
    }

    #[test]
    fn merge_rebuilds_first_seen_order() {
        // Extent 1 (steps 0,10): series a appears at 10. Extent 2 (steps
        // 20,30): b at 20, a at 30 — output order must be [a, b].
        let mk = |key: &str, samples: Vec<(i64, f64)>| ExtentSeries {
            metric: serde_json::json!({"n": key}),
            metric_key: key.to_string(),
            samples: samples
                .into_iter()
                .map(|(t, v)| (t, serde_json::json!([t as f64 / 1000.0, format!("{v}")])))
                .collect(),
        };
        let e1 = Extent { chunk: 0, first_step_ms: 0, last_step_ms: 10, step_ms: 10 };
        let e2 = Extent { chunk: 1, first_step_ms: 20, last_step_ms: 30, step_ms: 10 };
        let d1 = Arc::new(ExtentData { series: vec![mk("a", vec![(10, 1.0)])] });
        let d2 = Arc::new(ExtentData {
            series: vec![mk("b", vec![(20, 2.0)]), mk("a", vec![(30, 3.0)])],
        });
        let merged = merge_extents(&[(e1, d1), (e2, d2)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0]["metric"]["n"], "a");
        assert_eq!(merged[1]["metric"]["n"], "b");
        assert_eq!(merged[0]["values"].as_array().unwrap().len(), 2);
    }
}
