//! The frontend's two load-bearing identities, as properties:
//!
//! 1. **split + merge ≡ unsplit** — for arbitrary series (counter resets,
//!    NaN gaps included), arbitrary range/step/phase and arbitrary split
//!    interval, the frontend's assembled response is byte-for-byte the
//!    unsplit TSDB response.
//! 2. **cached ≡ uncached** — re-issuing the same (and overlapping)
//!    requests against a warm cache returns the same bytes again while
//!    fetching strictly fewer steps.

use std::sync::Arc;

use ceems_http::{Method, Request, Response};
use ceems_metrics::labels::LabelSetBuilder;
use ceems_qfe::{QfeConfig, QueryFrontend, RouterDownstream};
use ceems_tsdb::httpapi::api_router;
use ceems_tsdb::Tsdb;
use proptest::prelude::*;

const SCRAPE_MS: i64 = 15_000;

/// Builds a TSDB from per-series sample plans. Each sample is
/// `(increment, reset, nan)`: values accumulate like a counter, `reset`
/// drops the accumulator back to zero (counter restart), `nan` writes a NaN
/// sample (a scrape that failed to parse).
fn db_with(series: &[Vec<(f64, bool, bool)>]) -> Arc<Tsdb> {
    let db = Arc::new(Tsdb::default());
    for (si, plan) in series.iter().enumerate() {
        let labels = LabelSetBuilder::new()
            .label("__name__", "m")
            .label("instance", format!("n{si}"))
            .build();
        let mut acc = 0.0;
        for (i, (inc, reset, nan)) in plan.iter().enumerate() {
            if *reset {
                acc = 0.0;
            }
            acc += inc;
            let v = if *nan { f64::NAN } else { acc };
            db.append(&labels, i as i64 * SCRAPE_MS, v);
        }
    }
    db
}

/// A frontend whose downstream is an in-process TSDB router, with
/// everything cacheable (the clock sits far in the future and
/// `recent_window` is zero).
fn frontend_over(db: Arc<Tsdb>, split_interval_ms: i64) -> Arc<QueryFrontend> {
    let router = api_router(db, Arc::new(|| i64::MAX / 2));
    QueryFrontend::new(
        Arc::new(RouterDownstream::new(router)),
        QfeConfig {
            split_interval_ms,
            recent_window_ms: 0,
            now: Arc::new(|| i64::MAX / 2),
            ..QfeConfig::default()
        },
    )
}

const QUERIES: &[&str] = &[
    "m",
    "sum(m)",
    "rate(m[45s])",
    "increase(m[75s])",
    "avg_over_time(m[30s])",
    "max_over_time(m[60s])",
    "sum by (instance) (rate(m[30s]))",
    "sum(rate(m[2m])) / 1e9",
];

fn range_request(query: &str, start_ms: i64, end_ms: i64, step_ms: i64) -> Request {
    // Express the times the way a client would (decimal seconds); the
    // frontend must cope with whatever lands on the TSDB's ms grid.
    Request::new(
        Method::Get,
        &format!(
            "/api/v1/query_range?query={}&start={}&end={}&step={}",
            ceems_http::url::encode_component(query),
            start_ms as f64 / 1000.0,
            end_ms as f64 / 1000.0,
            step_ms as f64 / 1000.0,
        ),
    )
}

fn unsplit(db: Arc<Tsdb>, req: &Request) -> Response {
    api_router(db, Arc::new(|| i64::MAX / 2)).dispatch(req.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity 1 + 2 over the full random matrix.
    #[test]
    fn split_merge_and_cache_are_identities(
        series in proptest::collection::vec(
            proptest::collection::vec((0.0f64..50.0, any::<bool>(), any::<bool>()), 8..40),
            1..4,
        ),
        query_idx in 0usize..QUERIES.len(),
        start_steps in 0i64..6,
        len_steps in 1i64..30,
        step_s in 5i64..120,
        split_s in 30i64..300,
    ) {
        let db = db_with(&series);
        let query = QUERIES[query_idx];
        let step_ms = step_s * 1000;
        let start_ms = start_steps * 7_000; // off-grid phases included
        let end_ms = start_ms + len_steps * step_ms;
        let req = range_request(query, start_ms, end_ms, step_ms);

        let want = unsplit(db.clone(), &req);
        prop_assert_eq!(want.status, ceems_http::Status::OK, "baseline failed: {}", want.body_string());

        let fe = frontend_over(db, split_s * 1000);
        let cold = fe.handle(&req);
        prop_assert_eq!(cold.status, ceems_http::Status::OK);
        prop_assert_eq!(
            cold.body_string(), want.body_string(),
            "split+merge diverged for {} [{start_ms},{end_ms}] step {step_ms} split {split_s}s",
            query
        );

        // Same request again: all extents cached, bytes identical.
        let warm = fe.handle(&req);
        prop_assert_eq!(warm.header("x-ceems-qfe-cache"), Some("hit"));
        prop_assert_eq!(warm.header("x-ceems-qfe-fetched-steps"), Some("0"));
        prop_assert_eq!(warm.body_string(), want.body_string(), "cached render diverged");
    }

    /// A *shifted* request over a warm cache reuses interior extents and
    /// still matches its own unsplit baseline (partial-hit correctness).
    #[test]
    fn overlapping_request_serves_partial_hits_exactly(
        series in proptest::collection::vec(
            proptest::collection::vec((0.0f64..50.0, any::<bool>(), any::<bool>()), 12..40),
            1..3,
        ),
        query_idx in 0usize..QUERIES.len(),
        step_s in 5i64..60,
        shift_windows in 1i64..3,
    ) {
        let db = db_with(&series);
        let query = QUERIES[query_idx];
        let step_ms = step_s * 1000;
        let split_ms = 4 * step_ms; // several steps per window
        let first = range_request(query, 0, 16 * step_ms, step_ms);

        let fe = frontend_over(db.clone(), split_ms);
        let cold = fe.handle(&first);
        prop_assert_eq!(cold.status, ceems_http::Status::OK);

        // Slide the range forward by whole windows: the overlap must come
        // from cache, the remainder from the TSDB, the bytes from both.
        let shift = shift_windows * split_ms;
        let second = range_request(query, shift, shift + 16 * step_ms, step_ms);
        let warm = fe.handle(&second);
        let want = unsplit(db, &second);
        prop_assert_eq!(warm.body_string(), want.body_string(), "partial-hit render diverged");
        prop_assert_eq!(warm.header("x-ceems-qfe-cache"), Some("partial"));
        let fetched: usize = warm.header("x-ceems-qfe-fetched-steps").unwrap().parse().unwrap();
        let cached: usize = warm.header("x-ceems-qfe-cached-steps").unwrap().parse().unwrap();
        prop_assert!(cached > 0, "no extent reused across overlapping requests");
        prop_assert!(fetched < 17, "warm request re-fetched everything");
    }
}
