//! Litestream-style continuous replication.
//!
//! Litestream tails SQLite's WAL and ships segments to object storage,
//! organised into *generations* (a new generation starts whenever the WAL
//! lineage is broken, e.g. after a checkpoint). [`Replicator`] does the same
//! against [`crate::wal`] segments on a local "remote" directory: call
//! [`Replicator::sync`] on an interval and every finished WAL segment plus
//! the latest snapshot is mirrored; [`restore`] rebuilds a database
//! directory from a generation.

use std::fs;
use std::path::{Path, PathBuf};

use crate::db::{copy_dir, Db, DbError};
use crate::wal::list_segments;

/// Continuously mirrors a database directory into a backup directory.
pub struct Replicator {
    db_dir: PathBuf,
    backup_dir: PathBuf,
    generation: u64,
    syncs: u64,
}

impl Replicator {
    /// Creates a replicator shipping `db_dir` into `backup_dir`.
    pub fn new(db_dir: &Path, backup_dir: &Path) -> std::io::Result<Replicator> {
        fs::create_dir_all(backup_dir)?;
        // Resume the latest generation, or start generation 0.
        let generation = list_generations(backup_dir)?.last().copied().unwrap_or(0);
        Ok(Replicator {
            db_dir: db_dir.to_path_buf(),
            backup_dir: backup_dir.to_path_buf(),
            generation,
            syncs: 0,
        })
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of sync passes performed.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    fn gen_dir(&self) -> PathBuf {
        self.backup_dir.join(format!("generation-{:04}", self.generation))
    }

    /// One replication pass: copies new/changed WAL segments, the snapshot
    /// and the schema meta file. Returns the number of files copied.
    pub fn sync(&mut self) -> std::io::Result<usize> {
        self.syncs += 1;
        let gen_dir = self.gen_dir();
        fs::create_dir_all(gen_dir.join("wal"))?;
        let mut copied = 0;

        for file in ["snapshot.json", "schemas.json"] {
            let src = self.db_dir.join(file);
            if src.exists() {
                let dest = gen_dir.join(file);
                if file_changed(&src, &dest)? {
                    fs::copy(&src, &dest)?;
                    copied += 1;
                }
            }
        }

        for (_, seg) in list_segments(&self.db_dir.join("wal"))? {
            let dest = gen_dir.join("wal").join(seg.file_name().unwrap());
            if file_changed(&seg, &dest)? {
                fs::copy(&seg, &dest)?;
                copied += 1;
            }
        }
        Ok(copied)
    }

    /// Starts a new generation (after a checkpoint breaks WAL lineage).
    pub fn new_generation(&mut self) -> std::io::Result<()> {
        self.generation += 1;
        fs::create_dir_all(self.gen_dir())?;
        Ok(())
    }
}

fn file_changed(src: &Path, dest: &Path) -> std::io::Result<bool> {
    if !dest.exists() {
        return Ok(true);
    }
    let (s, d) = (fs::metadata(src)?, fs::metadata(dest)?);
    Ok(s.len() != d.len())
}

/// Lists generation numbers present in a backup directory.
pub fn list_generations(backup_dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    if !backup_dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(backup_dir)? {
        let entry = entry?;
        if let Some(n) = entry
            .file_name()
            .to_string_lossy()
            .strip_prefix("generation-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push(n);
        }
    }
    out.sort();
    Ok(out)
}

/// Restores the latest generation from `backup_dir` into `target_dir` and
/// opens the recovered database.
pub fn restore(backup_dir: &Path, target_dir: &Path) -> Result<Db, DbError> {
    let generations = list_generations(backup_dir)?;
    let latest = generations
        .last()
        .ok_or_else(|| DbError::Storage("no generations in backup".to_string()))?;
    let gen_dir = backup_dir.join(format!("generation-{:04}", latest));
    copy_dir(&gen_dir, target_dir)?;
    Db::open(target_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ceems-bkp-{}-{}-{}",
            name,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column::required("id", ColumnType::Int),
                Column::required("v", ColumnType::Real),
            ],
            "id",
            &[],
        )
        .unwrap()
    }

    #[test]
    fn replicate_and_restore() {
        let db_dir = tmpdir("src");
        let bk_dir = tmpdir("dst");
        let rs_dir = tmpdir("restored");

        let mut db = Db::open(&db_dir).unwrap();
        db.create_table("t", schema()).unwrap();
        let mut repl = Replicator::new(&db_dir, &bk_dir).unwrap();

        let mut total_copied = 0;
        for i in 0..10 {
            db.upsert("t", vec![Value::Int(i), Value::Real(i as f64)])
                .unwrap();
            if i % 3 == 0 {
                total_copied += repl.sync().unwrap();
            }
        }
        total_copied += repl.sync().unwrap();
        assert!(total_copied >= 1);
        // A sync with no intervening writes copies nothing.
        assert_eq!(repl.sync().unwrap(), 0);
        drop(db);

        let restored = restore(&bk_dir, &rs_dir).unwrap();
        assert_eq!(restored.table("t").unwrap().len(), 10);

        for d in [db_dir, bk_dir, rs_dir] {
            fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn generations_advance() {
        let db_dir = tmpdir("gsrc");
        let bk_dir = tmpdir("gdst");
        let mut db = Db::open(&db_dir).unwrap();
        db.create_table("t", schema()).unwrap();
        let mut repl = Replicator::new(&db_dir, &bk_dir).unwrap();
        repl.sync().unwrap();
        assert_eq!(repl.generation(), 0);
        db.snapshot().unwrap();
        repl.new_generation().unwrap();
        repl.sync().unwrap();
        assert_eq!(repl.generation(), 1);
        assert_eq!(list_generations(&bk_dir).unwrap(), vec![0, 1]);

        // A fresh replicator resumes the latest generation.
        let repl2 = Replicator::new(&db_dir, &bk_dir).unwrap();
        assert_eq!(repl2.generation(), 1);

        fs::remove_dir_all(db_dir).unwrap();
        fs::remove_dir_all(bk_dir).unwrap();
    }

    #[test]
    fn restore_without_backup_fails() {
        let empty = tmpdir("none");
        let target = tmpdir("tgt");
        assert!(restore(&empty, &target).is_err());
        fs::remove_dir_all(empty).unwrap();
        fs::remove_dir_all(target).unwrap();
    }

    #[test]
    fn restore_survives_in_flight_writes() {
        // Sync mid-stream, write more, sync again; restore sees everything
        // because WAL segments are replayed idempotently.
        let db_dir = tmpdir("mid");
        let bk_dir = tmpdir("mid-bk");
        let rs_dir = tmpdir("mid-rs");
        let mut db = Db::open(&db_dir).unwrap();
        db.create_table("t", schema()).unwrap();
        let mut repl = Replicator::new(&db_dir, &bk_dir).unwrap();
        db.upsert("t", vec![Value::Int(1), Value::Real(1.0)]).unwrap();
        repl.sync().unwrap();
        db.upsert("t", vec![Value::Int(2), Value::Real(2.0)]).unwrap();
        repl.sync().unwrap();
        let restored = restore(&bk_dir, &rs_dir).unwrap();
        assert_eq!(restored.table("t").unwrap().len(), 2);
        for d in [db_dir, bk_dir, rs_dir] {
            fs::remove_dir_all(d).unwrap();
        }
    }
}
