//! The database: durable tables behind a WAL, with snapshot + replay
//! recovery.
//!
//! Write access is `&mut self`: the type system enforces the single-writer
//! discipline the paper uses to justify SQLite ("only one go routine writes
//! to DB at a configured interval"). Concurrent readers share snapshots via
//! cloned tables or wrap the `Db` in a lock at a higher layer.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::query::{aggregate, Aggregate, Filter, Query};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Row, Value};
use crate::wal::{replay, Wal, WalError, WalRecord};

/// Database error.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem / WAL failure.
    Storage(String),
    /// Schema violation.
    Schema(String),
    /// Unknown table.
    NoSuchTable(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<WalError> for DbError {
    fn from(e: WalError) -> Self {
        DbError::Storage(e.to_string())
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Storage(e.to_string())
    }
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    tables: BTreeMap<String, Table>,
}

/// An embedded relational database rooted at a directory.
pub struct Db {
    dir: PathBuf,
    tables: BTreeMap<String, Table>,
    wal: Wal,
}

const SNAPSHOT_FILE: &str = "snapshot.json";
const META_FILE: &str = "schemas.json";
const WAL_DIR: &str = "wal";

impl Db {
    /// Opens (creating if needed) a database in `dir`, recovering state from
    /// the latest snapshot plus WAL replay.
    pub fn open(dir: &Path) -> Result<Db, DbError> {
        fs::create_dir_all(dir)?;
        let mut tables: BTreeMap<String, Table> = BTreeMap::new();

        // 1. Snapshot, if present.
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let data = fs::read_to_string(&snap_path)?;
            let snap: Snapshot =
                serde_json::from_str(&data).map_err(|e| DbError::Storage(e.to_string()))?;
            tables = snap.tables;
        }

        // 2. Schemas created after the snapshot.
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            let data = fs::read_to_string(&meta_path)?;
            let schemas: BTreeMap<String, Schema> =
                serde_json::from_str(&data).map_err(|e| DbError::Storage(e.to_string()))?;
            for (name, schema) in schemas {
                tables.entry(name).or_insert_with(|| Table::new(schema));
            }
        }

        // 3. WAL replay (upserts/deletes are idempotent, so replaying
        //    records already covered by the snapshot is harmless).
        let wal_dir = dir.join(WAL_DIR);
        let (records, _torn) = replay(&wal_dir)?;
        for rec in records {
            match rec {
                WalRecord::Upsert { table, row } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.upsert(row).map_err(|e| DbError::Schema(e.to_string()))?;
                    }
                }
                WalRecord::Delete { table, pk } => {
                    if let Some(t) = tables.get_mut(&table) {
                        t.delete(&pk);
                    }
                }
                WalRecord::Checkpoint => {}
            }
        }

        let wal = Wal::open(&wal_dir, 4 << 20)?;
        Ok(Db {
            dir: dir.to_path_buf(),
            tables,
            wal,
        })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Creates a table if it does not already exist.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Ok(());
        }
        self.tables.insert(name.to_string(), Table::new(schema));
        self.persist_meta()
    }

    fn persist_meta(&self) -> Result<(), DbError> {
        let schemas: BTreeMap<&String, &Schema> =
            self.tables.iter().map(|(n, t)| (n, t.schema())).collect();
        let json = serde_json::to_string(&schemas).map_err(|e| DbError::Storage(e.to_string()))?;
        write_atomic(&self.dir.join(META_FILE), json.as_bytes())?;
        Ok(())
    }

    /// Table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Inserts or replaces a row (WAL first, then apply).
    pub fn upsert(&mut self, table: &str, row: Row) -> Result<(), DbError> {
        if !self.tables.contains_key(table) {
            return Err(DbError::NoSuchTable(table.to_string()));
        }
        // Validate before logging so the WAL never contains bad rows.
        let validated = self
            .tables
            .get(table)
            .unwrap()
            .schema()
            .validate(row)
            .map_err(|e| DbError::Schema(e.to_string()))?;
        self.wal.append(&WalRecord::Upsert {
            table: table.to_string(),
            row: validated.clone(),
        })?;
        self.tables
            .get_mut(table)
            .unwrap()
            .upsert(validated)
            .map_err(|e| DbError::Schema(e.to_string()))?;
        Ok(())
    }

    /// Deletes by primary key; returns true if a row was removed.
    pub fn delete(&mut self, table: &str, pk: &Value) -> Result<bool, DbError> {
        if !self.tables.contains_key(table) {
            return Err(DbError::NoSuchTable(table.to_string()));
        }
        self.wal.append(&WalRecord::Delete {
            table: table.to_string(),
            pk: pk.clone(),
        })?;
        Ok(self.tables.get_mut(table).unwrap().delete(pk).is_some())
    }

    /// Point lookup.
    pub fn get(&self, table: &str, pk: &Value) -> Result<Option<Row>, DbError> {
        Ok(self.table(table)?.get(pk).cloned())
    }

    /// Runs a query.
    pub fn query(&self, table: &str, q: &Query) -> Result<Vec<Row>, DbError> {
        Ok(q.run(self.table(table)?))
    }

    /// Runs a group-by aggregation.
    pub fn aggregate(
        &self,
        table: &str,
        filter: &Filter,
        group_by: &[&str],
        aggs: &[Aggregate],
    ) -> Result<Vec<Row>, DbError> {
        Ok(aggregate(self.table(table)?, filter, group_by, aggs))
    }

    /// Writes a snapshot, checkpoints the WAL and drops old segments.
    pub fn snapshot(&mut self) -> Result<(), DbError> {
        let snap = Snapshot {
            tables: self.tables.clone(),
        };
        let json = serde_json::to_string(&snap).map_err(|e| DbError::Storage(e.to_string()))?;
        write_atomic(&self.dir.join(SNAPSHOT_FILE), json.as_bytes())?;
        let seq = self.wal.append(&WalRecord::Checkpoint)?;
        self.wal.truncate_before(seq)?;
        Ok(())
    }

    /// Punctual backup: copies the whole database directory (snapshot first
    /// so the copy is current). This is the API server's built-in backup.
    pub fn backup_to(&mut self, dest: &Path) -> Result<(), DbError> {
        self.snapshot()?;
        copy_dir(&self.dir, dest)?;
        Ok(())
    }
}

/// Recursively copies a directory.
pub(crate) fn copy_dir(src: &Path, dest: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dest)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let target = dest.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &target)?;
        } else {
            fs::copy(entry.path(), target)?;
        }
    }
    Ok(())
}

fn write_atomic(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, data)?;
    fs::rename(tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ceems-db-{}-{}-{}",
            name,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn jobs_schema() -> Schema {
        Schema::new(
            vec![
                Column::required("uuid", ColumnType::Text),
                Column::required("user", ColumnType::Text),
                Column::required("energy", ColumnType::Real),
            ],
            "uuid",
            &["user"],
        )
        .unwrap()
    }

    #[test]
    fn crud_and_query() {
        let dir = tmpdir("crud");
        let mut db = Db::open(&dir).unwrap();
        db.create_table("jobs", jobs_schema()).unwrap();
        db.upsert("jobs", vec!["j1".into(), "alice".into(), 5.0.into()])
            .unwrap();
        db.upsert("jobs", vec!["j2".into(), "bob".into(), 7.0.into()])
            .unwrap();
        assert_eq!(db.get("jobs", &"j1".into()).unwrap().unwrap()[1], Value::Text("alice".into()));
        assert!(db.delete("jobs", &"j1".into()).unwrap());
        assert!(!db.delete("jobs", &"j1".into()).unwrap());
        let rows = db.query("jobs", &Query::all()).unwrap();
        assert_eq!(rows.len(), 1);

        assert!(matches!(
            db.upsert("nope", vec![]),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.upsert("jobs", vec!["x".into()]),
            Err(DbError::Schema(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_from_wal_without_snapshot() {
        let dir = tmpdir("walrec");
        {
            let mut db = Db::open(&dir).unwrap();
            db.create_table("jobs", jobs_schema()).unwrap();
            for i in 0..20 {
                db.upsert(
                    "jobs",
                    vec![format!("j{i}").into(), "alice".into(), (i as f64).into()],
                )
                .unwrap();
            }
            db.delete("jobs", &"j0".into()).unwrap();
        } // no snapshot taken
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.table("jobs").unwrap().len(), 19);
        assert!(db.get("jobs", &"j0".into()).unwrap().is_none());
        assert_eq!(
            db.get("jobs", &"j7".into()).unwrap().unwrap()[2],
            Value::Real(7.0)
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_from_snapshot_plus_tail() {
        let dir = tmpdir("snaprec");
        {
            let mut db = Db::open(&dir).unwrap();
            db.create_table("jobs", jobs_schema()).unwrap();
            db.upsert("jobs", vec!["j1".into(), "a".into(), 1.0.into()])
                .unwrap();
            db.snapshot().unwrap();
            db.upsert("jobs", vec!["j2".into(), "b".into(), 2.0.into()])
                .unwrap();
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.table("jobs").unwrap().len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn aggregation_through_db() {
        let dir = tmpdir("agg");
        let mut db = Db::open(&dir).unwrap();
        db.create_table("jobs", jobs_schema()).unwrap();
        for (u, user, e) in [("j1", "a", 1.0), ("j2", "a", 3.0), ("j3", "b", 10.0)] {
            db.upsert("jobs", vec![u.into(), user.into(), e.into()])
                .unwrap();
        }
        let out = db
            .aggregate(
                "jobs",
                &Filter::True,
                &["user"],
                &[Aggregate::Sum("energy".into())],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Text("a".into()), Value::Real(4.0)]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn punctual_backup_restores() {
        let dir = tmpdir("bak");
        let bdir = tmpdir("bak-dest");
        {
            let mut db = Db::open(&dir).unwrap();
            db.create_table("jobs", jobs_schema()).unwrap();
            db.upsert("jobs", vec!["j1".into(), "a".into(), 1.0.into()])
                .unwrap();
            db.backup_to(&bdir).unwrap();
        }
        let restored = Db::open(&bdir).unwrap();
        assert_eq!(restored.table("jobs").unwrap().len(), 1);
        fs::remove_dir_all(dir).unwrap();
        fs::remove_dir_all(bdir).unwrap();
    }

    #[test]
    fn create_table_is_idempotent_and_survives_restart() {
        let dir = tmpdir("meta");
        {
            let mut db = Db::open(&dir).unwrap();
            db.create_table("jobs", jobs_schema()).unwrap();
            db.create_table("jobs", jobs_schema()).unwrap();
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.table_names(), vec!["jobs".to_string()]);
        fs::remove_dir_all(dir).unwrap();
    }
}
