#![warn(missing_docs)]
//! Embedded single-writer relational store (S6/S7 in `DESIGN.md`).
//!
//! The CEEMS API server stores compute units and their aggregate metrics in
//! SQLite, continuously backed up by Litestream. This crate is the stand-in:
//!
//! * [`value`] / [`schema`] — typed values, rows and table schemas.
//! * [`table`] — in-memory tables with a primary-key BTree and optional
//!   secondary indices.
//! * [`query`] — filter/projection/sort/limit queries and group-by
//!   aggregation (the rollups behind Fig. 2a/2b).
//! * [`wal`] — a JSON-lines write-ahead log with CRC-protected records and
//!   segment rotation.
//! * [`db`] — the database: single-writer discipline (the paper's stated
//!   reason SQLite suffices), snapshot + WAL recovery.
//! * [`backup`] — Litestream-style continuous WAL shipping into backup
//!   generations, plus the API server's punctual snapshot backups.

pub mod backup;
pub mod db;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;
pub mod wal;

pub use db::{Db, DbError};
pub use query::{Aggregate, Filter, Order, Query};
pub use schema::{Column, ColumnType, Schema};
pub use table::Table;
pub use value::{Row, Value};
