//! Filters, queries and group-by aggregation.
//!
//! This is the slice of SQL the CEEMS API server actually issues: filtered
//! selects over one table, ordered/limited listings (Fig. 2b), and group-by
//! aggregates (Fig. 2a and the operator-side rollups).

use std::collections::BTreeMap;

use crate::table::Table;
use crate::value::{Row, Value};

/// A row predicate.
#[derive(Clone, Debug)]
pub enum Filter {
    /// Always true.
    True,
    /// `col = v`
    Eq(String, Value),
    /// `col != v`
    Ne(String, Value),
    /// `col < v`
    Lt(String, Value),
    /// `col <= v`
    Le(String, Value),
    /// `col > v`
    Gt(String, Value),
    /// `col >= v`
    Ge(String, Value),
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Evaluates the predicate against a row of `table`'s schema. Unknown
    /// columns never match (comparisons against a missing column are false).
    pub fn eval(&self, table: &Table, row: &Row) -> bool {
        match self {
            Filter::True => true,
            Filter::Eq(c, v) => cmp(table, row, c, |o| o == std::cmp::Ordering::Equal, v),
            Filter::Ne(c, v) => cmp(table, row, c, |o| o != std::cmp::Ordering::Equal, v),
            Filter::Lt(c, v) => cmp(table, row, c, |o| o == std::cmp::Ordering::Less, v),
            Filter::Le(c, v) => cmp(table, row, c, |o| o != std::cmp::Ordering::Greater, v),
            Filter::Gt(c, v) => cmp(table, row, c, |o| o == std::cmp::Ordering::Greater, v),
            Filter::Ge(c, v) => cmp(table, row, c, |o| o != std::cmp::Ordering::Less, v),
            Filter::And(fs) => fs.iter().all(|f| f.eval(table, row)),
            Filter::Or(fs) => fs.iter().any(|f| f.eval(table, row)),
            Filter::Not(f) => !f.eval(table, row),
        }
    }

    /// If the filter pins an indexed column to an exact value, returns it so
    /// the executor can use the index instead of a scan.
    fn index_hint<'f>(&'f self, table: &Table) -> Option<(&'f str, &'f Value)> {
        match self {
            Filter::Eq(c, v) if table.schema().indexed.iter().any(|i| i == c) => {
                Some((c.as_str(), v))
            }
            Filter::And(fs) => fs.iter().find_map(|f| f.index_hint(table)),
            _ => None,
        }
    }
}

fn cmp(
    table: &Table,
    row: &Row,
    col: &str,
    pred: impl Fn(std::cmp::Ordering) -> bool,
    v: &Value,
) -> bool {
    match table.schema().col(col) {
        Some(i) => pred(row[i].cmp(v)),
        None => false,
    }
}

/// Sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A select query against one table.
#[derive(Clone, Debug)]
pub struct Query {
    /// Row predicate.
    pub filter: Filter,
    /// Projected column names; empty means all columns.
    pub projection: Vec<String>,
    /// Optional `(column, direction)` sort.
    pub order_by: Option<(String, Order)>,
    /// Optional row limit (applied after sorting).
    pub limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            filter: Filter::True,
            projection: Vec::new(),
            order_by: None,
            limit: None,
        }
    }
}

impl Query {
    /// A query returning everything.
    pub fn all() -> Query {
        Query::default()
    }

    /// Sets the filter.
    pub fn filter(mut self, f: Filter) -> Query {
        self.filter = f;
        self
    }

    /// Sets the projection.
    pub fn select(mut self, cols: &[&str]) -> Query {
        self.projection = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Sets the ordering.
    pub fn order_by(mut self, col: &str, order: Order) -> Query {
        self.order_by = Some((col.to_string(), order));
        self
    }

    /// Sets the limit.
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Executes against a table.
    pub fn run(&self, table: &Table) -> Vec<Row> {
        // Use a secondary index when the filter pins one.
        let candidates: Vec<&Row> = match self.filter.index_hint(table) {
            Some((col, v)) => table
                .index_lookup(col, v)
                .expect("index_hint only returns indexed columns"),
            None => table.scan().collect(),
        };
        let mut rows: Vec<Row> = candidates
            .into_iter()
            .filter(|r| self.filter.eval(table, r))
            .cloned()
            .collect();

        if let Some((col, order)) = &self.order_by {
            if let Some(i) = table.schema().col(col) {
                rows.sort_by(|a, b| {
                    let o = a[i].cmp(&b[i]);
                    match order {
                        Order::Asc => o,
                        Order::Desc => o.reverse(),
                    }
                });
            }
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        if self.projection.is_empty() {
            return rows;
        }
        let idxs: Vec<Option<usize>> = self
            .projection
            .iter()
            .map(|c| table.schema().col(c))
            .collect();
        rows.into_iter()
            .map(|r| {
                idxs.iter()
                    .map(|i| i.map(|i| r[i].clone()).unwrap_or(Value::Null))
                    .collect()
            })
            .collect()
    }
}

/// An aggregate function over a column.
#[derive(Clone, Debug)]
pub enum Aggregate {
    /// Row count (column ignored).
    Count,
    /// Sum of a numeric column (NULLs skipped).
    Sum(String),
    /// Mean of a numeric column (NULLs skipped).
    Avg(String),
    /// Minimum (NULLs skipped).
    Min(String),
    /// Maximum (NULLs skipped).
    Max(String),
}

/// Runs a group-by aggregation: rows matching `filter` are grouped by the
/// values of `group_by` columns; each output row is the group key values
/// followed by one value per aggregate.
pub fn aggregate(
    table: &Table,
    filter: &Filter,
    group_by: &[&str],
    aggs: &[Aggregate],
) -> Vec<Row> {
    let key_idx: Vec<Option<usize>> = group_by.iter().map(|c| table.schema().col(c)).collect();
    let mut groups: BTreeMap<Vec<Value>, Vec<&Row>> = BTreeMap::new();
    for row in table.scan() {
        if !filter.eval(table, row) {
            continue;
        }
        let key: Vec<Value> = key_idx
            .iter()
            .map(|i| i.map(|i| row[i].clone()).unwrap_or(Value::Null))
            .collect();
        groups.entry(key).or_default().push(row);
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, rows) in groups {
        let mut result: Row = key;
        for agg in aggs {
            result.push(eval_agg(table, agg, &rows));
        }
        out.push(result);
    }
    out
}

fn eval_agg(table: &Table, agg: &Aggregate, rows: &[&Row]) -> Value {
    let numeric = |col: &str| -> Vec<f64> {
        match table.schema().col(col) {
            Some(i) => rows.iter().filter_map(|r| r[i].as_real()).collect(),
            None => Vec::new(),
        }
    };
    match agg {
        Aggregate::Count => Value::Int(rows.len() as i64),
        Aggregate::Sum(c) => Value::Real(numeric(c).iter().sum()),
        Aggregate::Avg(c) => {
            let v = numeric(c);
            if v.is_empty() {
                Value::Null
            } else {
                Value::Real(v.iter().sum::<f64>() / v.len() as f64)
            }
        }
        Aggregate::Min(c) => numeric(c)
            .into_iter()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .map(Value::Real)
            .unwrap_or(Value::Null),
        Aggregate::Max(c) => numeric(c)
            .into_iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .map(Value::Real)
            .unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn jobs_table() -> Table {
        let mut t = Table::new(
            Schema::new(
                vec![
                    Column::required("uuid", ColumnType::Text),
                    Column::required("user", ColumnType::Text),
                    Column::required("energy", ColumnType::Real),
                    Column::required("ncpus", ColumnType::Int),
                ],
                "uuid",
                &["user"],
            )
            .unwrap(),
        );
        for (uuid, user, energy, ncpus) in [
            ("j1", "alice", 10.0, 4),
            ("j2", "alice", 20.0, 8),
            ("j3", "bob", 5.0, 2),
            ("j4", "bob", 15.0, 16),
            ("j5", "carol", 50.0, 32),
        ] {
            t.upsert(vec![
                uuid.into(),
                user.into(),
                energy.into(),
                Value::Int(ncpus),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn filtered_select_with_index() {
        let t = jobs_table();
        let rows = Query::all()
            .filter(Filter::Eq("user".into(), "alice".into()))
            .run(&t);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn compound_filters() {
        let t = jobs_table();
        let rows = Query::all()
            .filter(Filter::And(vec![
                Filter::Ge("energy".into(), Value::Real(10.0)),
                Filter::Not(Box::new(Filter::Eq("user".into(), "carol".into()))),
            ]))
            .run(&t);
        assert_eq!(rows.len(), 3); // j1, j2, j4

        let rows = Query::all()
            .filter(Filter::Or(vec![
                Filter::Lt("ncpus".into(), Value::Int(4)),
                Filter::Gt("ncpus".into(), Value::Int(16)),
            ]))
            .run(&t);
        assert_eq!(rows.len(), 2); // j3, j5
    }

    #[test]
    fn order_limit_project() {
        let t = jobs_table();
        let rows = Query::all()
            .order_by("energy", Order::Desc)
            .limit(2)
            .select(&["uuid", "energy"])
            .run(&t);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Text("j5".into()), Value::Real(50.0)]);
        assert_eq!(rows[1], vec![Value::Text("j2".into()), Value::Real(20.0)]);
    }

    #[test]
    fn unknown_columns_are_safe() {
        let t = jobs_table();
        let rows = Query::all()
            .filter(Filter::Eq("nope".into(), Value::Int(1)))
            .run(&t);
        assert!(rows.is_empty());
        let rows = Query::all().select(&["uuid", "nope"]).run(&t);
        assert_eq!(rows[0][1], Value::Null);
    }

    #[test]
    fn group_by_aggregation() {
        let t = jobs_table();
        let out = aggregate(
            &t,
            &Filter::True,
            &["user"],
            &[
                Aggregate::Count,
                Aggregate::Sum("energy".into()),
                Aggregate::Avg("ncpus".into()),
            ],
        );
        assert_eq!(out.len(), 3);
        // BTreeMap ordering: alice, bob, carol.
        assert_eq!(out[0][0], Value::Text("alice".into()));
        assert_eq!(out[0][1], Value::Int(2));
        assert_eq!(out[0][2], Value::Real(30.0));
        assert_eq!(out[0][3], Value::Real(6.0));
        assert_eq!(out[2][1], Value::Int(1));
    }

    #[test]
    fn global_aggregate_no_groups() {
        let t = jobs_table();
        let out = aggregate(
            &t,
            &Filter::True,
            &[],
            &[
                Aggregate::Sum("energy".into()),
                Aggregate::Min("energy".into()),
                Aggregate::Max("energy".into()),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![Value::Real(100.0), Value::Real(5.0), Value::Real(50.0)]);
    }

    #[test]
    fn aggregate_on_empty_selection() {
        let t = jobs_table();
        let out = aggregate(
            &t,
            &Filter::Eq("user".into(), "nobody".into()),
            &[],
            &[Aggregate::Avg("energy".into()), Aggregate::Count],
        );
        assert_eq!(out.len(), 0);
    }
}
