//! Table schemas.

use serde::{Deserialize, Serialize};

use crate::value::{Row, Value};

/// Declared column type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float (Ints are accepted and coerced on validation).
    Real,
    /// UTF-8 text.
    Text,
}

impl ColumnType {
    fn accepts(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Real, Value::Real(_))
                | (ColumnType::Real, Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }
}

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// Non-nullable column.
    pub fn required(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            nullable: false,
        }
    }

    /// Nullable column.
    pub fn nullable(name: &str, ty: ColumnType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            nullable: true,
        }
    }
}

/// A table schema: ordered columns, one primary key column, optional
/// secondary index columns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Columns in storage order.
    pub columns: Vec<Column>,
    /// Index into `columns` of the primary key.
    pub primary_key: usize,
    /// Names of secondary-indexed columns.
    pub indexed: Vec<String>,
}

/// Schema / row validation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Builds and validates a schema. `primary_key` names the key column.
    pub fn new(
        columns: Vec<Column>,
        primary_key: &str,
        indexed: &[&str],
    ) -> Result<Schema, SchemaError> {
        if columns.is_empty() {
            return Err(SchemaError("schema has no columns".into()));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(SchemaError(format!("duplicate column {:?}", c.name)));
            }
        }
        let pk = columns
            .iter()
            .position(|c| c.name == primary_key)
            .ok_or_else(|| SchemaError(format!("primary key {primary_key:?} not a column")))?;
        if columns[pk].nullable {
            return Err(SchemaError("primary key must be non-nullable".into()));
        }
        for idx in indexed {
            if !columns.iter().any(|c| c.name == *idx) {
                return Err(SchemaError(format!("indexed column {idx:?} not a column")));
            }
        }
        Ok(Schema {
            columns,
            primary_key: pk,
            indexed: indexed.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against the schema, coercing Int→Real where declared.
    pub fn validate(&self, mut row: Row) -> Result<Row, SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = &mut row[i];
            if v.is_null() {
                if !col.nullable {
                    return Err(SchemaError(format!("column {:?} is not nullable", col.name)));
                }
                continue;
            }
            if !col.ty.accepts(v) {
                return Err(SchemaError(format!(
                    "column {:?} expects {:?}, got {:?}",
                    col.name, col.ty, v
                )));
            }
            if col.ty == ColumnType::Real {
                if let Value::Int(iv) = *v {
                    *v = Value::Real(iv as f64);
                }
            }
        }
        Ok(row)
    }

    /// Extracts the primary key of a validated row.
    pub fn pk_of(&self, row: &Row) -> Value {
        row[self.primary_key].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            vec![
                Column::required("uuid", ColumnType::Text),
                Column::required("user", ColumnType::Text),
                Column::nullable("energy_kwh", ColumnType::Real),
                Column::required("ncpus", ColumnType::Int),
            ],
            "uuid",
            &["user"],
        )
        .unwrap()
    }

    #[test]
    fn valid_rows_pass_and_coerce() {
        let s = sample();
        let row = s
            .validate(vec![
                "j1".into(),
                "alice".into(),
                Value::Int(3),
                Value::Int(8),
            ])
            .unwrap();
        // energy_kwh column coerced Int -> Real.
        assert_eq!(row[2], Value::Real(3.0));
        assert!(matches!(row[2], Value::Real(_)));
    }

    #[test]
    fn invalid_rows_rejected() {
        let s = sample();
        assert!(s.validate(vec!["j1".into(), "alice".into()]).is_err());
        assert!(s
            .validate(vec![Value::Null, "a".into(), Value::Null, Value::Int(1)])
            .is_err());
        assert!(s
            .validate(vec!["j".into(), "a".into(), Value::Null, "x".into()])
            .is_err());
    }

    #[test]
    fn bad_schemas_rejected() {
        assert!(Schema::new(vec![], "x", &[]).is_err());
        assert!(Schema::new(
            vec![Column::required("a", ColumnType::Int)],
            "missing",
            &[]
        )
        .is_err());
        assert!(Schema::new(
            vec![Column::nullable("a", ColumnType::Int)],
            "a",
            &[]
        )
        .is_err());
        assert!(Schema::new(
            vec![
                Column::required("a", ColumnType::Int),
                Column::required("a", ColumnType::Int)
            ],
            "a",
            &[]
        )
        .is_err());
        assert!(Schema::new(
            vec![Column::required("a", ColumnType::Int)],
            "a",
            &["nope"]
        )
        .is_err());
    }

    #[test]
    fn pk_extraction() {
        let s = sample();
        let row = s
            .validate(vec!["j9".into(), "bob".into(), Value::Null, Value::Int(1)])
            .unwrap();
        assert_eq!(s.pk_of(&row), Value::Text("j9".into()));
    }
}
