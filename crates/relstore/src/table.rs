//! In-memory tables with a primary-key BTree and secondary indices.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::schema::{Schema, SchemaError};
use crate::value::{Row, Value};

/// A table: rows keyed by primary key, plus secondary indices mapping an
/// indexed column value to the set of primary keys carrying it.
///
/// Serialisation stores only the schema and rows (JSON object keys must be
/// strings, and indices are derived data anyway); indices are rebuilt on
/// deserialisation.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(from = "TableData", into = "TableData")]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<Value, Row>,
    indices: BTreeMap<String, BTreeMap<Value, BTreeSet<Value>>>,
}

#[derive(Serialize, Deserialize)]
struct TableData {
    schema: Schema,
    rows: Vec<Row>,
}

impl From<Table> for TableData {
    fn from(t: Table) -> TableData {
        TableData {
            schema: t.schema,
            rows: t.rows.into_values().collect(),
        }
    }
}

impl From<TableData> for Table {
    fn from(d: TableData) -> Table {
        let mut t = Table::new(d.schema);
        for row in d.rows {
            // Rows were validated before they were stored.
            let _ = t.upsert(row);
        }
        t
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Table {
        let indices = schema
            .indexed
            .iter()
            .map(|name| (name.clone(), BTreeMap::new()))
            .collect();
        Table {
            schema,
            rows: BTreeMap::new(),
            indices,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts or replaces a row (validated against the schema). Returns the
    /// previous row if one existed.
    pub fn upsert(&mut self, row: Row) -> Result<Option<Row>, SchemaError> {
        let row = self.schema.validate(row)?;
        let pk = self.schema.pk_of(&row);
        let old = self.rows.insert(pk.clone(), row.clone());
        if let Some(old_row) = &old {
            self.unindex(&pk, old_row);
        }
        self.index(&pk, &row);
        Ok(old)
    }

    /// Deletes by primary key, returning the row if present.
    pub fn delete(&mut self, pk: &Value) -> Option<Row> {
        let row = self.rows.remove(pk)?;
        self.unindex(pk, &row);
        Some(row)
    }

    /// Point lookup by primary key.
    pub fn get(&self, pk: &Value) -> Option<&Row> {
        self.rows.get(pk)
    }

    /// Iterates all rows in primary-key order.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// Looks up primary keys by an indexed column value (O(log n)); falls
    /// back to `None` for non-indexed columns (the query layer scans then).
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<Vec<&Row>> {
        let idx = self.indices.get(column)?;
        Some(
            idx.get(value)
                .map(|pks| pks.iter().filter_map(|pk| self.rows.get(pk)).collect())
                .unwrap_or_default(),
        )
    }

    fn index(&mut self, pk: &Value, row: &Row) {
        for (col_name, idx) in self.indices.iter_mut() {
            let ci = self
                .schema
                .col(col_name)
                .expect("index column validated at schema build");
            idx.entry(row[ci].clone()).or_default().insert(pk.clone());
        }
    }

    fn unindex(&mut self, pk: &Value, row: &Row) {
        for (col_name, idx) in self.indices.iter_mut() {
            let ci = self
                .schema
                .col(col_name)
                .expect("index column validated at schema build");
            if let Some(set) = idx.get_mut(&row[ci]) {
                set.remove(pk);
                if set.is_empty() {
                    idx.remove(&row[ci]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn table() -> Table {
        Table::new(
            Schema::new(
                vec![
                    Column::required("uuid", ColumnType::Text),
                    Column::required("user", ColumnType::Text),
                    Column::required("energy", ColumnType::Real),
                ],
                "uuid",
                &["user"],
            )
            .unwrap(),
        )
    }

    fn row(uuid: &str, user: &str, energy: f64) -> Row {
        vec![uuid.into(), user.into(), energy.into()]
    }

    #[test]
    fn upsert_get_delete() {
        let mut t = table();
        assert!(t.upsert(row("j1", "alice", 1.0)).unwrap().is_none());
        assert!(t.upsert(row("j2", "bob", 2.0)).unwrap().is_none());
        assert_eq!(t.len(), 2);

        let old = t.upsert(row("j1", "alice", 5.0)).unwrap();
        assert_eq!(old.unwrap()[2], Value::Real(1.0));
        assert_eq!(t.get(&"j1".into()).unwrap()[2], Value::Real(5.0));

        assert!(t.delete(&"j1".into()).is_some());
        assert!(t.delete(&"j1".into()).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut t = table();
        t.upsert(row("j1", "alice", 1.0)).unwrap();
        t.upsert(row("j2", "alice", 2.0)).unwrap();
        t.upsert(row("j3", "bob", 3.0)).unwrap();

        let alice = t.index_lookup("user", &"alice".into()).unwrap();
        assert_eq!(alice.len(), 2);

        // Reassigning j2 to bob must move it between index buckets.
        t.upsert(row("j2", "bob", 2.0)).unwrap();
        assert_eq!(t.index_lookup("user", &"alice".into()).unwrap().len(), 1);
        assert_eq!(t.index_lookup("user", &"bob".into()).unwrap().len(), 2);

        t.delete(&"j3".into());
        assert_eq!(t.index_lookup("user", &"bob".into()).unwrap().len(), 1);

        // Non-indexed column has no index.
        assert!(t.index_lookup("energy", &Value::Real(1.0)).is_none());
        // Missing value yields empty vec, not None.
        assert_eq!(t.index_lookup("user", &"carol".into()).unwrap().len(), 0);
    }

    #[test]
    fn scan_is_pk_ordered() {
        let mut t = table();
        t.upsert(row("c", "u", 1.0)).unwrap();
        t.upsert(row("a", "u", 2.0)).unwrap();
        t.upsert(row("b", "u", 3.0)).unwrap();
        let keys: Vec<String> = t
            .scan()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn serde_roundtrip_preserves_indices() {
        let mut t = table();
        t.upsert(row("j1", "alice", 1.0)).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.index_lookup("user", &"alice".into()).unwrap().len(), 1);
    }
}
