//! Typed values and rows.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed cell value (the SQLite storage classes we need).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer accessor (Ints only; Reals are not coerced).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor; Ints coerce to f64.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Real(_) => 1,
            Value::Text(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order following SQLite: NULL < numbers < text; numbers compare
    /// numerically across Int/Real; NaN sorts below all other reals.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => cmp_f64(*a, *b),
            (Int(a), Real(b)) => cmp_f64(*a as f64, *b),
            (Real(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => a.partial_cmp(&b).unwrap(),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// A table row: one value per schema column, in column order.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_types() {
        let mut vals = vec![
            Value::Text("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Real(2.5),
            Value::Text("a".into()),
            Value::Int(2),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(2),
                Value::Real(2.5),
                Value::Int(5),
                Value::Text("a".into()),
                Value::Text("b".into()),
            ]
        );
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Real(3.0));
        assert_ne!(Value::Int(3), Value::Real(3.5));
    }

    #[test]
    fn nan_is_ordered() {
        assert!(Value::Real(f64::NAN) < Value::Real(0.0));
        assert_eq!(Value::Real(f64::NAN), Value::Real(f64::NAN));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_real(), Some(7.0));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Real(1.0).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn serde_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-3),
            Value::Real(1.25),
            Value::Text("job".into()),
        ];
        let json = serde_json::to_string(&vals).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, vals);
    }
}
