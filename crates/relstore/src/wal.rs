//! Write-ahead log: JSON-lines records with CRC32 protection and segment
//! rotation.
//!
//! Segment files are named `wal-<seq>.log`. Each line is
//! `<crc32-hex> <json-record>`; torn tails (a crash mid-write) are detected
//! by CRC mismatch and replay stops there, exactly like SQLite's WAL
//! recovery semantics that Litestream piggybacks on.

use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::value::{Row, Value};

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Insert-or-replace a row in a table.
    Upsert {
        /// Table name.
        table: String,
        /// Full row.
        row: Row,
    },
    /// Delete by primary key.
    Delete {
        /// Table name.
        table: String,
        /// Primary key value.
        pk: Value,
    },
    /// Marks that a snapshot covering everything before it exists.
    Checkpoint,
}

/// CRC-32 (IEEE 802.3) over bytes.
pub fn crc32(data: &[u8]) -> u32 {
    // Bitwise implementation; WAL lines are short so a table is unnecessary.
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// An append-only WAL with size-based segment rotation.
pub struct Wal {
    dir: PathBuf,
    current_seq: u64,
    current_file: File,
    current_bytes: u64,
    max_segment_bytes: u64,
}

/// WAL error.
#[derive(Debug)]
pub struct WalError(pub String);

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal error: {}", self.0)
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError(e.to_string())
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:012}.log"))
}

/// Lists `(seq, path)` of WAL segments in a directory, sorted by seq.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`, appending to the latest segment.
    pub fn open(dir: &Path, max_segment_bytes: u64) -> Result<Wal, WalError> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let current_seq = segments.last().map(|(s, _)| *s).unwrap_or(0);
        let path = segment_path(dir, current_seq);
        let current_file = OpenOptions::new().create(true).append(true).open(&path)?;
        let current_bytes = current_file.metadata()?.len();
        Ok(Wal {
            dir: dir.to_path_buf(),
            current_seq,
            current_file,
            current_bytes,
            max_segment_bytes,
        })
    }

    /// Appends one record, rotating segments when the current one is full.
    /// Returns the sequence number of the segment written to.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let json = serde_json::to_string(record).map_err(|e| WalError(e.to_string()))?;
        let line = format!("{:08x} {}\n", crc32(json.as_bytes()), json);
        if self.current_bytes > 0 && self.current_bytes + line.len() as u64 > self.max_segment_bytes
        {
            self.rotate()?;
        }
        self.current_file.write_all(line.as_bytes())?;
        self.current_file.flush()?;
        self.current_bytes += line.len() as u64;
        Ok(self.current_seq)
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        self.current_seq += 1;
        let path = segment_path(&self.dir, self.current_seq);
        self.current_file = OpenOptions::new().create(true).append(true).open(path)?;
        self.current_bytes = 0;
        Ok(())
    }

    /// Current segment sequence number.
    pub fn current_seq(&self) -> u64 {
        self.current_seq
    }

    /// Removes all segments strictly older than `keep_from` (used after a
    /// checkpointing snapshot).
    pub fn truncate_before(&mut self, keep_from: u64) -> Result<usize, WalError> {
        let mut removed = 0;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < keep_from {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Replays all records from all segments in `dir`, stopping cleanly at the
/// first corrupt line (torn write). Returns the records and how many corrupt
/// lines were skipped at the tail.
pub fn replay(dir: &Path) -> Result<(Vec<WalRecord>, usize), WalError> {
    let mut records = Vec::new();
    let mut corrupt = 0;
    for (_, path) in list_segments(dir)? {
        let reader = BufReader::new(File::open(&path)?);
        for line in reader.lines() {
            let line = line?;
            match parse_line(&line) {
                Some(rec) => records.push(rec),
                None => {
                    corrupt += 1;
                    // A torn tail ends replay of this segment.
                    break;
                }
            }
        }
    }
    Ok((records, corrupt))
}

fn parse_line(line: &str) -> Option<WalRecord> {
    let (crc_hex, json) = line.split_once(' ')?;
    let expect = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(json.as_bytes()) != expect {
        return None;
    }
    serde_json::from_str(json).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ceems-wal-{}-{}-{}",
            name,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(i: i64) -> WalRecord {
        WalRecord::Upsert {
            table: "jobs".into(),
            row: vec![Value::Int(i), Value::Text(format!("job-{i}"))],
        }
    }

    #[test]
    fn crc32_vector() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay() {
        let dir = tmpdir("roundtrip");
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.append(&WalRecord::Checkpoint).unwrap();
        drop(wal);

        let (records, corrupt) = replay(&dir).unwrap();
        assert_eq!(corrupt, 0);
        assert_eq!(records.len(), 11);
        assert_eq!(records[3], rec(3));
        assert_eq!(records[10], WalRecord::Checkpoint);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_produces_multiple_segments() {
        let dir = tmpdir("rotate");
        let mut wal = Wal::open(&dir, 256).unwrap();
        for i in 0..50 {
            wal.append(&rec(i)).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {} segments", segs.len());
        let (records, _) = replay(&dir).unwrap();
        assert_eq!(records.len(), 50);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reopen_appends_to_latest_segment() {
        let dir = tmpdir("reopen");
        {
            let mut wal = Wal::open(&dir, 1 << 20).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        {
            let mut wal = Wal::open(&dir, 1 << 20).unwrap();
            wal.append(&rec(2)).unwrap();
        }
        let (records, _) = replay(&dir).unwrap();
        assert_eq!(records.len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_detected() {
        let dir = tmpdir("torn");
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.append(&rec(2)).unwrap();
        drop(wal);
        // Corrupt the last line.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let content = fs::read_to_string(&path).unwrap();
        let truncated = &content[..content.len() - 5];
        fs::write(&path, truncated).unwrap();

        let (records, corrupt) = replay(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(corrupt, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn truncate_before_removes_old_segments() {
        let dir = tmpdir("trunc");
        let mut wal = Wal::open(&dir, 128).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        let latest = wal.current_seq();
        assert!(latest >= 2);
        let removed = wal.truncate_before(latest).unwrap();
        assert!(removed >= 1);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.iter().all(|(s, _)| *s >= latest));
        fs::remove_dir_all(dir).unwrap();
    }
}
