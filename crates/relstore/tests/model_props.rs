//! Model-based property tests: the relational store (with WAL, recovery
//! and indices) must behave exactly like a plain `BTreeMap` under any
//! sequence of upserts and deletes — including after a crash-and-recover.

use std::collections::BTreeMap;

use ceems_relstore::{Column, ColumnType, Db, Filter, Query, Schema, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Upsert { key: u8, payload: i64, user: u8 },
    Delete { key: u8 },
    Snapshot,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<i64>(), 0u8..4).prop_map(|(key, payload, user)| Op::Upsert {
            key,
            payload,
            user
        }),
        2 => any::<u8>().prop_map(|key| Op::Delete { key }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::Reopen),
    ]
}

fn schema() -> Schema {
    Schema::new(
        vec![
            Column::required("key", ColumnType::Int),
            Column::required("payload", ColumnType::Int),
            Column::required("user", ColumnType::Text),
        ],
        "key",
        &["user"],
    )
    .unwrap()
}

fn tmpdir(seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ceems-relprop-{}-{}-{}",
        std::process::id(),
        seed,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn store_matches_model(ops in proptest::collection::vec(arb_op(), 1..60), seed in any::<u64>()) {
        let dir = tmpdir(seed);
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        let mut model: BTreeMap<i64, (i64, String)> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Upsert { key, payload, user } => {
                    let user = format!("user{user}");
                    db.upsert(
                        "t",
                        vec![
                            Value::Int(*key as i64),
                            Value::Int(*payload),
                            user.clone().into(),
                        ],
                    )
                    .unwrap();
                    model.insert(*key as i64, (*payload, user));
                }
                Op::Delete { key } => {
                    let existed_db = db.delete("t", &Value::Int(*key as i64)).unwrap();
                    let existed_model = model.remove(&(*key as i64)).is_some();
                    prop_assert_eq!(existed_db, existed_model);
                }
                Op::Snapshot => db.snapshot().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = Db::open(&dir).unwrap();
                }
            }

            // Full-state equivalence after every op.
            let rows = db.query("t", &Query::all()).unwrap();
            prop_assert_eq!(rows.len(), model.len());
            for row in &rows {
                let k = row[0].as_int().unwrap();
                let (payload, user) = model.get(&k).expect("row not in model");
                prop_assert_eq!(row[1].as_int().unwrap(), *payload);
                prop_assert_eq!(row[2].as_text().unwrap(), user.as_str());
            }
        }

        // Secondary-index queries agree with a model scan.
        for user_id in 0u8..4 {
            let user = format!("user{user_id}");
            let via_index = db
                .query(
                    "t",
                    &Query::all().filter(Filter::Eq("user".into(), user.as_str().into())),
                )
                .unwrap();
            let via_model = model.values().filter(|(_, u)| *u == user).count();
            prop_assert_eq!(via_index.len(), via_model, "user {}", user);
        }

        // Final recovery check: everything survives a reopen.
        drop(db);
        let db = Db::open(&dir).unwrap();
        prop_assert_eq!(db.table("t").unwrap().len(), model.len());

        std::fs::remove_dir_all(dir).ok();
    }
}
