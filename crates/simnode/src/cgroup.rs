//! Per-workload cgroup v2 accounting.
//!
//! SLURM creates one cgroup per job; the kernel accounts CPU time, memory
//! and IO into it. The CEEMS exporter's cgroup collector walks
//! `/sys/fs/cgroup` and parses `cpu.stat`, `memory.current` etc. — this
//! module holds the accounting state and renders exactly those files.

/// Accounting state of one cgroup.
#[derive(Clone, Debug, Default)]
pub struct CgroupStats {
    /// Cumulative user-mode CPU time (µs).
    pub cpu_user_usec: u64,
    /// Cumulative kernel-mode CPU time (µs).
    pub cpu_system_usec: u64,
    /// Current memory usage (bytes).
    pub memory_current: u64,
    /// High-water-mark memory usage (bytes).
    pub memory_peak: u64,
    /// Memory limit (bytes); rendered in `memory.max`.
    pub memory_max: u64,
    /// Cumulative bytes read.
    pub io_rbytes: u64,
    /// Cumulative bytes written.
    pub io_wbytes: u64,
    /// PIDs inside the cgroup (synthetic).
    pub pids: Vec<u32>,
}

impl CgroupStats {
    /// Creates accounting with a memory limit.
    pub fn new(memory_max: u64, first_pid: u32) -> CgroupStats {
        CgroupStats {
            memory_max,
            pids: vec![first_pid],
            ..Default::default()
        }
    }

    /// Advances accounting over `dt_s` seconds:
    /// * `cpu_cores_busy` — cores actively used (e.g. 6.5 of 8 allocated);
    ///   split 92/8 between user and system time.
    /// * `memory_bytes` — instantaneous usage.
    /// * `io_read_bps` / `io_write_bps` — IO rates.
    pub fn advance(
        &mut self,
        dt_s: f64,
        cpu_cores_busy: f64,
        memory_bytes: u64,
        io_read_bps: f64,
        io_write_bps: f64,
    ) {
        let cpu_usec = (cpu_cores_busy.max(0.0) * dt_s * 1e6) as u64;
        self.cpu_user_usec += cpu_usec * 92 / 100;
        self.cpu_system_usec += cpu_usec - cpu_usec * 92 / 100;
        self.memory_current = memory_bytes.min(self.memory_max);
        self.memory_peak = self.memory_peak.max(self.memory_current);
        self.io_rbytes += (io_read_bps.max(0.0) * dt_s) as u64;
        self.io_wbytes += (io_write_bps.max(0.0) * dt_s) as u64;
    }

    /// Total CPU time in µs.
    pub fn cpu_total_usec(&self) -> u64 {
        self.cpu_user_usec + self.cpu_system_usec
    }

    /// Renders the cgroup's files as `(file_name, content)` pairs, matching
    /// the cgroup v2 layout the exporter parses.
    pub fn render(&self) -> Vec<(String, String)> {
        vec![
            (
                "cpu.stat".to_string(),
                format!(
                    "usage_usec {}\nuser_usec {}\nsystem_usec {}\n",
                    self.cpu_total_usec(),
                    self.cpu_user_usec,
                    self.cpu_system_usec
                ),
            ),
            (
                "memory.current".to_string(),
                format!("{}\n", self.memory_current),
            ),
            ("memory.peak".to_string(), format!("{}\n", self.memory_peak)),
            ("memory.max".to_string(), format!("{}\n", self.memory_max)),
            (
                "io.stat".to_string(),
                format!(
                    "8:0 rbytes={} wbytes={} rios=0 wios=0 dbytes=0 dios=0\n",
                    self.io_rbytes, self.io_wbytes
                ),
            ),
            (
                "cgroup.procs".to_string(),
                self.pids
                    .iter()
                    .map(|p| format!("{p}\n"))
                    .collect::<String>(),
            ),
        ]
    }
}

/// The SLURM cgroup path prefix used on compute nodes.
pub const SLURM_CGROUP_ROOT: &str = "/sys/fs/cgroup/system.slice/slurmstepd.scope";

/// Path of a job's cgroup directory.
pub fn job_cgroup_dir(job_id: u64) -> String {
    format!("{SLURM_CGROUP_ROOT}/job_{job_id}")
}

/// Extracts a job id from a cgroup directory name (`job_123` → 123).
pub fn parse_job_dir(name: &str) -> Option<u64> {
    name.strip_prefix("job_")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut c = CgroupStats::new(16 << 30, 4242);
        c.advance(10.0, 4.0, 8 << 30, 1e6, 2e6);
        assert_eq!(c.cpu_total_usec(), 40_000_000);
        assert_eq!(c.cpu_user_usec, 36_800_000);
        assert_eq!(c.cpu_system_usec, 3_200_000);
        assert_eq!(c.memory_current, 8 << 30);
        assert_eq!(c.io_rbytes, 10_000_000);
        assert_eq!(c.io_wbytes, 20_000_000);

        // Memory falls; peak stays.
        c.advance(1.0, 0.0, 1 << 30, 0.0, 0.0);
        assert_eq!(c.memory_current, 1 << 30);
        assert_eq!(c.memory_peak, 8 << 30);
    }

    #[test]
    fn memory_clamped_to_limit() {
        let mut c = CgroupStats::new(4 << 30, 1);
        c.advance(1.0, 0.0, 100 << 30, 0.0, 0.0);
        assert_eq!(c.memory_current, 4 << 30);
    }

    #[test]
    fn rendered_files_parse_back() {
        let mut c = CgroupStats::new(1 << 30, 7);
        c.advance(2.0, 1.0, 1 << 20, 0.0, 512.0);
        let files: std::collections::BTreeMap<_, _> = c.render().into_iter().collect();
        assert!(files["cpu.stat"].starts_with("usage_usec 2000000\n"));
        assert_eq!(files["memory.current"], format!("{}\n", 1 << 20));
        assert!(files["io.stat"].contains("wbytes=1024"));
        assert_eq!(files["cgroup.procs"], "7\n");
    }

    #[test]
    fn job_dir_roundtrip() {
        let dir = job_cgroup_dir(998877);
        assert!(dir.ends_with("/job_998877"));
        assert_eq!(parse_job_dir("job_998877"), Some(998877));
        assert_eq!(parse_job_dir("user.slice"), None);
        assert_eq!(parse_job_dir("job_abc"), None);
    }
}
