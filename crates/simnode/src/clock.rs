//! Shared simulated clock.
//!
//! Everything in the simulation — sensors, scrape loops, job lifecycles —
//! reads one logical clock so experiments are deterministic and a year of
//! monitoring can be replayed in seconds.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A monotonically advancing simulated clock (milliseconds since an
/// arbitrary epoch). Cloning shares the underlying instant.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicI64>,
}

impl SimClock {
    /// Clock starting at zero.
    pub fn new() -> SimClock {
        Self::default()
    }

    /// Clock starting at a specific epoch-milliseconds value (useful when
    /// dashboards want human-looking timestamps).
    pub fn starting_at(epoch_ms: i64) -> SimClock {
        SimClock {
            now_ms: Arc::new(AtomicI64::new(epoch_ms)),
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ms() as f64 / 1000.0
    }

    /// Advances the clock, returning the new time.
    pub fn advance_ms(&self, delta_ms: i64) -> i64 {
        assert!(delta_ms >= 0, "clock cannot go backwards");
        self.now_ms.fetch_add(delta_ms, Ordering::Relaxed) + delta_ms
    }

    /// Advances by (fractional) seconds.
    pub fn advance_secs(&self, delta_s: f64) -> i64 {
        self.advance_ms((delta_s * 1000.0).round() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_shares() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(1500);
        assert_eq!(c2.now_ms(), 1500);
        assert_eq!(c2.now_secs(), 1.5);
        c2.advance_secs(0.5);
        assert_eq!(c.now_ms(), 2000);
    }

    #[test]
    fn starting_epoch() {
        let c = SimClock::starting_at(1_700_000_000_000);
        assert_eq!(c.now_ms(), 1_700_000_000_000);
    }

    #[test]
    #[should_panic(expected = "clock cannot go backwards")]
    fn negative_advance_panics() {
        SimClock::new().advance_ms(-1);
    }
}
