//! Node fleets, including the Jean-Zay-like configuration from §III.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::node::{HardwareProfile, NodeSpec, SimNode};
use crate::power::{GpuModel, IpmiCoverage};

/// How many nodes of each class to build.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Intel CPU-only nodes.
    pub intel_nodes: usize,
    /// AMD CPU-only nodes.
    pub amd_nodes: usize,
    /// 4×V100 nodes (IPMI includes GPU power — "type A" in §III).
    pub v100_nodes: usize,
    /// 8×A100 nodes (IPMI excludes GPU power — "type B").
    pub a100_nodes: usize,
    /// 4×H100 nodes (type A).
    pub h100_nodes: usize,
}

impl ClusterSpec {
    /// A small mixed cluster for tests and the quickstart example.
    pub fn small() -> ClusterSpec {
        ClusterSpec {
            intel_nodes: 4,
            amd_nodes: 2,
            v100_nodes: 1,
            a100_nodes: 1,
            h100_nodes: 0,
        }
    }

    /// The Jean-Zay-like fleet: ~1,400 heterogeneous nodes and >3,500 GPUs
    /// (512 Intel + 200 AMD CPU nodes; 396×4 V100 + 208×8 A100 + 84×4 H100
    /// = 3,584 GPUs), matching the scale claimed in the paper's abstract
    /// and §III.
    pub fn jean_zay() -> ClusterSpec {
        ClusterSpec {
            intel_nodes: 512,
            amd_nodes: 200,
            v100_nodes: 396,
            a100_nodes: 208,
            h100_nodes: 84,
        }
    }

    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.intel_nodes + self.amd_nodes + self.v100_nodes + self.a100_nodes + self.h100_nodes
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.v100_nodes * 4 + self.a100_nodes * 8 + self.h100_nodes * 4
    }
}

/// A shared handle to a node (exporter and scheduler both touch it).
pub type NodeHandle = Arc<Mutex<SimNode>>;

/// A fleet of simulated nodes sharing a clock.
pub struct SimCluster {
    nodes: Vec<NodeHandle>,
    clock: SimClock,
}

impl SimCluster {
    /// Builds the fleet. Node hostnames encode their partition:
    /// `jz-intel-0001`, `jz-amd-0001`, `jz-v100-0001`, ...
    pub fn build(spec: &ClusterSpec, clock: SimClock, seed: u64) -> SimCluster {
        let mut nodes = Vec::with_capacity(spec.total_nodes());
        let mut idx = 0u64;
        let mut push = |name: &str, i: usize, profile: HardwareProfile, nodes: &mut Vec<NodeHandle>| {
            idx += 1;
            nodes.push(Arc::new(Mutex::new(SimNode::new(
                NodeSpec {
                    hostname: format!("jz-{name}-{:04}", i + 1),
                    profile,
                },
                seed.wrapping_add(idx.wrapping_mul(0x9e3779b97f4a7c15)),
            ))));
        };
        for i in 0..spec.intel_nodes {
            push("intel", i, HardwareProfile::IntelCpu, &mut nodes);
        }
        for i in 0..spec.amd_nodes {
            push("amd", i, HardwareProfile::AmdCpu, &mut nodes);
        }
        for i in 0..spec.v100_nodes {
            push(
                "v100",
                i,
                HardwareProfile::Gpu {
                    model: GpuModel::V100,
                    count: 4,
                    coverage: IpmiCoverage::IncludesGpus,
                },
                &mut nodes,
            );
        }
        for i in 0..spec.a100_nodes {
            push(
                "a100",
                i,
                HardwareProfile::Gpu {
                    model: GpuModel::A100,
                    count: 8,
                    coverage: IpmiCoverage::ExcludesGpus,
                },
                &mut nodes,
            );
        }
        for i in 0..spec.h100_nodes {
            push(
                "h100",
                i,
                HardwareProfile::Gpu {
                    model: GpuModel::H100,
                    count: 4,
                    coverage: IpmiCoverage::IncludesGpus,
                },
                &mut nodes,
            );
        }
        SimCluster { nodes, clock }
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// All node handles.
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finds a node by hostname.
    pub fn node_by_hostname(&self, hostname: &str) -> Option<NodeHandle> {
        self.nodes
            .iter()
            .find(|n| n.lock().hostname() == hostname)
            .cloned()
    }

    /// Advances the clock by `dt_s` and steps every node, fanning the work
    /// out over `threads` OS threads (1,400 nodes step comfortably in
    /// parallel; this is the hot loop of the Jean-Zay-scale experiment).
    pub fn step_all(&self, dt_s: f64, threads: usize) {
        let now_ms = self.clock.advance_secs(dt_s);
        let threads = threads.max(1);
        if threads == 1 || self.nodes.len() < 2 * threads {
            for n in &self.nodes {
                n.lock().step(now_ms, dt_s);
            }
            return;
        }
        let chunk = self.nodes.len().div_ceil(threads);
        std::thread::scope(|s| {
            for nodes in self.nodes.chunks(chunk) {
                s.spawn(move || {
                    for n in nodes {
                        n.lock().step(now_ms, dt_s);
                    }
                });
            }
        });
    }

    /// Sums ground-truth wall power across the fleet (W).
    pub fn total_wall_power(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.lock().ground_truth_power().wall_w())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;
    use crate::workload::WorkloadProfile;

    #[test]
    fn jean_zay_scale_matches_paper() {
        let spec = ClusterSpec::jean_zay();
        assert_eq!(spec.total_nodes(), 1400);
        assert!(spec.total_gpus() > 3500);
    }

    #[test]
    fn build_and_lookup() {
        let c = SimCluster::build(&ClusterSpec::small(), SimClock::new(), 1);
        assert_eq!(c.len(), 8);
        let n = c.node_by_hostname("jz-intel-0001").unwrap();
        assert_eq!(n.lock().gpu_count(), 0);
        let g = c.node_by_hostname("jz-a100-0001").unwrap();
        assert_eq!(g.lock().gpu_count(), 8);
        assert!(c.node_by_hostname("nope").is_none());
    }

    #[test]
    fn step_all_advances_clock_and_nodes() {
        let c = SimCluster::build(&ClusterSpec::small(), SimClock::new(), 2);
        c.nodes()[0]
            .lock()
            .add_task(
                TaskSpec {
                    id: 1,
                    cores: 8,
                    memory_bytes: 4 << 30,
                    gpus: 0,
                    workload: WorkloadProfile::CpuBound { intensity: 0.8 },
                },
                0,
            )
            .unwrap();
        for _ in 0..5 {
            c.step_all(15.0, 4);
        }
        assert_eq!(c.clock().now_ms(), 75_000);
        let idle_total = c.total_wall_power();
        assert!(idle_total > 8.0 * 100.0, "fleet power {idle_total}");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let c = SimCluster::build(&ClusterSpec::small(), SimClock::new(), seed);
            c.nodes()[0]
                .lock()
                .add_task(
                    TaskSpec {
                        id: 1,
                        cores: 16,
                        memory_bytes: 8 << 30,
                        gpus: 0,
                        workload: WorkloadProfile::Bursty {
                            period_s: 60.0,
                            duty: 0.5,
                        },
                    },
                    0,
                )
                .unwrap();
            for _ in 0..10 {
                c.step_all(5.0, 1);
            }
            c.total_wall_power()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
