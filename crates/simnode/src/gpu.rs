//! DCGM/AMD-SMI-like GPU metric source.
//!
//! The real stack deploys NVIDIA's DCGM exporter (or AMD's SMI exporter)
//! next to the CEEMS exporter; CEEMS itself only contributes the
//! job→GPU-ordinal map (§II.A.d: ordinals are not recoverable post-mortem,
//! so they must be recorded while the job runs). This module provides the
//! per-ordinal metrics a DCGM exporter would.

use crate::power::GpuModel;

/// State of one GPU device.
#[derive(Clone, Debug)]
pub struct GpuDevice {
    /// Device ordinal (the index DCGM labels `gpu`).
    pub ordinal: usize,
    /// Model.
    pub model: GpuModel,
    /// Instantaneous SM utilisation `[0,1]`.
    pub util: f64,
    /// Device memory in use (bytes).
    pub memory_used: u64,
    /// Instantaneous board power (W).
    pub power_w: f64,
    /// Cumulative energy (J).
    pub energy_j: f64,
    /// Job currently bound to this GPU, if any.
    pub bound_job: Option<u64>,
}

impl GpuDevice {
    /// Creates an idle device.
    pub fn new(ordinal: usize, model: GpuModel) -> GpuDevice {
        GpuDevice {
            ordinal,
            model,
            util: 0.0,
            memory_used: 0,
            power_w: model.idle_watts(),
            energy_j: 0.0,
            bound_job: None,
        }
    }

    /// Updates the device for a step: utilisation and memory from the bound
    /// workload, power from the ground-truth model.
    pub fn update(&mut self, util: f64, mem_frac: f64, power_w: f64, dt_s: f64) {
        self.util = util.clamp(0.0, 1.0);
        self.memory_used =
            (mem_frac.clamp(0.0, 1.0) * self.model.memory_bytes() as f64) as u64;
        self.power_w = power_w;
        self.energy_j += power_w * dt_s;
    }

    /// The UUID DCGM would report (synthetic but stable).
    pub fn uuid(&self) -> String {
        format!("GPU-{:08x}-sim-{}", self.ordinal * 2654435761 % 0xffff_ffff, self.ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_update_and_energy() {
        let mut g = GpuDevice::new(0, GpuModel::A100);
        assert_eq!(g.power_w, 55.0);
        g.update(0.5, 0.25, 200.0, 10.0);
        assert_eq!(g.util, 0.5);
        assert_eq!(g.memory_used, 20 << 30);
        assert_eq!(g.energy_j, 2000.0);
        g.update(1.5, 2.0, 400.0, 1.0);
        assert_eq!(g.util, 1.0);
        assert_eq!(g.memory_used, 80 << 30);
    }

    #[test]
    fn uuids_are_stable_and_distinct() {
        let a = GpuDevice::new(0, GpuModel::V100);
        let b = GpuDevice::new(1, GpuModel::V100);
        assert_eq!(a.uuid(), GpuDevice::new(0, GpuModel::V100).uuid());
        assert_ne!(a.uuid(), b.uuid());
    }
}
