//! IPMI-DCMI power readings.
//!
//! The BMC measures whole-node power but (per the paper, §II.A.b) "the
//! IPMI-DCMI command is not suitable to use at a high frequency (even for
//! every few seconds)". The simulation models that: readings are sampled at
//! most every `min_interval_ms` of simulated time (callers in between see a
//! cached value), each reading carries sensor noise and quantisation, and
//! each invocation has a non-trivial simulated latency cost.

use rand::Rng;

use crate::power::{ComponentPower, IpmiCoverage};

/// A simulated `ipmitool dcmi power reading` source.
#[derive(Clone, Debug)]
pub struct IpmiDcmi {
    coverage: IpmiCoverage,
    min_interval_ms: i64,
    noise_frac: f64,
    last_sample_ms: Option<i64>,
    cached_watts: f64,
    reads: u64,
    samples: u64,
}

impl IpmiDcmi {
    /// Creates a DCMI source. `min_interval_ms` is the fastest the BMC will
    /// refresh; 10 s is a realistic default.
    pub fn new(coverage: IpmiCoverage, min_interval_ms: i64, noise_frac: f64) -> IpmiDcmi {
        IpmiDcmi {
            coverage,
            min_interval_ms,
            noise_frac,
            last_sample_ms: None,
            cached_watts: 0.0,
            reads: 0,
            samples: 0,
        }
    }

    /// Default BMC behaviour: 10 s refresh, 3 % noise.
    pub fn standard(coverage: IpmiCoverage) -> IpmiDcmi {
        IpmiDcmi::new(coverage, 10_000, 0.03)
    }

    /// The wiring type.
    pub fn coverage(&self) -> IpmiCoverage {
        self.coverage
    }

    /// Performs a power reading at simulated time `now_ms` given the node's
    /// ground-truth component power. Returns integer watts (DCMI reports
    /// whole watts).
    pub fn power_reading<R: Rng>(
        &mut self,
        now_ms: i64,
        truth: &ComponentPower,
        rng: &mut R,
    ) -> u64 {
        self.reads += 1;
        let refresh = match self.last_sample_ms {
            None => true,
            Some(last) => now_ms - last >= self.min_interval_ms,
        };
        if refresh {
            self.samples += 1;
            self.last_sample_ms = Some(now_ms);
            let mut w = truth.cpu_total_w() + truth.dram_w + truth.misc_w + truth.psu_loss_w;
            if self.coverage == IpmiCoverage::IncludesGpus {
                w += truth.gpu_total_w();
            }
            let noise = 1.0 + rng.gen_range(-self.noise_frac..=self.noise_frac);
            self.cached_watts = (w * noise).max(0.0);
        }
        self.cached_watts.round() as u64
    }

    /// Simulated cost of one DCMI invocation (BMC round-trip); the exporter
    /// accounts this when deciding scrape budgets. Real invocations take
    /// tens of milliseconds — orders of magnitude slower than a RAPL sysfs
    /// read.
    pub fn invocation_cost_ms(&self) -> f64 {
        50.0
    }

    /// Total reads issued (cached + sampled).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// BMC-side refreshes actually performed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{compute_power, GpuModel, PowerSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth_with_gpus() -> (ComponentPower, f64) {
        let spec = PowerSpec::gpu_node(GpuModel::A100, 4, IpmiCoverage::IncludesGpus);
        let p = compute_power(&spec, 0.5, 0.5, &[0.8; 4]);
        let wall = p.wall_w();
        (p, wall)
    }

    #[test]
    fn includes_vs_excludes_gpus() {
        let (truth, wall) = truth_with_gpus();
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = IpmiDcmi::new(IpmiCoverage::IncludesGpus, 0, 0.0);
        let mut b = IpmiDcmi::new(IpmiCoverage::ExcludesGpus, 0, 0.0);
        let ra = a.power_reading(0, &truth, &mut rng) as f64;
        let rb = b.power_reading(0, &truth, &mut rng) as f64;
        assert!((ra - wall).abs() < 1.0);
        assert!((rb - (wall - truth.gpu_total_w())).abs() < 1.0);
        assert!(ra > rb + 1000.0);
    }

    #[test]
    fn caching_between_refreshes() {
        let (truth, _) = truth_with_gpus();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ipmi = IpmiDcmi::new(IpmiCoverage::IncludesGpus, 10_000, 0.05);
        let r0 = ipmi.power_reading(0, &truth, &mut rng);
        let r1 = ipmi.power_reading(3_000, &truth, &mut rng);
        let r2 = ipmi.power_reading(9_999, &truth, &mut rng);
        assert_eq!(r0, r1);
        assert_eq!(r1, r2);
        assert_eq!(ipmi.samples(), 1);
        assert_eq!(ipmi.reads(), 3);
        // After the interval the BMC refreshes (value may or may not differ
        // due to noise, but the sample counter must advance).
        let _ = ipmi.power_reading(10_000, &truth, &mut rng);
        assert_eq!(ipmi.samples(), 2);
    }

    #[test]
    fn noise_stays_bounded() {
        let (truth, wall) = truth_with_gpus();
        let mut rng = StdRng::seed_from_u64(42);
        let mut ipmi = IpmiDcmi::new(IpmiCoverage::IncludesGpus, 0, 0.03);
        for t in 0..200 {
            let r = ipmi.power_reading(t, &truth, &mut rng) as f64;
            assert!((r - wall).abs() <= wall * 0.031 + 1.0, "r={r} wall={wall}");
        }
    }

    #[test]
    fn dcmi_is_slow_vs_rapl() {
        let ipmi = IpmiDcmi::standard(IpmiCoverage::IncludesGpus);
        assert!(ipmi.invocation_cost_ms() >= 10.0);
    }
}
