#![warn(missing_docs)]
//! Simulated compute nodes (S8 in `DESIGN.md`).
//!
//! The paper's evaluation platform is the Jean-Zay supercomputer: ~1,400
//! heterogeneous nodes with Intel/AMD CPUs and >3,500 NVIDIA GPUs. That
//! hardware — RAPL MSRs, BMC/IPMI-DCMI power sensors, cgroup accounting —
//! is the gate this reproduction cannot cross, so this crate simulates it
//! with the same *interfaces* the CEEMS exporter would consume on a real
//! node:
//!
//! * [`clock`] — a shared, deterministic simulated clock.
//! * [`power`] — the component power model (CPU sockets, DRAM, GPUs, PSU
//!   overhead) driving every sensor.
//! * [`rapl`] — RAPL energy counters in µJ with realistic wraparound,
//!   rendered through a powercap-sysfs-like tree.
//! * [`ipmi`] — IPMI-DCMI whole-node power readings: slow, cached, noisy,
//!   and (per §III of the paper) either including or excluding GPU draw
//!   depending on the server type.
//! * [`cgroup`] — per-workload cgroup v2 accounting (cpu.stat,
//!   memory.current, io.stat) rendered as a pseudo-filesystem.
//! * [`gpu`] — DCGM/AMD-SMI-like per-GPU utilisation and power metrics.
//! * [`workload`] — synthetic workload profiles (CPU-bound, memory-bound,
//!   GPU, bursty, idle) that drive utilisation over time.
//! * [`node`] — [`node::SimNode`]: hardware spec + running tasks + sensors,
//!   advanced by [`node::SimNode::step`].
//! * [`cluster`] — fleets of nodes, including a Jean-Zay-like builder.
//! * [`pseudofs`] — the read API collectors use (`read file`, `list dir`),
//!   so the exporter exercises the same parse-text-from-sysfs code path it
//!   would in production.

pub mod cgroup;
pub mod clock;
pub mod cluster;
pub mod gpu;
pub mod ipmi;
pub mod node;
pub mod perf;
pub mod power;
pub mod pseudofs;
pub mod rapl;
pub mod workload;

pub use clock::SimClock;
pub use cluster::{ClusterSpec, SimCluster};
pub use node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
pub use power::{CpuVendor, GpuModel, IpmiCoverage};
pub use workload::WorkloadProfile;
