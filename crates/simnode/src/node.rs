//! The simulated compute node.
//!
//! A [`SimNode`] owns hardware sensors (RAPL, IPMI, GPUs), per-task cgroup
//! accounting, and node-level `/proc` counters. [`SimNode::step`] advances
//! everything by one time slice from the running tasks' workload profiles;
//! the CEEMS exporter then reads the node through [`PseudoFs`] and the
//! sensor methods exactly as it would read a real machine.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cgroup::{job_cgroup_dir, CgroupStats, SLURM_CGROUP_ROOT};
use crate::perf::{PerfCounters, PerfProfile};
use crate::gpu::GpuDevice;
use crate::ipmi::IpmiDcmi;
use crate::power::{compute_power, ComponentPower, CpuVendor, GpuModel, IpmiCoverage, PowerSpec};
use crate::pseudofs::PseudoFs;
use crate::rapl::RaplZone;
use crate::workload::WorkloadProfile;

/// Hardware class of a node (decides partition, sensors and power model).
#[derive(Clone, Debug, PartialEq)]
pub enum HardwareProfile {
    /// Dual-socket Intel node: RAPL package + DRAM domains.
    IntelCpu,
    /// Dual-socket AMD node: RAPL package domain only.
    AmdCpu,
    /// GPU node.
    Gpu {
        /// GPU model.
        model: GpuModel,
        /// GPU count.
        count: usize,
        /// Whether IPMI covers GPU power (§III: both types exist).
        coverage: IpmiCoverage,
    },
}

impl HardwareProfile {
    /// The electrical spec for this profile.
    pub fn power_spec(&self) -> PowerSpec {
        match self {
            HardwareProfile::IntelCpu => PowerSpec::intel_cpu_node(),
            HardwareProfile::AmdCpu => PowerSpec::amd_cpu_node(),
            HardwareProfile::Gpu {
                model,
                count,
                coverage,
            } => PowerSpec::gpu_node(*model, *count, *coverage),
        }
    }

    /// Installed memory.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            HardwareProfile::IntelCpu => 192 << 30,
            HardwareProfile::AmdCpu => 512 << 30,
            HardwareProfile::Gpu { .. } => 384 << 30,
        }
    }
}

/// Static description of a node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Hostname, e.g. `jz-intel-0042`.
    pub hostname: String,
    /// Hardware class.
    pub profile: HardwareProfile,
}

/// A task (job step) to place on a node.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Workload/job id (the resource manager's id).
    pub id: u64,
    /// Cores allocated.
    pub cores: usize,
    /// Memory allocated (bytes).
    pub memory_bytes: u64,
    /// Number of GPUs requested.
    pub gpus: usize,
    /// Workload shape.
    pub workload: WorkloadProfile,
}

/// Placement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// Not enough free cores.
    Cores,
    /// Not enough free memory.
    Memory,
    /// Not enough free GPUs.
    Gpus,
    /// Task id already running here.
    Duplicate,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            PlacementError::Cores => "insufficient cores",
            PlacementError::Memory => "insufficient memory",
            PlacementError::Gpus => "insufficient gpus",
            PlacementError::Duplicate => "duplicate task id",
        };
        f.write_str(what)
    }
}

impl std::error::Error for PlacementError {}

struct RunningTask {
    spec: TaskSpec,
    cgroup: CgroupStats,
    gpu_ordinals: Vec<usize>,
    started_ms: i64,
    perf: PerfCounters,
    perf_profile: PerfProfile,
    net_tx_bytes: u64,
    net_rx_bytes: u64,
}

/// Node-level cumulative CPU jiffies, as `/proc/stat` reports (USER_HZ=100).
#[derive(Clone, Copy, Debug, Default)]
struct ProcStat {
    user: u64,
    system: u64,
    idle: u64,
}

/// A simulated compute node.
pub struct SimNode {
    spec: NodeSpec,
    power_spec: PowerSpec,
    rapl: RaplZone,
    ipmi: IpmiDcmi,
    gpus: Vec<GpuDevice>,
    tasks: BTreeMap<u64, RunningTask>,
    proc_stat: ProcStat,
    last_power: ComponentPower,
    last_step_ms: i64,
    rng: StdRng,
}

impl SimNode {
    /// Creates an idle node.
    pub fn new(spec: NodeSpec, seed: u64) -> SimNode {
        let power_spec = spec.profile.power_spec();
        let with_dram = power_spec.vendor == CpuVendor::Intel;
        let rapl = RaplZone::new(power_spec.sockets, with_dram);
        let ipmi = IpmiDcmi::standard(power_spec.ipmi_coverage);
        let gpus = power_spec
            .gpus
            .iter()
            .enumerate()
            .map(|(i, &m)| GpuDevice::new(i, m))
            .collect();
        let last_power = compute_power(&power_spec, 0.0, 0.0, &vec![0.0; power_spec.gpus.len()]);
        SimNode {
            spec,
            power_spec,
            rapl,
            ipmi,
            gpus,
            tasks: BTreeMap::new(),
            proc_stat: ProcStat::default(),
            last_power,
            last_step_ms: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Hostname.
    pub fn hostname(&self) -> &str {
        &self.spec.hostname
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.power_spec.total_cores()
    }

    /// Installed memory.
    pub fn total_memory(&self) -> u64 {
        self.spec.profile.memory_bytes()
    }

    /// GPU count.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Free cores right now.
    pub fn free_cores(&self) -> usize {
        self.total_cores() - self.tasks.values().map(|t| t.spec.cores).sum::<usize>()
    }

    /// Free memory right now.
    pub fn free_memory(&self) -> u64 {
        self.total_memory()
            - self
                .tasks
                .values()
                .map(|t| t.spec.memory_bytes)
                .sum::<u64>()
    }

    /// Free GPU ordinals right now.
    pub fn free_gpus(&self) -> Vec<usize> {
        self.gpus
            .iter()
            .filter(|g| g.bound_job.is_none())
            .map(|g| g.ordinal)
            .collect()
    }

    /// Running task ids.
    pub fn task_ids(&self) -> Vec<u64> {
        self.tasks.keys().copied().collect()
    }

    /// GPU ordinals bound to a task — the map CEEMS must record while the
    /// job is alive (§II.A.d).
    pub fn task_gpu_ordinals(&self, task_id: u64) -> Option<Vec<usize>> {
        self.tasks.get(&task_id).map(|t| t.gpu_ordinals.clone())
    }

    /// Perf counters of a task (simulated Linux perf — the paper's
    /// future-work performance metrics).
    pub fn task_perf(&self, task_id: u64) -> Option<PerfCounters> {
        self.tasks.get(&task_id).map(|t| t.perf)
    }

    /// Cumulative `(tx_bytes, rx_bytes)` of a task (the eBPF-sourced
    /// network stats of the paper's future-work list).
    pub fn task_network(&self, task_id: u64) -> Option<(u64, u64)> {
        self.tasks
            .get(&task_id)
            .map(|t| (t.net_tx_bytes, t.net_rx_bytes))
    }

    /// Places a task, binding GPUs in ordinal order; creates its cgroup.
    pub fn add_task(&mut self, spec: TaskSpec, now_ms: i64) -> Result<(), PlacementError> {
        if self.tasks.contains_key(&spec.id) {
            return Err(PlacementError::Duplicate);
        }
        if spec.cores > self.free_cores() {
            return Err(PlacementError::Cores);
        }
        if spec.memory_bytes > self.free_memory() {
            return Err(PlacementError::Memory);
        }
        let free = self.free_gpus();
        if spec.gpus > free.len() {
            return Err(PlacementError::Gpus);
        }
        let gpu_ordinals: Vec<usize> = free.into_iter().take(spec.gpus).collect();
        for &o in &gpu_ordinals {
            self.gpus[o].bound_job = Some(spec.id);
        }
        let pid = 10_000 + (spec.id % 50_000) as u32;
        let cgroup = CgroupStats::new(spec.memory_bytes, pid);
        let perf_profile = PerfProfile::for_kind(spec.workload.kind());
        self.tasks.insert(
            spec.id,
            RunningTask {
                spec,
                cgroup,
                gpu_ordinals,
                started_ms: now_ms,
                perf: PerfCounters::default(),
                perf_profile,
                net_tx_bytes: 0,
                net_rx_bytes: 0,
            },
        );
        Ok(())
    }

    /// Removes a task (job completion), unbinding GPUs and destroying its
    /// cgroup. Returns its final accounting.
    pub fn remove_task(&mut self, task_id: u64) -> Option<CgroupStats> {
        let t = self.tasks.remove(&task_id)?;
        for &o in &t.gpu_ordinals {
            self.gpus[o].bound_job = None;
        }
        Some(t.cgroup)
    }

    /// Advances the node by `dt_s` seconds of simulated time ending at
    /// `now_ms`. Updates cgroups, RAPL counters, GPU devices and `/proc`.
    pub fn step(&mut self, now_ms: i64, dt_s: f64) {
        let mut total_busy_cores = 0.0;
        let mut total_mem_bytes: u64 = 0;
        let mut gpu_utils = vec![0.0f64; self.gpus.len()];
        let mut gpu_mem = vec![0.0f64; self.gpus.len()];

        for t in self.tasks.values_mut() {
            let elapsed_s = ((now_ms - t.started_ms) as f64 / 1000.0).max(0.0);
            let usage = t.spec.workload.sample(elapsed_s, &mut self.rng);
            let busy_cores = usage.cpu * t.spec.cores as f64;
            let mem_bytes = (usage.mem * t.spec.memory_bytes as f64) as u64;
            t.cgroup.advance(
                dt_s,
                busy_cores,
                mem_bytes,
                usage.io_read_bps,
                usage.io_write_bps,
            );
            t.perf.advance(&t.perf_profile, &usage, t.spec.cores, dt_s);
            t.net_tx_bytes += (usage.net_tx_bps * dt_s) as u64;
            t.net_rx_bytes += (usage.net_rx_bps * dt_s) as u64;
            total_busy_cores += busy_cores;
            total_mem_bytes += t.cgroup.memory_current;
            for &o in &t.gpu_ordinals {
                gpu_utils[o] = usage.gpu;
                gpu_mem[o] = usage.gpu_mem;
            }
        }

        // System overhead: the OS itself burns a little CPU.
        let overhead_cores = 0.2 + self.rng.gen_range(0.0..0.1);
        let node_busy = total_busy_cores + overhead_cores;
        let cpu_util = (node_busy / self.total_cores() as f64).min(1.0);
        let mem_activity = (total_mem_bytes as f64 / self.total_memory() as f64
            + 0.3 * cpu_util)
            .min(1.0);

        let power = compute_power(&self.power_spec, cpu_util, mem_activity, &gpu_utils);

        self.rapl
            .accumulate(&power.cpu_sockets_w, power.dram_w, dt_s);
        for (i, g) in self.gpus.iter_mut().enumerate() {
            let w = power.gpus_w[i];
            g.update(gpu_utils[i], gpu_mem[i], w, dt_s);
        }

        // /proc/stat jiffies at USER_HZ = 100.
        let busy_jiffies = (node_busy * dt_s * 100.0) as u64;
        self.proc_stat.user += busy_jiffies * 92 / 100;
        self.proc_stat.system += busy_jiffies - busy_jiffies * 92 / 100;
        let idle_cores = (self.total_cores() as f64 - node_busy).max(0.0);
        self.proc_stat.idle += (idle_cores * dt_s * 100.0) as u64;

        self.last_power = power;
        self.last_step_ms = now_ms;
    }

    /// Ground-truth component power from the last step (tests and the
    /// attribution experiments compare against this).
    pub fn ground_truth_power(&self) -> &ComponentPower {
        &self.last_power
    }

    /// An IPMI-DCMI power reading at `now_ms` (cached per BMC refresh rate).
    pub fn ipmi_power_reading(&mut self, now_ms: i64) -> u64 {
        let truth = self.last_power.clone();
        self.ipmi.power_reading(now_ms, &truth, &mut self.rng)
    }

    /// The GPU devices (DCGM view).
    pub fn gpus(&self) -> &[GpuDevice] {
        &self.gpus
    }

    /// Total memory currently used on the node (tasks + a base OS share).
    pub fn memory_used(&self) -> u64 {
        let task_mem: u64 = self.tasks.values().map(|t| t.cgroup.memory_current).sum();
        task_mem + (2 << 30)
    }
}

impl PseudoFs for SimNode {
    fn read_file(&self, path: &str) -> Option<String> {
        // /proc/stat
        if path == "/proc/stat" {
            let p = &self.proc_stat;
            return Some(format!(
                "cpu  {} 0 {} {} 0 0 0 0 0 0\n",
                p.user, p.system, p.idle
            ));
        }
        // /proc/meminfo (kB units like the kernel).
        if path == "/proc/meminfo" {
            let total_kb = self.total_memory() / 1024;
            let used_kb = self.memory_used() / 1024;
            let free_kb = total_kb.saturating_sub(used_kb);
            return Some(format!(
                "MemTotal:       {total_kb} kB\nMemFree:        {free_kb} kB\nMemAvailable:   {free_kb} kB\n"
            ));
        }
        // Powercap tree.
        if let Some(rest) = path.strip_prefix("/sys/class/powercap/") {
            return self
                .rapl
                .render()
                .into_iter()
                .find(|(p, _)| p == rest)
                .map(|(_, c)| c);
        }
        // Cgroup tree.
        if let Some(rest) = path.strip_prefix(&format!("{SLURM_CGROUP_ROOT}/")) {
            let (dir, file) = rest.split_once('/')?;
            let job_id = crate::cgroup::parse_job_dir(dir)?;
            let task = self.tasks.get(&job_id)?;
            return task
                .cgroup
                .render()
                .into_iter()
                .find(|(name, _)| name == file)
                .map(|(_, c)| c);
        }
        None
    }

    fn list_dir(&self, path: &str) -> Option<Vec<String>> {
        if path == SLURM_CGROUP_ROOT {
            return Some(
                self.tasks
                    .keys()
                    .map(|id| format!("job_{id}"))
                    .collect(),
            );
        }
        if path == "/sys/class/powercap" {
            let mut dirs: Vec<String> = self
                .rapl
                .render()
                .into_iter()
                .map(|(p, _)| p.split('/').next().unwrap().to_string())
                .collect();
            dirs.sort();
            dirs.dedup();
            return Some(dirs);
        }
        if let Some(rest) = path.strip_prefix(&format!("{SLURM_CGROUP_ROOT}/")) {
            let job_id = crate::cgroup::parse_job_dir(rest)?;
            let task = self.tasks.get(&job_id)?;
            return Some(task.cgroup.render().into_iter().map(|(n, _)| n).collect());
        }
        None
    }
}

/// Returns the cgroup directory path for a job on any node.
pub fn cgroup_path(job_id: u64) -> String {
    job_cgroup_dir(job_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_node() -> SimNode {
        SimNode::new(
            NodeSpec {
                hostname: "jz-a100-01".into(),
                profile: HardwareProfile::Gpu {
                    model: GpuModel::A100,
                    count: 4,
                    coverage: IpmiCoverage::IncludesGpus,
                },
            },
            42,
        )
    }

    fn cpu_task(id: u64, cores: usize) -> TaskSpec {
        TaskSpec {
            id,
            cores,
            memory_bytes: 8 << 30,
            gpus: 0,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        }
    }

    #[test]
    fn placement_respects_capacity() {
        let mut n = gpu_node();
        assert_eq!(n.total_cores(), 40);
        n.add_task(cpu_task(1, 30), 0).unwrap();
        assert_eq!(n.add_task(cpu_task(1, 2), 0), Err(PlacementError::Duplicate));
        assert_eq!(n.add_task(cpu_task(2, 20), 0), Err(PlacementError::Cores));
        n.add_task(cpu_task(3, 10), 0).unwrap();
        assert_eq!(n.free_cores(), 0);

        let mut big_mem = cpu_task(4, 0);
        big_mem.cores = 0;
        big_mem.memory_bytes = 1 << 50;
        assert_eq!(n.add_task(big_mem, 0), Err(PlacementError::Memory));
    }

    #[test]
    fn gpu_binding_and_release() {
        let mut n = gpu_node();
        let t = TaskSpec {
            id: 9,
            cores: 8,
            memory_bytes: 64 << 30,
            gpus: 3,
            workload: WorkloadProfile::GpuTraining {
                intensity: 0.9,
                period_s: 600.0,
            },
        };
        n.add_task(t, 0).unwrap();
        assert_eq!(n.task_gpu_ordinals(9).unwrap(), vec![0, 1, 2]);
        assert_eq!(n.free_gpus(), vec![3]);
        assert_eq!(
            n.add_task(
                TaskSpec {
                    id: 10,
                    cores: 1,
                    memory_bytes: 1 << 30,
                    gpus: 2,
                    workload: WorkloadProfile::Idle,
                },
                0
            ),
            Err(PlacementError::Gpus)
        );
        let final_stats = n.remove_task(9).unwrap();
        assert_eq!(final_stats.cpu_total_usec(), 0); // never stepped
        assert_eq!(n.free_gpus(), vec![0, 1, 2, 3]);
        assert!(n.remove_task(9).is_none());
    }

    #[test]
    fn step_accumulates_everything() {
        let mut n = gpu_node();
        n.add_task(
            TaskSpec {
                id: 5,
                cores: 16,
                memory_bytes: 100 << 30,
                gpus: 4,
                workload: WorkloadProfile::GpuTraining {
                    intensity: 0.9,
                    period_s: 600.0,
                },
            },
            0,
        )
        .unwrap();
        for i in 1..=60 {
            n.step(i * 1000, 1.0);
        }
        // Cgroup accounting advanced.
        let cg = n.read_file(&format!("{}/job_5/cpu.stat", SLURM_CGROUP_ROOT)).unwrap();
        let usage: u64 = cg
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(usage > 0);
        // RAPL accumulated energy.
        assert!(n.rapl.package_energy_uj() > 0);
        // GPUs show utilisation and energy.
        assert!(n.gpus()[0].util > 0.5);
        assert!(n.gpus()[0].energy_j > 60.0 * 100.0);
        // Ground truth wall power is plausible for a loaded 4xA100 node.
        let wall = n.ground_truth_power().wall_w();
        assert!(wall > 1200.0 && wall < 3000.0, "wall={wall}");
        // IPMI reads near wall power.
        let ipmi = n.ipmi_power_reading(60_000) as f64;
        assert!((ipmi - wall).abs() < wall * 0.05, "ipmi={ipmi} wall={wall}");
    }

    #[test]
    fn pseudofs_layout() {
        let mut n = gpu_node();
        n.add_task(cpu_task(7, 4), 0).unwrap();
        n.step(1000, 1.0);

        assert_eq!(
            n.list_dir(SLURM_CGROUP_ROOT).unwrap(),
            vec!["job_7".to_string()]
        );
        let files = n
            .list_dir(&format!("{}/job_7", SLURM_CGROUP_ROOT))
            .unwrap();
        assert!(files.contains(&"cpu.stat".to_string()));
        assert!(files.contains(&"memory.current".to_string()));

        // Powercap: Intel-based GPU node has package + dram.
        let zones = n.list_dir("/sys/class/powercap").unwrap();
        assert!(zones.contains(&"intel-rapl:0".to_string()));
        assert!(zones.contains(&"intel-rapl:0:0".to_string()));
        assert!(n
            .read_u64("/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            > 0);

        // /proc files parse.
        assert!(n.read_file("/proc/stat").unwrap().starts_with("cpu  "));
        assert!(n.read_file("/proc/meminfo").unwrap().contains("MemTotal"));

        // Missing paths.
        assert!(n.read_file("/sys/fs/cgroup/system.slice/slurmstepd.scope/job_99/cpu.stat").is_none());
        assert!(n.read_file("/bogus").is_none());
    }

    #[test]
    fn amd_node_has_no_dram_domain() {
        let n = SimNode::new(
            NodeSpec {
                hostname: "jz-amd-01".into(),
                profile: HardwareProfile::AmdCpu,
            },
            1,
        );
        let zones = n.list_dir("/sys/class/powercap").unwrap();
        assert!(zones.contains(&"intel-rapl:0".to_string()));
        assert!(!zones.iter().any(|z| z.contains(":0:0")));
    }

    #[test]
    fn proc_stat_tracks_totals() {
        let mut n = gpu_node();
        n.add_task(cpu_task(1, 40), 0).unwrap();
        for i in 1..=10 {
            n.step(i * 1000, 1.0);
        }
        let stat = n.read_file("/proc/stat").unwrap();
        let fields: Vec<u64> = stat
            .split_whitespace()
            .skip(1)
            .map(|f| f.parse().unwrap())
            .collect();
        let (user, system, idle) = (fields[0], fields[2], fields[3]);
        // 40 cores at ~0.9 utilisation for 10 s at 100 Hz ≈ 36000 busy jiffies.
        assert!(user + system > 30_000, "user+sys={}", user + system);
        assert!(idle < 10_000);
    }
}
