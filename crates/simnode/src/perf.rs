//! Simulated hardware performance counters (the paper's future work:
//! "adding performance metrics like FLOPS, caching, and memory IO
//! bandwidth ... from Linux's perf framework").
//!
//! Counters are derived deterministically from the workload's utilisation
//! each step, with per-workload-class characteristics: CPU-bound code runs
//! high IPC and FLOP rates with a warm cache; memory-bound code stalls
//! (low IPC, high miss rate, high DRAM bandwidth).

use crate::workload::Usage;

/// Cumulative per-task perf counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// CPU cycles.
    pub cycles: u64,
    /// Double-precision FLOPs.
    pub flops: u64,
    /// Last-level cache references.
    pub cache_references: u64,
    /// Last-level cache misses.
    pub cache_misses: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
}

/// Per-class perf characteristics.
#[derive(Clone, Copy, Debug)]
pub struct PerfProfile {
    /// Instructions per cycle when running.
    pub ipc: f64,
    /// FLOPs per instruction.
    pub flops_per_insn: f64,
    /// Cache references per instruction.
    pub cache_refs_per_insn: f64,
    /// Miss ratio of those references.
    pub miss_ratio: f64,
    /// DRAM bytes per cache miss (line size + prefetch factor).
    pub bytes_per_miss: f64,
}

impl PerfProfile {
    /// Characteristics for a workload kind string (see
    /// [`crate::workload::WorkloadProfile::kind`]).
    pub fn for_kind(kind: &str) -> PerfProfile {
        match kind {
            "cpu_bound" => PerfProfile {
                ipc: 2.6,
                flops_per_insn: 0.45,
                cache_refs_per_insn: 0.08,
                miss_ratio: 0.03,
                bytes_per_miss: 64.0,
            },
            "memory_bound" => PerfProfile {
                ipc: 0.7,
                flops_per_insn: 0.10,
                cache_refs_per_insn: 0.30,
                miss_ratio: 0.35,
                bytes_per_miss: 128.0,
            },
            "gpu_training" => PerfProfile {
                ipc: 1.2,
                flops_per_insn: 0.05, // host side only; GPU FLOPs are DCGM's
                cache_refs_per_insn: 0.15,
                miss_ratio: 0.12,
                bytes_per_miss: 64.0,
            },
            "bursty" => PerfProfile {
                ipc: 1.8,
                flops_per_insn: 0.20,
                cache_refs_per_insn: 0.12,
                miss_ratio: 0.08,
                bytes_per_miss: 64.0,
            },
            _ => PerfProfile {
                ipc: 1.0,
                flops_per_insn: 0.01,
                cache_refs_per_insn: 0.05,
                miss_ratio: 0.05,
                bytes_per_miss: 64.0,
            },
        }
    }
}

/// Nominal core clock used for cycle accounting (Hz).
pub const CORE_HZ: f64 = 2.5e9;

impl PerfCounters {
    /// Advances counters for `dt_s` seconds of the given usage over
    /// `cores` allocated cores.
    pub fn advance(&mut self, profile: &PerfProfile, usage: &Usage, cores: usize, dt_s: f64) {
        let busy_core_seconds = usage.cpu * cores as f64 * dt_s;
        let cycles = busy_core_seconds * CORE_HZ;
        let insns = cycles * profile.ipc;
        let refs = insns * profile.cache_refs_per_insn;
        let misses = refs * profile.miss_ratio;
        self.cycles += cycles as u64;
        self.instructions += insns as u64;
        self.flops += (insns * profile.flops_per_insn) as u64;
        self.cache_references += refs as u64;
        self.cache_misses += misses as u64;
        self.dram_bytes += (misses * profile.bytes_per_miss) as u64;
    }

    /// Achieved IPC so far.
    pub fn achieved_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cache miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.cache_references == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_references as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(cpu: f64) -> Usage {
        Usage {
            cpu,
            ..Default::default()
        }
    }

    #[test]
    fn counters_accumulate_by_class() {
        let mut cpu = PerfCounters::default();
        let mut mem = PerfCounters::default();
        let u = usage(1.0);
        cpu.advance(&PerfProfile::for_kind("cpu_bound"), &u, 4, 10.0);
        mem.advance(&PerfProfile::for_kind("memory_bound"), &u, 4, 10.0);

        // Same cycles, very different instruction/FLOP/bandwidth mixes.
        assert_eq!(cpu.cycles, mem.cycles);
        assert!(cpu.instructions > 3 * mem.instructions);
        assert!(cpu.flops > 10 * mem.flops);
        assert!(mem.dram_bytes > 5 * cpu.dram_bytes);
        assert!(mem.miss_ratio() > 0.3);
        assert!(cpu.miss_ratio() < 0.05);
        assert!((cpu.achieved_ipc() - 2.6).abs() < 0.01);
    }

    #[test]
    fn idle_accumulates_nothing() {
        let mut c = PerfCounters::default();
        c.advance(&PerfProfile::for_kind("idle"), &usage(0.0), 8, 100.0);
        assert_eq!(c.instructions, 0);
        assert_eq!(c.achieved_ipc(), 0.0);
        assert_eq!(c.miss_ratio(), 0.0);
    }

    #[test]
    fn flop_rate_plausible_for_hpc_code() {
        // 40 cores flat out for 1 s of dense compute.
        let mut c = PerfCounters::default();
        c.advance(&PerfProfile::for_kind("cpu_bound"), &usage(1.0), 40, 1.0);
        let gflops = c.flops as f64 / 1e9;
        // ~2.5 GHz × 2.6 IPC × 0.45 FLOP/insn × 40 cores ≈ 117 GFLOP/s.
        assert!((50.0..500.0).contains(&gflops), "gflops={gflops}");
    }
}
