//! Component power model.
//!
//! Every simulated sensor (RAPL, IPMI, DCGM) derives from one ground-truth
//! [`ComponentPower`] computed from current utilisation. Because the ground
//! truth is known, tests can assert that the CEEMS attribution formula
//! (Eq. (1) in the paper) recovers it.

/// CPU vendor — decides which RAPL domains exist (§III: Intel nodes report
/// CPU *and* DRAM counters, AMD nodes report CPU only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuVendor {
    /// Intel: package + DRAM RAPL domains.
    Intel,
    /// AMD: package RAPL domain only.
    Amd,
}

/// GPU model present on Jean-Zay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuModel {
    /// NVIDIA V100 (300 W TDP).
    V100,
    /// NVIDIA A100 (400 W TDP).
    A100,
    /// NVIDIA H100 (700 W TDP).
    H100,
}

impl GpuModel {
    /// Idle draw in watts.
    pub fn idle_watts(self) -> f64 {
        match self {
            GpuModel::V100 => 40.0,
            GpuModel::A100 => 55.0,
            GpuModel::H100 => 70.0,
        }
    }

    /// Max (TDP) draw in watts.
    pub fn max_watts(self) -> f64 {
        match self {
            GpuModel::V100 => 300.0,
            GpuModel::A100 => 400.0,
            GpuModel::H100 => 700.0,
        }
    }

    /// Device memory in bytes.
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuModel::V100 => 32 << 30,
            GpuModel::A100 => 80 << 30,
            GpuModel::H100 => 80 << 30,
        }
    }

    /// Marketing name as DCGM reports it.
    pub fn name(self) -> &'static str {
        match self {
            GpuModel::V100 => "Tesla V100-SXM2-32GB",
            GpuModel::A100 => "NVIDIA A100-SXM4-80GB",
            GpuModel::H100 => "NVIDIA H100-SXM5-80GB",
        }
    }
}

/// Whether the node's BMC wiring includes GPU power in IPMI-DCMI readings.
/// §III observes Jean-Zay has both server types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpmiCoverage {
    /// Type A: IPMI reading covers the whole node including GPUs.
    IncludesGpus,
    /// Type B: GPUs are powered separately; IPMI misses them.
    ExcludesGpus,
}

/// Static electrical characteristics of a node.
#[derive(Clone, Debug)]
pub struct PowerSpec {
    /// CPU vendor.
    pub vendor: CpuVendor,
    /// Socket count.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Idle package draw per socket (W).
    pub cpu_idle_w: f64,
    /// Max package draw per socket (W).
    pub cpu_max_w: f64,
    /// Idle DRAM draw for the whole node (W).
    pub dram_idle_w: f64,
    /// Max DRAM draw for the whole node (W).
    pub dram_max_w: f64,
    /// Fixed draw of everything else: fans, board, NICs (W).
    pub misc_w: f64,
    /// PSU efficiency (0..1]; wall power = component power / efficiency.
    pub psu_efficiency: f64,
    /// GPUs on the node.
    pub gpus: Vec<GpuModel>,
    /// IPMI wiring type.
    pub ipmi_coverage: IpmiCoverage,
}

impl PowerSpec {
    /// A typical dual-socket Intel CPU node (Cascade Lake-ish).
    pub fn intel_cpu_node() -> PowerSpec {
        PowerSpec {
            vendor: CpuVendor::Intel,
            sockets: 2,
            cores_per_socket: 20,
            cpu_idle_w: 45.0,
            cpu_max_w: 150.0,
            dram_idle_w: 12.0,
            dram_max_w: 60.0,
            misc_w: 60.0,
            psu_efficiency: 0.92,
            gpus: Vec::new(),
            ipmi_coverage: IpmiCoverage::IncludesGpus,
        }
    }

    /// A typical dual-socket AMD CPU node (EPYC-ish). AMD RAPL exposes no
    /// DRAM domain, but DRAM still draws power — that asymmetry is what the
    /// paper's per-node-group recording rules handle.
    pub fn amd_cpu_node() -> PowerSpec {
        PowerSpec {
            vendor: CpuVendor::Amd,
            sockets: 2,
            cores_per_socket: 64,
            cpu_idle_w: 65.0,
            cpu_max_w: 225.0,
            dram_idle_w: 18.0,
            dram_max_w: 80.0,
            misc_w: 70.0,
            psu_efficiency: 0.93,
            gpus: Vec::new(),
            ipmi_coverage: IpmiCoverage::IncludesGpus,
        }
    }

    /// A GPU node with `count` GPUs of `model` and the given IPMI wiring.
    pub fn gpu_node(model: GpuModel, count: usize, coverage: IpmiCoverage) -> PowerSpec {
        let mut spec = PowerSpec::intel_cpu_node();
        spec.gpus = vec![model; count];
        spec.ipmi_coverage = coverage;
        spec
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }
}

/// Instantaneous ground-truth power by component.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ComponentPower {
    /// Per-socket package power (W).
    pub cpu_sockets_w: Vec<f64>,
    /// Whole-node DRAM power (W).
    pub dram_w: f64,
    /// Per-GPU power (W).
    pub gpus_w: Vec<f64>,
    /// Fixed misc power (W).
    pub misc_w: f64,
    /// PSU conversion loss (W).
    pub psu_loss_w: f64,
}

impl ComponentPower {
    /// Total CPU package power.
    pub fn cpu_total_w(&self) -> f64 {
        self.cpu_sockets_w.iter().sum()
    }

    /// Total GPU power.
    pub fn gpu_total_w(&self) -> f64 {
        self.gpus_w.iter().sum()
    }

    /// Wall power including PSU loss (what a watt-meter would show).
    pub fn wall_w(&self) -> f64 {
        self.cpu_total_w() + self.dram_w + self.gpu_total_w() + self.misc_w + self.psu_loss_w
    }
}

/// Computes ground-truth component power for the given utilisations.
///
/// * `cpu_util` — node-wide CPU utilisation in `[0, 1]` (spread evenly
///   across sockets; the linear idle→max ramp is the standard first-order
///   server power model).
/// * `mem_activity` — DRAM activity in `[0, 1]`.
/// * `gpu_utils` — per-GPU utilisation in `[0, 1]`; length must equal
///   `spec.gpus.len()`.
pub fn compute_power(
    spec: &PowerSpec,
    cpu_util: f64,
    mem_activity: f64,
    gpu_utils: &[f64],
) -> ComponentPower {
    assert_eq!(
        gpu_utils.len(),
        spec.gpus.len(),
        "one utilisation value per GPU"
    );
    let clamp = |x: f64| x.clamp(0.0, 1.0);
    let cpu_util = clamp(cpu_util);
    let mem_activity = clamp(mem_activity);

    let per_socket = spec.cpu_idle_w + (spec.cpu_max_w - spec.cpu_idle_w) * cpu_util;
    let cpu_sockets_w = vec![per_socket; spec.sockets];
    let dram_w = spec.dram_idle_w + (spec.dram_max_w - spec.dram_idle_w) * mem_activity;
    let gpus_w: Vec<f64> = spec
        .gpus
        .iter()
        .zip(gpu_utils.iter())
        .map(|(g, &u)| g.idle_watts() + (g.max_watts() - g.idle_watts()) * clamp(u))
        .collect();

    let component_sum: f64 =
        cpu_sockets_w.iter().sum::<f64>() + dram_w + gpus_w.iter().sum::<f64>() + spec.misc_w;
    let psu_loss_w = component_sum * (1.0 / spec.psu_efficiency - 1.0);

    ComponentPower {
        cpu_sockets_w,
        dram_w,
        gpus_w,
        misc_w: spec.misc_w,
        psu_loss_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_is_floor() {
        let spec = PowerSpec::intel_cpu_node();
        let p = compute_power(&spec, 0.0, 0.0, &[]);
        assert_eq!(p.cpu_total_w(), 2.0 * 45.0);
        assert_eq!(p.dram_w, 12.0);
        assert_eq!(p.gpu_total_w(), 0.0);
        assert!(p.wall_w() > p.cpu_total_w() + p.dram_w + p.misc_w);
    }

    #[test]
    fn full_load_hits_max() {
        let spec = PowerSpec::intel_cpu_node();
        let p = compute_power(&spec, 1.0, 1.0, &[]);
        assert_eq!(p.cpu_total_w(), 2.0 * 150.0);
        assert_eq!(p.dram_w, 60.0);
    }

    #[test]
    fn utilisation_clamped() {
        let spec = PowerSpec::intel_cpu_node();
        let hi = compute_power(&spec, 7.0, 2.0, &[]);
        let max = compute_power(&spec, 1.0, 1.0, &[]);
        assert_eq!(hi, max);
    }

    #[test]
    fn gpu_power_scales_with_util() {
        let spec = PowerSpec::gpu_node(GpuModel::A100, 4, IpmiCoverage::IncludesGpus);
        let idle = compute_power(&spec, 0.1, 0.1, &[0.0; 4]);
        let busy = compute_power(&spec, 0.1, 0.1, &[1.0; 4]);
        assert_eq!(idle.gpu_total_w(), 4.0 * 55.0);
        assert_eq!(busy.gpu_total_w(), 4.0 * 400.0);
        assert!(busy.wall_w() > idle.wall_w() + 1000.0);
    }

    #[test]
    fn monotonic_in_cpu_util() {
        let spec = PowerSpec::amd_cpu_node();
        let mut last = 0.0;
        for i in 0..=10 {
            let p = compute_power(&spec, i as f64 / 10.0, 0.3, &[]);
            assert!(p.wall_w() > last);
            last = p.wall_w();
        }
    }

    #[test]
    #[should_panic(expected = "one utilisation value per GPU")]
    fn gpu_util_arity_checked() {
        let spec = PowerSpec::gpu_node(GpuModel::V100, 4, IpmiCoverage::ExcludesGpus);
        compute_power(&spec, 0.0, 0.0, &[0.5]);
    }

    #[test]
    fn gpu_model_catalog() {
        assert!(GpuModel::H100.max_watts() > GpuModel::A100.max_watts());
        assert!(GpuModel::A100.max_watts() > GpuModel::V100.max_watts());
        assert_eq!(GpuModel::V100.memory_bytes(), 32 << 30);
        assert!(GpuModel::A100.name().contains("A100"));
    }
}
