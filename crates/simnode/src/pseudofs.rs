//! The pseudo-filesystem read interface.
//!
//! On a real node the CEEMS exporter walks `/sys/fs/cgroup`,
//! `/sys/class/powercap` and `/proc`. Collectors in this reproduction read
//! through this trait instead, so the *parsing* code path is identical; the
//! simulated node renders file contents on demand.

/// Read-only filesystem view.
pub trait PseudoFs {
    /// Reads a file's full contents, or `None` if it does not exist.
    fn read_file(&self, path: &str) -> Option<String>;

    /// Lists directory entry names (not full paths), or `None` if the
    /// directory does not exist.
    fn list_dir(&self, path: &str) -> Option<Vec<String>>;

    /// Convenience: reads a file and parses it as a number.
    fn read_u64(&self, path: &str) -> Option<u64> {
        self.read_file(path)?.trim().parse().ok()
    }
}

/// A static in-memory filesystem for tests.
#[derive(Default)]
pub struct MapFs {
    files: std::collections::BTreeMap<String, String>,
}

impl MapFs {
    /// Creates an empty filesystem.
    pub fn new() -> MapFs {
        MapFs::default()
    }

    /// Adds a file.
    pub fn insert(&mut self, path: &str, content: impl Into<String>) {
        self.files.insert(path.to_string(), content.into());
    }
}

impl PseudoFs for MapFs {
    fn read_file(&self, path: &str) -> Option<String> {
        self.files.get(path).cloned()
    }

    fn list_dir(&self, path: &str) -> Option<Vec<String>> {
        let prefix = format!("{}/", path.trim_end_matches('/'));
        let mut entries: Vec<String> = self
            .files
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .map(|rest| rest.split('/').next().unwrap().to_string())
            .collect();
        entries.sort();
        entries.dedup();
        if entries.is_empty() {
            None
        } else {
            Some(entries)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapfs_read_and_list() {
        let mut fs = MapFs::new();
        fs.insert("/sys/fs/cgroup/job_1/cpu.stat", "usage_usec 42\n");
        fs.insert("/sys/fs/cgroup/job_1/memory.current", "1024\n");
        fs.insert("/sys/fs/cgroup/job_2/cpu.stat", "usage_usec 7\n");

        assert_eq!(
            fs.read_file("/sys/fs/cgroup/job_1/memory.current").unwrap(),
            "1024\n"
        );
        assert_eq!(fs.read_u64("/sys/fs/cgroup/job_1/memory.current"), Some(1024));
        assert!(fs.read_file("/nope").is_none());

        let dirs = fs.list_dir("/sys/fs/cgroup").unwrap();
        assert_eq!(dirs, vec!["job_1", "job_2"]);
        let files = fs.list_dir("/sys/fs/cgroup/job_1").unwrap();
        assert_eq!(files, vec!["cpu.stat", "memory.current"]);
        assert!(fs.list_dir("/empty").is_none());
    }
}
