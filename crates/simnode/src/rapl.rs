//! RAPL energy counters with powercap-style semantics.
//!
//! Real RAPL exposes per-domain cumulative energy in microjoules through
//! `/sys/class/powercap/intel-rapl:<socket>[:<sub>]/energy_uj`, wrapping at
//! `max_energy_range_uj`. The paper relies on RAPL being cheap and
//! fine-grained (µs) versus IPMI being slow; this module reproduces the
//! counter semantics including wraparound, which `rate()` in the TSDB must
//! handle exactly like Prometheus does for counter resets.

/// One RAPL domain (`package-0`, `dram`, ...).
#[derive(Clone, Debug)]
pub struct RaplDomain {
    /// Domain name as the sysfs `name` file reports (`package-0`, `dram`).
    pub name: String,
    energy_uj: f64,
    max_energy_range_uj: u64,
}

impl RaplDomain {
    /// Creates a domain with the default (realistic) 262 kJ wrap range.
    pub fn new(name: impl Into<String>) -> RaplDomain {
        // Typical value observed on Intel hardware: ~262143 J.
        RaplDomain::with_range(name, 262_143_328_850)
    }

    /// Creates a domain with a custom wrap range (tests use small ranges to
    /// exercise wraparound quickly).
    pub fn with_range(name: impl Into<String>, max_energy_range_uj: u64) -> RaplDomain {
        assert!(max_energy_range_uj > 0);
        RaplDomain {
            name: name.into(),
            energy_uj: 0.0,
            max_energy_range_uj,
        }
    }

    /// Accumulates `power_w` watts over `dt_s` seconds.
    pub fn accumulate(&mut self, power_w: f64, dt_s: f64) {
        debug_assert!(power_w >= 0.0 && dt_s >= 0.0);
        self.energy_uj += power_w * dt_s * 1e6;
        let range = self.max_energy_range_uj as f64;
        while self.energy_uj >= range {
            self.energy_uj -= range;
        }
    }

    /// Current counter value in µJ, as `energy_uj` would read.
    pub fn energy_uj(&self) -> u64 {
        self.energy_uj as u64
    }

    /// The wrap range, as `max_energy_range_uj` would read.
    pub fn max_energy_range_uj(&self) -> u64 {
        self.max_energy_range_uj
    }
}

/// A node's set of RAPL domains rendered as a powercap-like tree:
///
/// ```text
/// intel-rapl:0/name                -> package-0
/// intel-rapl:0/energy_uj           -> 12345
/// intel-rapl:0/max_energy_range_uj -> 262143328850
/// intel-rapl:0:0/name              -> dram   (Intel only)
/// ```
#[derive(Clone, Debug, Default)]
pub struct RaplZone {
    /// Package domains, one per socket.
    pub packages: Vec<RaplDomain>,
    /// DRAM domains, one per socket (empty on AMD).
    pub dram: Vec<RaplDomain>,
}

impl RaplZone {
    /// Builds domains for a socket count; `with_dram` matches Intel.
    pub fn new(sockets: usize, with_dram: bool) -> RaplZone {
        RaplZone {
            packages: (0..sockets)
                .map(|s| RaplDomain::new(format!("package-{s}")))
                .collect(),
            dram: if with_dram {
                (0..sockets).map(|_| RaplDomain::new("dram")).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Accumulates energy: `cpu_socket_w[i]` into package i, `dram_w` split
    /// evenly across DRAM domains.
    pub fn accumulate(&mut self, cpu_sockets_w: &[f64], dram_w: f64, dt_s: f64) {
        for (dom, &w) in self.packages.iter_mut().zip(cpu_sockets_w) {
            dom.accumulate(w, dt_s);
        }
        let n = self.dram.len().max(1) as f64;
        for dom in self.dram.iter_mut() {
            dom.accumulate(dram_w / n, dt_s);
        }
    }

    /// Total package energy (µJ, pre-wrap semantics not preserved — callers
    /// should treat each domain independently like real collectors do).
    pub fn package_energy_uj(&self) -> u64 {
        self.packages.iter().map(|d| d.energy_uj()).sum()
    }

    /// Renders the powercap file tree under `/sys/class/powercap`.
    /// Returns `(relative_path, content)` pairs.
    pub fn render(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, dom) in self.packages.iter().enumerate() {
            let base = format!("intel-rapl:{i}");
            out.push((format!("{base}/name"), format!("{}\n", dom.name)));
            out.push((
                format!("{base}/energy_uj"),
                format!("{}\n", dom.energy_uj()),
            ));
            out.push((
                format!("{base}/max_energy_range_uj"),
                format!("{}\n", dom.max_energy_range_uj()),
            ));
        }
        for (i, dom) in self.dram.iter().enumerate() {
            let base = format!("intel-rapl:{i}:0");
            out.push((format!("{base}/name"), format!("{}\n", dom.name)));
            out.push((
                format!("{base}/energy_uj"),
                format!("{}\n", dom.energy_uj()),
            ));
            out.push((
                format!("{base}/max_energy_range_uj"),
                format!("{}\n", dom.max_energy_range_uj()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_is_power_times_time() {
        let mut d = RaplDomain::new("package-0");
        d.accumulate(100.0, 2.0); // 200 J
        assert_eq!(d.energy_uj(), 200_000_000);
    }

    #[test]
    fn wraparound() {
        let mut d = RaplDomain::with_range("package-0", 1_000_000); // 1 J range
        d.accumulate(100.0, 0.0095); // 0.95 J
        assert_eq!(d.energy_uj(), 950_000);
        d.accumulate(100.0, 0.001); // +0.1 J -> wraps to 0.05 J
        assert_eq!(d.energy_uj(), 50_000);
    }

    #[test]
    fn wraparound_handles_large_jumps() {
        let mut d = RaplDomain::with_range("p", 1_000);
        d.accumulate(1.0, 10.0); // 10 J over a 1 mJ range: many wraps
        assert!(d.energy_uj() < 1_000);
    }

    #[test]
    fn zone_layout_intel_vs_amd() {
        let intel = RaplZone::new(2, true);
        assert_eq!(intel.packages.len(), 2);
        assert_eq!(intel.dram.len(), 2);
        let amd = RaplZone::new(2, false);
        assert!(amd.dram.is_empty());
    }

    #[test]
    fn render_produces_powercap_tree() {
        let mut z = RaplZone::new(1, true);
        z.accumulate(&[50.0], 10.0, 1.0);
        let files: std::collections::BTreeMap<_, _> = z.render().into_iter().collect();
        assert_eq!(files["intel-rapl:0/name"], "package-0\n");
        assert_eq!(files["intel-rapl:0/energy_uj"], "50000000\n");
        assert_eq!(files["intel-rapl:0:0/name"], "dram\n");
        assert_eq!(files["intel-rapl:0:0/energy_uj"], "10000000\n");
        assert!(files.contains_key("intel-rapl:0/max_energy_range_uj"));
    }

    #[test]
    fn dram_split_across_sockets() {
        let mut z = RaplZone::new(2, true);
        z.accumulate(&[10.0, 10.0], 20.0, 1.0);
        assert_eq!(z.dram[0].energy_uj(), 10_000_000);
        assert_eq!(z.dram[1].energy_uj(), 10_000_000);
    }
}
