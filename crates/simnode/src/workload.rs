//! Synthetic workload profiles.
//!
//! Each running task samples one of these profiles every simulation step to
//! decide how hard it drives CPU, memory, GPU and IO. Profiles are
//! deterministic functions of elapsed time plus bounded RNG noise, so runs
//! are reproducible under a fixed seed.

use rand::Rng;

/// Instantaneous resource demand of a task, all fractions in `[0, 1]`
/// relative to the task's *allocation* (not the node).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Usage {
    /// Fraction of allocated cores busy.
    pub cpu: f64,
    /// Fraction of allocated memory resident.
    pub mem: f64,
    /// GPU SM utilisation (applies to each bound GPU).
    pub gpu: f64,
    /// GPU memory fraction.
    pub gpu_mem: f64,
    /// Read throughput (bytes/s).
    pub io_read_bps: f64,
    /// Write throughput (bytes/s).
    pub io_write_bps: f64,
    /// Network transmit rate (bytes/s) — the eBPF-sourced stat of the
    /// paper's future-work list.
    pub net_tx_bps: f64,
    /// Network receive rate (bytes/s).
    pub net_rx_bps: f64,
}

/// A workload shape.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadProfile {
    /// Dense numerical compute: high steady CPU, moderate memory.
    CpuBound {
        /// Mean CPU fraction (e.g. 0.95).
        intensity: f64,
    },
    /// Bandwidth-bound: moderate CPU, high memory residency and IO.
    MemoryBound {
        /// Resident-set fraction.
        resident: f64,
    },
    /// GPU training loop: low CPU, high GPU with a periodic dip
    /// (checkpoint/dataloader stalls).
    GpuTraining {
        /// Mean GPU utilisation.
        intensity: f64,
        /// Seconds between stalls.
        period_s: f64,
    },
    /// CPU bursts alternating with idle (interactive / staged pipelines).
    Bursty {
        /// Cycle length in seconds.
        period_s: f64,
        /// Fraction of the cycle spent busy.
        duty: f64,
    },
    /// Near-idle allocation (the inefficient jobs operators hunt with CEEMS).
    Idle,
}

impl WorkloadProfile {
    /// Samples demand at `t_s` seconds since the task started.
    pub fn sample<R: Rng>(&self, t_s: f64, rng: &mut R) -> Usage {
        let jitter = |rng: &mut R, base: f64, amp: f64| -> f64 {
            (base + rng.gen_range(-amp..=amp)).clamp(0.0, 1.0)
        };
        match *self {
            WorkloadProfile::CpuBound { intensity } => Usage {
                cpu: jitter(rng, intensity, 0.04),
                mem: jitter(rng, 0.4, 0.02),
                gpu: 0.0,
                gpu_mem: 0.0,
                io_read_bps: 1e5,
                io_write_bps: 5e4,
                // MPI-style halo exchanges.
                net_tx_bps: 2e7,
                net_rx_bps: 2e7,
            },
            WorkloadProfile::MemoryBound { resident } => Usage {
                cpu: jitter(rng, 0.45, 0.05),
                mem: jitter(rng, resident, 0.03),
                gpu: 0.0,
                gpu_mem: 0.0,
                io_read_bps: 5e7,
                io_write_bps: 2e7,
                net_tx_bps: 5e6,
                net_rx_bps: 5e6,
            },
            WorkloadProfile::GpuTraining { intensity, period_s } => {
                // Dip to ~20% utilisation for 5% of each period.
                let phase = (t_s / period_s.max(1.0)).fract();
                let stalled = phase > 0.95;
                Usage {
                    cpu: jitter(rng, 0.15, 0.03),
                    mem: jitter(rng, 0.5, 0.02),
                    gpu: if stalled {
                        jitter(rng, 0.2, 0.05)
                    } else {
                        jitter(rng, intensity, 0.05)
                    },
                    gpu_mem: jitter(rng, 0.8, 0.02),
                    io_read_bps: 2e7,
                    io_write_bps: 1e6,
                    // Dataset streaming dominates receive traffic.
                    net_tx_bps: 1e6,
                    net_rx_bps: 8e7,
                }
            }
            WorkloadProfile::Bursty { period_s, duty } => {
                let phase = (t_s / period_s.max(1.0)).fract();
                let busy = phase < duty;
                Usage {
                    cpu: if busy {
                        jitter(rng, 0.9, 0.05)
                    } else {
                        jitter(rng, 0.03, 0.02)
                    },
                    mem: jitter(rng, 0.3, 0.02),
                    gpu: 0.0,
                    gpu_mem: 0.0,
                    io_read_bps: if busy { 1e6 } else { 1e3 },
                    io_write_bps: if busy { 1e6 } else { 1e3 },
                    net_tx_bps: if busy { 5e6 } else { 1e3 },
                    net_rx_bps: if busy { 5e6 } else { 1e3 },
                }
            }
            WorkloadProfile::Idle => Usage {
                cpu: jitter(rng, 0.02, 0.01),
                mem: jitter(rng, 0.1, 0.01),
                gpu: 0.0,
                gpu_mem: 0.0,
                io_read_bps: 1e3,
                io_write_bps: 1e3,
                net_tx_bps: 1e3,
                net_rx_bps: 1e3,
            },
        }
    }

    /// A short machine-readable name (stored in accounting).
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadProfile::CpuBound { .. } => "cpu_bound",
            WorkloadProfile::MemoryBound { .. } => "memory_bound",
            WorkloadProfile::GpuTraining { .. } => "gpu_training",
            WorkloadProfile::Bursty { .. } => "bursty",
            WorkloadProfile::Idle => "idle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_cpu(profile: &WorkloadProfile, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 500;
        (0..n)
            .map(|i| profile.sample(i as f64, &mut rng).cpu)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn cpu_bound_is_hot_idle_is_cold() {
        let hot = mean_cpu(&WorkloadProfile::CpuBound { intensity: 0.95 }, 1);
        let cold = mean_cpu(&WorkloadProfile::Idle, 1);
        assert!(hot > 0.85, "hot={hot}");
        assert!(cold < 0.1, "cold={cold}");
    }

    #[test]
    fn bursty_duty_cycle_respected() {
        let mean = mean_cpu(
            &WorkloadProfile::Bursty {
                period_s: 100.0,
                duty: 0.3,
            },
            2,
        );
        // ~0.3*0.9 + 0.7*0.03 ≈ 0.29
        assert!((mean - 0.29).abs() < 0.08, "mean={mean}");
    }

    #[test]
    fn gpu_training_drives_gpu_not_cpu() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = WorkloadProfile::GpuTraining {
            intensity: 0.9,
            period_s: 600.0,
        };
        let u = p.sample(10.0, &mut rng);
        assert!(u.gpu > 0.8);
        assert!(u.cpu < 0.3);
        assert!(u.gpu_mem > 0.7);
        // During the stall window utilisation dips.
        let stall = p.sample(0.96 * 600.0, &mut rng);
        assert!(stall.gpu < 0.4);
    }

    #[test]
    fn all_fractions_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for p in [
            WorkloadProfile::CpuBound { intensity: 0.99 },
            WorkloadProfile::MemoryBound { resident: 0.95 },
            WorkloadProfile::GpuTraining {
                intensity: 0.95,
                period_s: 60.0,
            },
            WorkloadProfile::Bursty {
                period_s: 10.0,
                duty: 0.5,
            },
            WorkloadProfile::Idle,
        ] {
            for t in 0..200 {
                let u = p.sample(t as f64 * 0.7, &mut rng);
                for v in [u.cpu, u.mem, u.gpu, u.gpu_mem] {
                    assert!((0.0..=1.0).contains(&v), "{p:?} out of range: {v}");
                }
                assert!(u.io_read_bps >= 0.0 && u.io_write_bps >= 0.0);
            }
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds: std::collections::BTreeSet<_> = [
            WorkloadProfile::CpuBound { intensity: 0.5 }.kind(),
            WorkloadProfile::MemoryBound { resident: 0.5 }.kind(),
            WorkloadProfile::GpuTraining {
                intensity: 0.5,
                period_s: 1.0,
            }
            .kind(),
            WorkloadProfile::Bursty {
                period_s: 1.0,
                duty: 0.5,
            }
            .kind(),
            WorkloadProfile::Idle.kind(),
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds.len(), 5);
    }
}
