//! Job-arrival generator.
//!
//! The paper's abstract highlights Jean-Zay's daily job churn as the load
//! CEEMS must sustain. This generator produces a realistic mix: a
//! population of users across projects, exponential inter-arrival times
//! with a diurnal modulation, and job shapes skewed toward small short jobs
//! with a tail of large long ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ceems_simnode::workload::WorkloadProfile;

use crate::types::JobRequest;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Number of distinct users.
    pub users: usize,
    /// Number of projects users are spread over.
    pub projects: usize,
    /// Mean job arrivals per simulated hour (before diurnal modulation).
    pub mean_arrivals_per_hour: f64,
    /// Partitions to target with relative weights.
    pub partitions: Vec<(String, f64)>,
    /// Fraction of jobs that are GPU jobs when targeting a GPU partition.
    pub gpu_fraction: f64,
}

impl ChurnConfig {
    /// A small default for tests.
    pub fn small(partitions: Vec<(String, f64)>) -> ChurnConfig {
        ChurnConfig {
            users: 10,
            projects: 3,
            mean_arrivals_per_hour: 60.0,
            partitions,
            gpu_fraction: 0.5,
        }
    }
}

/// Generates submissions over simulated time.
pub struct ChurnGenerator {
    cfg: ChurnConfig,
    rng: StdRng,
    next_arrival_ms: i64,
    generated: u64,
}

impl ChurnGenerator {
    /// Creates a generator.
    pub fn new(cfg: ChurnConfig, seed: u64) -> ChurnGenerator {
        assert!(!cfg.partitions.is_empty(), "need at least one partition");
        let mut g = ChurnGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            next_arrival_ms: 0,
            generated: 0,
        };
        g.next_arrival_ms = g.draw_gap(0);
        g
    }

    /// Total jobs generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Returns all submissions that arrive in `(prev, now_ms]`.
    pub fn poll(&mut self, now_ms: i64) -> Vec<JobRequest> {
        let mut out = Vec::new();
        while self.next_arrival_ms <= now_ms {
            let at = self.next_arrival_ms;
            out.push(self.draw_job());
            self.next_arrival_ms = at + self.draw_gap(at);
        }
        out
    }

    /// Exponential inter-arrival gap, modulated by a diurnal cycle
    /// (arrival rate peaks mid-day at ~1.5×, bottoms out at night ~0.5×).
    fn draw_gap(&mut self, now_ms: i64) -> i64 {
        let hour_of_day = (now_ms as f64 / 3.6e6) % 24.0;
        let diurnal = 1.0 + 0.5 * (std::f64::consts::TAU * (hour_of_day - 14.0) / 24.0).cos();
        let rate_per_ms = self.cfg.mean_arrivals_per_hour * diurnal / 3.6e6;
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        ((-u.ln() / rate_per_ms) as i64).max(1)
    }

    fn draw_job(&mut self) -> JobRequest {
        self.generated += 1;
        let user_id = self.rng.gen_range(0..self.cfg.users);
        let project_id = user_id % self.cfg.projects;

        // Pick a partition by weight.
        let total_w: f64 = self.cfg.partitions.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.gen_range(0.0..total_w);
        let mut partition = self.cfg.partitions[0].0.clone();
        for (name, w) in &self.cfg.partitions {
            if pick < *w {
                partition = name.clone();
                break;
            }
            pick -= w;
        }
        let is_gpu_part = partition.contains("gpu")
            || partition.contains("v100")
            || partition.contains("a100")
            || partition.contains("h100");

        // Job-size distribution: 70% single-node small, 25% medium, 5%
        // multi-node large.
        let shape: f64 = self.rng.gen();
        let (nodes, cores, mem_gb) = if shape < 0.70 {
            (1, self.rng.gen_range(1..=8), self.rng.gen_range(2..=16))
        } else if shape < 0.95 {
            (1, self.rng.gen_range(8..=32), self.rng.gen_range(16..=64))
        } else {
            (
                self.rng.gen_range(2..=4),
                self.rng.gen_range(16..=40),
                self.rng.gen_range(32..=128),
            )
        };
        let gpus = if is_gpu_part && self.rng.gen::<f64>() < self.cfg.gpu_fraction {
            self.rng.gen_range(1..=4)
        } else {
            0
        };

        // Walltime: log-uniform 10 min .. 20 h.
        let log_min = (600.0f64).ln();
        let log_max = (72_000.0f64).ln();
        let walltime_s = self.rng.gen_range(log_min..log_max).exp() as u64;

        let workload = match self.rng.gen_range(0..10) {
            0..=3 => WorkloadProfile::CpuBound {
                intensity: self.rng.gen_range(0.7..0.99),
            },
            4..=5 => WorkloadProfile::MemoryBound {
                resident: self.rng.gen_range(0.5..0.95),
            },
            6..=7 if gpus > 0 => WorkloadProfile::GpuTraining {
                intensity: self.rng.gen_range(0.7..0.98),
                period_s: self.rng.gen_range(120.0..1200.0),
            },
            6..=7 => WorkloadProfile::Bursty {
                period_s: self.rng.gen_range(30.0..600.0),
                duty: self.rng.gen_range(0.2..0.8),
            },
            8 => WorkloadProfile::Bursty {
                period_s: self.rng.gen_range(30.0..600.0),
                duty: self.rng.gen_range(0.2..0.8),
            },
            _ => WorkloadProfile::Idle,
        };

        JobRequest {
            user: format!("user{:03}", user_id),
            account: format!("proj{:02}", project_id),
            partition,
            nodes,
            cores_per_node: cores,
            memory_per_node: (mem_gb as u64) << 30,
            gpus_per_node: gpus,
            walltime_s,
            workload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig::small(vec![("cpu".into(), 3.0), ("gpu".into(), 1.0)])
    }

    #[test]
    fn arrival_rate_roughly_matches() {
        let mut g = ChurnGenerator::new(cfg(), 11);
        // 10 simulated hours at 60/h, diurnal-modulated: expect hundreds.
        let jobs = g.poll(10 * 3_600_000);
        let n = jobs.len() as f64;
        assert!(n > 300.0 && n < 1200.0, "n={n}");
        assert_eq!(g.generated() as usize, jobs.len());
    }

    #[test]
    fn poll_is_incremental() {
        let mut g = ChurnGenerator::new(cfg(), 12);
        let first = g.poll(3_600_000).len();
        let second = g.poll(7_200_000).len();
        assert!(first > 0 && second > 0);
        // Re-polling the same instant yields nothing new.
        assert_eq!(g.poll(7_200_000).len(), 0);
    }

    #[test]
    fn job_shapes_valid() {
        let mut g = ChurnGenerator::new(cfg(), 13);
        for req in g.poll(24 * 3_600_000) {
            assert!(req.nodes >= 1 && req.nodes <= 4);
            assert!(req.cores_per_node >= 1 && req.cores_per_node <= 40);
            assert!(req.walltime_s >= 600 && req.walltime_s <= 72_000);
            assert!(req.user.starts_with("user"));
            assert!(req.account.starts_with("proj"));
            assert!(req.partition == "cpu" || req.partition == "gpu");
            if req.gpus_per_node > 0 {
                assert_eq!(req.partition, "gpu");
            }
        }
    }

    #[test]
    fn gpu_jobs_only_on_gpu_partitions() {
        let mut g = ChurnGenerator::new(
            ChurnConfig {
                gpu_fraction: 1.0,
                ..cfg()
            },
            14,
        );
        let jobs = g.poll(24 * 3_600_000);
        let gpu_jobs: Vec<_> = jobs.iter().filter(|j| j.gpus_per_node > 0).collect();
        assert!(!gpu_jobs.is_empty());
        assert!(gpu_jobs.iter().all(|j| j.partition == "gpu"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<String> = ChurnGenerator::new(cfg(), 9)
            .poll(3_600_000)
            .iter()
            .map(|j| format!("{}/{}/{}", j.user, j.partition, j.cores_per_node))
            .collect();
        let b: Vec<String> = ChurnGenerator::new(cfg(), 9)
            .poll(3_600_000)
            .iter()
            .map(|j| format!("{}/{}/{}", j.user, j.partition, j.cores_per_node))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partitions_rejected() {
        ChurnGenerator::new(ChurnConfig::small(vec![]), 1);
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn arrivals_follow_the_diurnal_cycle() {
        // The generator peaks mid-afternoon and bottoms out at night; count
        // arrivals in the 02:00-04:00 and 13:00-15:00 windows across 20
        // simulated days.
        let mut g = ChurnGenerator::new(
            ChurnConfig::small(vec![("cpu".into(), 1.0)]),
            77,
        );
        let mut night = 0usize;
        let mut afternoon = 0usize;
        let day_ms = 24 * 3_600_000i64;
        let mut last = 0i64;
        for day in 0..20 {
            for (start_h, end_h, bucket) in [(2i64, 4i64, 0usize), (13, 15, 1)] {
                let from = day * day_ms + start_h * 3_600_000;
                let to = day * day_ms + end_h * 3_600_000;
                // Drain up to `from` without counting, then count to `to`.
                if from > last {
                    g.poll(from);
                }
                let n = g.poll(to).len();
                if bucket == 0 {
                    night += n;
                } else {
                    afternoon += n;
                }
                last = to;
            }
        }
        assert!(
            afternoon as f64 > 1.5 * night as f64,
            "afternoon={afternoon} night={night}"
        );
    }
}
