//! Accounting database — the `slurmdbd` stand-in the CEEMS API server
//! polls.
//!
//! Every job is recorded at submit and updated at start/finish, with a
//! last-update watermark so pollers can fetch incrementally ("give me every
//! unit that changed since T"), which is exactly how the CEEMS API server
//! keeps its SQLite copy fresh.

use std::collections::BTreeMap;

use ceems_simnode::workload::WorkloadProfile;

use crate::types::{JobPlacement, JobRecord, JobState};

/// The accounting database.
#[derive(Default)]
pub struct SlurmDbd {
    records: BTreeMap<u64, JobRecord>,
    workloads: BTreeMap<u64, WorkloadProfile>,
    updated_ms: BTreeMap<u64, i64>,
}

impl SlurmDbd {
    /// Empty database.
    pub fn new() -> SlurmDbd {
        SlurmDbd::default()
    }

    /// Records a submitted job.
    pub fn record(&mut self, record: JobRecord, workload: WorkloadProfile) {
        let id = record.id;
        let t = record.submitted_ms;
        self.records.insert(id, record);
        self.workloads.insert(id, workload);
        self.updated_ms.insert(id, t);
    }

    /// Marks a job started with its placements.
    pub fn start(&mut self, id: u64, now_ms: i64, placements: Vec<JobPlacement>) {
        if let Some(rec) = self.records.get_mut(&id) {
            rec.state = JobState::Running;
            rec.started_ms = Some(now_ms);
            rec.placements = placements;
            self.updated_ms.insert(id, now_ms);
        }
    }

    /// Marks a job terminal.
    pub fn finish(&mut self, id: u64, state: JobState, now_ms: i64) {
        if let Some(rec) = self.records.get_mut(&id) {
            rec.state = state;
            rec.ended_ms = Some(now_ms);
            self.updated_ms.insert(id, now_ms);
        }
    }

    /// Point lookup.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.records.get(&id)
    }

    /// The workload profile a job was submitted with.
    pub fn workload_of(&self, id: u64) -> Option<WorkloadProfile> {
        self.workloads.get(&id).cloned()
    }

    /// All records (sacct with no filters).
    pub fn all(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.values()
    }

    /// The incremental poll the CEEMS API server issues: records updated at
    /// or after `since_ms`, plus every non-terminal record (pending and
    /// running units keep changing — their elapsed time and aggregates must
    /// refresh on every poll even without a state transition).
    pub fn jobs_since(&self, since_ms: i64) -> Vec<JobRecord> {
        self.records
            .values()
            .filter(|r| {
                !r.state.is_terminal()
                    || self.updated_ms.get(&r.id).copied().unwrap_or(i64::MIN) >= since_ms
            })
            .cloned()
            .collect()
    }

    /// `sacct -u <user>`-style listing.
    pub fn jobs_of_user(&self, user: &str) -> Vec<JobRecord> {
        self.records
            .values()
            .filter(|r| r.user == user)
            .cloned()
            .collect()
    }

    /// Job count by state (queue health metrics).
    pub fn count_by_state(&self) -> BTreeMap<JobState, usize> {
        let mut out = BTreeMap::new();
        for r in self.records.values() {
            *out.entry(r.state).or_insert(0) += 1;
        }
        out
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no job was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

// JobState as BTreeMap key needs Ord.
impl Ord for JobState {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

impl PartialOrd for JobState {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::job_uuid;

    fn rec(id: u64, user: &str, t: i64) -> JobRecord {
        JobRecord {
            id,
            uuid: job_uuid(id),
            user: user.into(),
            account: "p".into(),
            partition: "cpu".into(),
            state: JobState::Pending,
            submitted_ms: t,
            started_ms: None,
            ended_ms: None,
            placements: vec![],
            nodes: 1,
            cores_per_node: 1,
            memory_per_node: 1 << 30,
            gpus_per_node: 0,
            walltime_s: 60,
            workload_kind: "idle",
        }
    }

    #[test]
    fn lifecycle_updates_watermark() {
        let mut dbd = SlurmDbd::new();
        dbd.record(rec(1, "alice", 100), WorkloadProfile::Idle);
        dbd.record(rec(2, "bob", 200), WorkloadProfile::Idle);

        // Non-terminal records always poll (their aggregates keep moving).
        assert_eq!(dbd.jobs_since(150).len(), 2);
        dbd.start(1, 300, vec![]);
        dbd.finish(1, JobState::Completed, 400);
        let r = dbd.get(1).unwrap();
        assert_eq!(r.state, JobState::Completed);
        assert_eq!(r.ended_ms, Some(400));
        // Terminal records respect the watermark: job 1 finished at 400 so
        // it shows at since=350 but not since=450; job 2 is still pending.
        assert_eq!(dbd.jobs_since(350).len(), 2);
        let later = dbd.jobs_since(450);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].id, 2);
    }

    #[test]
    fn user_listing_and_counts() {
        let mut dbd = SlurmDbd::new();
        for (id, user) in [(1, "alice"), (2, "alice"), (3, "bob")] {
            dbd.record(rec(id, user, 0), WorkloadProfile::Idle);
        }
        dbd.finish(2, JobState::Failed, 10);
        assert_eq!(dbd.jobs_of_user("alice").len(), 2);
        assert_eq!(dbd.jobs_of_user("nobody").len(), 0);
        let counts = dbd.count_by_state();
        assert_eq!(counts[&JobState::Pending], 2);
        assert_eq!(counts[&JobState::Failed], 1);
        assert_eq!(dbd.len(), 3);
    }

    #[test]
    fn workload_retained() {
        let mut dbd = SlurmDbd::new();
        dbd.record(
            rec(5, "u", 0),
            WorkloadProfile::CpuBound { intensity: 0.5 },
        );
        assert_eq!(
            dbd.workload_of(5),
            Some(WorkloadProfile::CpuBound { intensity: 0.5 })
        );
        assert_eq!(dbd.workload_of(6), None);
    }
}
