#![warn(missing_docs)]
//! SLURM-like batch scheduler simulation (S9 in `DESIGN.md`).
//!
//! CEEMS is resource-manager agnostic but its reference deployment runs
//! against SLURM: the API server polls `slurmdbd` for the list of compute
//! units, and compute nodes carry one cgroup per job. This crate simulates
//! that contract:
//!
//! * [`types`] — users, accounts (projects), partitions, job states and
//!   records.
//! * [`sched`] — a FIFO + backfill scheduler that places jobs on
//!   [`ceems_simnode`] nodes (creating their cgroups and binding GPUs) and
//!   retires them when their runtime elapses.
//! * [`dbd`] — the accounting database (`slurmdbd` stand-in) the CEEMS API
//!   server polls.
//! * [`churn`] — a job-arrival generator reproducing the daily churn the
//!   paper reports on Jean-Zay.

pub mod churn;
pub mod dbd;
pub mod sched;
pub mod types;

pub use churn::ChurnGenerator;
pub use dbd::SlurmDbd;
pub use sched::Scheduler;
pub use types::{JobRecord, JobRequest, JobState, Partition};
