//! FIFO + backfill scheduler over simulated nodes.
//!
//! Matches what CEEMS observes of SLURM: jobs appear in accounting at
//! submit, acquire placements (and cgroups on their nodes) at start, and
//! reach a terminal state when they finish, fail or time out. The actual
//! runtime of each job is drawn at submit time so the simulation can retire
//! jobs deterministically.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ceems_simnode::node::TaskSpec;

use crate::dbd::SlurmDbd;
use crate::types::{job_uuid, JobPlacement, JobRecord, JobRequest, JobState, Partition};

struct RunningJob {
    /// Hostnames holding this job's tasks.
    hostnames: Vec<String>,
    /// When the job will retire (simulated ms).
    finish_at_ms: i64,
    /// Terminal state it will retire into.
    final_state: JobState,
}

/// The scheduler.
pub struct Scheduler {
    partitions: BTreeMap<String, Partition>,
    pending: Vec<u64>,
    running: BTreeMap<u64, RunningJob>,
    dbd: SlurmDbd,
    next_id: u64,
    rng: StdRng,
    backfill_depth: usize,
}

/// Submission error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Unknown partition name.
    NoSuchPartition(String),
    /// Request exceeds the partition walltime cap.
    WalltimeExceeded,
    /// Request cannot ever fit on any node of the partition.
    Unsatisfiable,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            SubmitError::WalltimeExceeded => write!(f, "walltime exceeds partition limit"),
            SubmitError::Unsatisfiable => write!(f, "request can never fit in partition"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl Scheduler {
    /// Creates a scheduler over the given partitions.
    pub fn new(partitions: Vec<Partition>, seed: u64) -> Scheduler {
        Scheduler {
            partitions: partitions
                .into_iter()
                .map(|p| (p.name.clone(), p))
                .collect(),
            pending: Vec::new(),
            running: BTreeMap::new(),
            dbd: SlurmDbd::new(),
            next_id: 1,
            rng: StdRng::seed_from_u64(seed),
            backfill_depth: 64,
        }
    }

    /// The accounting database (what the CEEMS API server polls).
    pub fn dbd(&self) -> &SlurmDbd {
        &self.dbd
    }

    /// Partition names.
    pub fn partition_names(&self) -> Vec<String> {
        self.partitions.keys().cloned().collect()
    }

    /// Queue depth.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Running job count.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Submits a job; it enters accounting immediately as PENDING.
    pub fn submit(&mut self, req: JobRequest, now_ms: i64) -> Result<u64, SubmitError> {
        let part = self
            .partitions
            .get(&req.partition)
            .ok_or_else(|| SubmitError::NoSuchPartition(req.partition.clone()))?;
        if req.walltime_s > part.max_walltime_s {
            return Err(SubmitError::WalltimeExceeded);
        }
        // Reject requests no node of the partition could ever satisfy.
        let fits_somewhere = part.nodes.len() >= req.nodes
            && part.nodes.iter().any(|n| {
                let n = n.lock();
                n.total_cores() >= req.cores_per_node
                    && n.total_memory() >= req.memory_per_node
                    && n.gpu_count() >= req.gpus_per_node
            });
        if !fits_somewhere {
            return Err(SubmitError::Unsatisfiable);
        }

        let id = self.next_id;
        self.next_id += 1;
        let record = JobRecord {
            id,
            uuid: job_uuid(id),
            user: req.user.clone(),
            account: req.account.clone(),
            partition: req.partition.clone(),
            state: JobState::Pending,
            submitted_ms: now_ms,
            started_ms: None,
            ended_ms: None,
            placements: Vec::new(),
            nodes: req.nodes,
            cores_per_node: req.cores_per_node,
            memory_per_node: req.memory_per_node,
            gpus_per_node: req.gpus_per_node,
            walltime_s: req.walltime_s,
            workload_kind: req.workload.kind(),
        };
        self.dbd.record(record, req.workload);
        self.pending.push(id);
        Ok(id)
    }

    /// One scheduling pass at `now_ms`: retire finished jobs, then try to
    /// start pending ones (FIFO order, with backfill over the next
    /// `backfill_depth` queued jobs when the head does not fit).
    pub fn tick(&mut self, now_ms: i64) {
        self.retire_finished(now_ms);
        self.start_pending(now_ms);
    }

    fn retire_finished(&mut self, now_ms: i64) {
        let done: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, r)| r.finish_at_ms <= now_ms)
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            let r = self.running.remove(&id).unwrap();
            for hostname in &r.hostnames {
                if let Some(part) = self.partition_of_job(id) {
                    if let Some(node) = part.nodes.iter().find(|n| n.lock().hostname() == hostname)
                    {
                        node.lock().remove_task(id);
                    }
                }
            }
            self.dbd.finish(id, r.final_state, r.finish_at_ms);
        }
    }

    fn partition_of_job(&self, id: u64) -> Option<&Partition> {
        let rec = self.dbd.get(id)?;
        self.partitions.get(&rec.partition)
    }

    fn start_pending(&mut self, now_ms: i64) {
        let mut started: Vec<usize> = Vec::new();
        let depth = self.backfill_depth.min(self.pending.len());
        for qi in 0..depth {
            let id = self.pending[qi];
            if self.try_start(id, now_ms) {
                started.push(qi);
            }
            // FIFO head blocked → keep scanning (simple backfill): smaller
            // jobs behind it may still fit without delaying it, because
            // placements are re-evaluated every tick.
        }
        for &qi in started.iter().rev() {
            self.pending.remove(qi);
        }
    }

    fn try_start(&mut self, id: u64, now_ms: i64) -> bool {
        let Some(rec) = self.dbd.get(id).cloned() else {
            return true; // vanished record: drop from queue
        };
        let workload = self.dbd.workload_of(id).expect("workload stored at submit");
        let Some(part) = self.partitions.get(&rec.partition) else {
            return true;
        };

        // Find `rec.nodes` nodes with capacity.
        let mut chosen = Vec::with_capacity(rec.nodes);
        for node in &part.nodes {
            let n = node.lock();
            if n.free_cores() >= rec.cores_per_node
                && n.free_memory() >= rec.memory_per_node
                && n.free_gpus().len() >= rec.gpus_per_node
            {
                chosen.push(node.clone());
                if chosen.len() == rec.nodes {
                    break;
                }
            }
        }
        if chosen.len() < rec.nodes {
            return false;
        }

        // Place a task on every chosen node.
        let mut placements = Vec::with_capacity(chosen.len());
        for node in &chosen {
            let mut n = node.lock();
            let task = TaskSpec {
                id,
                cores: rec.cores_per_node,
                memory_bytes: rec.memory_per_node,
                gpus: rec.gpus_per_node,
                workload: workload.clone(),
            };
            n.add_task(task, now_ms)
                .expect("capacity checked under the same lock epoch");
            placements.push(JobPlacement {
                hostname: n.hostname().to_string(),
                gpu_ordinals: n.task_gpu_ordinals(id).unwrap_or_default(),
            });
        }

        // Draw the outcome now: most jobs complete early, some fail fast,
        // a few hit their walltime.
        let roll: f64 = self.rng.gen();
        let walltime_ms = rec.walltime_s as i64 * 1000;
        let (final_state, runtime_ms) = if roll < 0.05 {
            (
                JobState::Failed,
                (walltime_ms as f64 * self.rng.gen_range(0.01..0.3)) as i64,
            )
        } else if roll < 0.08 {
            (
                JobState::Cancelled,
                (walltime_ms as f64 * self.rng.gen_range(0.05..0.8)) as i64,
            )
        } else if roll < 0.15 {
            (JobState::Timeout, walltime_ms)
        } else {
            (
                JobState::Completed,
                (walltime_ms as f64 * self.rng.gen_range(0.4..0.98)) as i64,
            )
        };

        let hostnames = placements.iter().map(|p| p.hostname.clone()).collect();
        self.running.insert(
            id,
            RunningJob {
                hostnames,
                finish_at_ms: now_ms + runtime_ms.max(1000),
                final_state,
            },
        );
        self.dbd.start(id, now_ms, placements);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::{ClusterSpec, SimClock, SimCluster, WorkloadProfile};

    fn setup() -> (SimCluster, Scheduler) {
        let cluster = SimCluster::build(&ClusterSpec::small(), SimClock::new(), 3);
        let cpu_nodes: Vec<_> = cluster
            .nodes()
            .iter()
            .filter(|n| n.lock().hostname().contains("intel"))
            .cloned()
            .collect();
        let gpu_nodes: Vec<_> = cluster
            .nodes()
            .iter()
            .filter(|n| n.lock().gpu_count() > 0)
            .cloned()
            .collect();
        let sched = Scheduler::new(
            vec![
                Partition::new("cpu", cpu_nodes, 72 * 3600),
                Partition::new("gpu", gpu_nodes, 20 * 3600),
            ],
            7,
        );
        (cluster, sched)
    }

    fn cpu_req(user: &str, cores: usize) -> JobRequest {
        JobRequest {
            user: user.into(),
            account: "proj".into(),
            partition: "cpu".into(),
            nodes: 1,
            cores_per_node: cores,
            memory_per_node: 8 << 30,
            gpus_per_node: 0,
            walltime_s: 3600,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        }
    }

    #[test]
    fn submit_validates() {
        let (_c, mut s) = setup();
        assert!(matches!(
            s.submit(
                JobRequest {
                    partition: "nope".into(),
                    ..cpu_req("a", 1)
                },
                0
            ),
            Err(SubmitError::NoSuchPartition(_))
        ));
        assert!(matches!(
            s.submit(
                JobRequest {
                    walltime_s: 100 * 3600,
                    ..cpu_req("a", 1)
                },
                0
            ),
            Err(SubmitError::WalltimeExceeded)
        ));
        assert!(matches!(
            s.submit(cpu_req("a", 10_000), 0),
            Err(SubmitError::Unsatisfiable)
        ));
        let id = s.submit(cpu_req("a", 4), 0).unwrap();
        assert_eq!(id, 1);
        assert_eq!(s.dbd().get(1).unwrap().state, JobState::Pending);
    }

    #[test]
    fn jobs_start_run_and_retire() {
        let (cluster, mut s) = setup();
        let id = s.submit(cpu_req("alice", 8), 0).unwrap();
        s.tick(0);
        assert_eq!(s.dbd().get(id).unwrap().state, JobState::Running);
        assert_eq!(s.running_count(), 1);
        assert_eq!(s.dbd().get(id).unwrap().placements.len(), 1);

        // The node actually carries the task's cgroup.
        let host = s.dbd().get(id).unwrap().placements[0].hostname.clone();
        let node = cluster.node_by_hostname(&host).unwrap();
        assert!(node.lock().task_ids().contains(&id));

        // Run the clock past the walltime: the job must retire.
        let mut now = 0;
        while !s.dbd().get(id).unwrap().state.is_terminal() && now < 4_000_000 {
            now += 60_000;
            s.tick(now);
        }
        let rec = s.dbd().get(id).unwrap();
        assert!(rec.state.is_terminal(), "state={:?}", rec.state);
        assert!(rec.ended_ms.is_some());
        assert!(node.lock().task_ids().is_empty());
    }

    #[test]
    fn backfill_starts_small_jobs_behind_blocked_head() {
        let (_c, mut s) = setup();
        // Fill the cpu partition (4 intel nodes × 40 cores).
        for _ in 0..4 {
            s.submit(cpu_req("big", 40), 0).unwrap();
        }
        s.tick(0);
        assert_eq!(s.running_count(), 4);
        // Head of queue needs a full node — blocked. A 1-core job behind it
        // must still not start (nodes are full)... so free one node's worth:
        let blocked = s.submit(cpu_req("blocked", 40), 1).unwrap();
        let small = s.submit(cpu_req("small", 0), 1).unwrap(); // 0-core fits anywhere
        s.tick(1);
        assert_eq!(s.dbd().get(blocked).unwrap().state, JobState::Pending);
        assert_eq!(s.dbd().get(small).unwrap().state, JobState::Running);
    }

    #[test]
    fn gpu_jobs_get_ordinals() {
        let (_c, mut s) = setup();
        let id = s
            .submit(
                JobRequest {
                    user: "gu".into(),
                    account: "proj".into(),
                    partition: "gpu".into(),
                    nodes: 1,
                    cores_per_node: 4,
                    memory_per_node: 32 << 30,
                    gpus_per_node: 2,
                    walltime_s: 3600,
                    workload: WorkloadProfile::GpuTraining {
                        intensity: 0.9,
                        period_s: 300.0,
                    },
                },
                0,
            )
            .unwrap();
        s.tick(0);
        let rec = s.dbd().get(id).unwrap();
        assert_eq!(rec.state, JobState::Running);
        assert_eq!(rec.placements[0].gpu_ordinals.len(), 2);
    }

    #[test]
    fn multi_node_jobs_place_on_distinct_nodes() {
        let (_c, mut s) = setup();
        let id = s
            .submit(
                JobRequest {
                    nodes: 3,
                    ..cpu_req("mpi", 40)
                },
                0,
            )
            .unwrap();
        s.tick(0);
        let rec = s.dbd().get(id).unwrap();
        assert_eq!(rec.placements.len(), 3);
        let hosts: std::collections::BTreeSet<_> =
            rec.placements.iter().map(|p| p.hostname.clone()).collect();
        assert_eq!(hosts.len(), 3);
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use ceems_simnode::{ClusterSpec, SimClock, SimCluster, WorkloadProfile};

    fn sched_with_cluster() -> (SimCluster, Scheduler) {
        let cluster = SimCluster::build(&ClusterSpec::small(), SimClock::new(), 5);
        let all: Vec<_> = cluster.nodes().to_vec();
        let sched = Scheduler::new(vec![Partition::new("all", all, 24 * 3600)], 123);
        (cluster, sched)
    }

    #[test]
    fn terminal_states_distribute_plausibly() {
        // Submit many short jobs and run them to completion: the outcome
        // mix must include completions and a minority of failures, and
        // every retired job must have a consistent record.
        let (_c, mut s) = sched_with_cluster();
        for i in 0..60u64 {
            s.submit(
                JobRequest {
                    user: format!("u{}", i % 7),
                    account: "p".into(),
                    partition: "all".into(),
                    nodes: 1,
                    cores_per_node: 2,
                    memory_per_node: 2 << 30,
                    gpus_per_node: 0,
                    walltime_s: 600,
                    workload: WorkloadProfile::Idle,
                },
                0,
            )
            .unwrap();
        }
        let mut now = 0;
        while s.running_count() > 0 || s.pending_count() > 0 {
            now += 30_000;
            s.tick(now);
            assert!(now < 7_200_000, "jobs wedged");
        }
        let counts = s.dbd().count_by_state();
        let completed = counts.get(&JobState::Completed).copied().unwrap_or(0);
        let failed = counts.get(&JobState::Failed).copied().unwrap_or(0)
            + counts.get(&JobState::Cancelled).copied().unwrap_or(0)
            + counts.get(&JobState::Timeout).copied().unwrap_or(0);
        assert_eq!(completed + failed, 60);
        assert!(completed > 40, "completed={completed}");
        assert!(failed > 0, "no failures in 60 jobs is implausible");
        for rec in s.dbd().all() {
            assert!(rec.state.is_terminal());
            let start = rec.started_ms.unwrap();
            let end = rec.ended_ms.unwrap();
            assert!(end > start);
            // No retired job exceeded its walltime (+1 tick slack).
            assert!(end - start <= 600_000 + 30_000, "{:?}", rec);
        }
    }

    #[test]
    fn queue_drains_in_fifo_order_when_capacity_allows() {
        let (_c, mut s) = sched_with_cluster();
        let ids: Vec<u64> = (0..5)
            .map(|i| {
                s.submit(
                    JobRequest {
                        user: format!("u{i}"),
                        account: "p".into(),
                        partition: "all".into(),
                        nodes: 1,
                        cores_per_node: 1,
                        memory_per_node: 1 << 30,
                        gpus_per_node: 0,
                        walltime_s: 3600,
                        workload: WorkloadProfile::Idle,
                    },
                    i,
                )
                .unwrap()
            })
            .collect();
        s.tick(10);
        for id in ids {
            assert_eq!(s.dbd().get(id).unwrap().state, JobState::Running);
        }
        assert_eq!(s.pending_count(), 0);
    }
}
