//! Job, user and partition types.

use ceems_simnode::cluster::NodeHandle;
use ceems_simnode::workload::WorkloadProfile;

/// Job lifecycle state (the SLURM states CEEMS cares about).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Queued, not yet placed.
    Pending,
    /// Running on one or more nodes.
    Running,
    /// Finished normally.
    Completed,
    /// Finished with a non-zero exit code.
    Failed,
    /// Killed by the user.
    Cancelled,
    /// Killed for exceeding its walltime.
    Timeout,
}

impl JobState {
    /// `sacct`-style state string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "PENDING",
            JobState::Running => "RUNNING",
            JobState::Completed => "COMPLETED",
            JobState::Failed => "FAILED",
            JobState::Cancelled => "CANCELLED",
            JobState::Timeout => "TIMEOUT",
        }
    }

    /// True for states that can no longer change.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Pending | JobState::Running)
    }
}

/// A named group of nodes jobs can target.
#[derive(Clone)]
pub struct Partition {
    /// Partition name, e.g. `gpu-a100`.
    pub name: String,
    /// Member nodes.
    pub nodes: Vec<NodeHandle>,
    /// Hard walltime cap (seconds).
    pub max_walltime_s: u64,
}

impl Partition {
    /// Builds a partition.
    pub fn new(name: impl Into<String>, nodes: Vec<NodeHandle>, max_walltime_s: u64) -> Partition {
        Partition {
            name: name.into(),
            nodes,
            max_walltime_s,
        }
    }
}

/// A job submission.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Submitting user.
    pub user: String,
    /// Account / project charged.
    pub account: String,
    /// Target partition name.
    pub partition: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Memory per node (bytes).
    pub memory_per_node: u64,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Requested walltime (seconds).
    pub walltime_s: u64,
    /// Workload shape the job runs.
    pub workload: WorkloadProfile,
}

/// One node's share of a running/finished job.
#[derive(Clone, Debug)]
pub struct JobPlacement {
    /// Hostname.
    pub hostname: String,
    /// GPU ordinals bound on that node (the map CEEMS persists).
    pub gpu_ordinals: Vec<usize>,
}

/// The accounting record of a job (what `sacct` / slurmdbd reports).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Numeric job id.
    pub id: u64,
    /// The globally unique identifier CEEMS uses (`slurm-<id>`).
    pub uuid: String,
    /// Submitting user.
    pub user: String,
    /// Account / project.
    pub account: String,
    /// Partition name.
    pub partition: String,
    /// State.
    pub state: JobState,
    /// Submit time (ms, simulated clock).
    pub submitted_ms: i64,
    /// Start time (ms), if started.
    pub started_ms: Option<i64>,
    /// End time (ms), if terminal.
    pub ended_ms: Option<i64>,
    /// Per-node placements, in allocation order.
    pub placements: Vec<JobPlacement>,
    /// Nodes requested.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Memory per node (bytes).
    pub memory_per_node: u64,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Requested walltime (s).
    pub walltime_s: u64,
    /// Workload kind string (for analysis, not exported).
    pub workload_kind: &'static str,
}

impl JobRecord {
    /// Total cores across nodes.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Total GPUs across nodes.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Elapsed runtime in seconds (0 if never started; up to `now` while
    /// running).
    pub fn elapsed_s(&self, now_ms: i64) -> f64 {
        match self.started_ms {
            None => 0.0,
            Some(start) => {
                let end = self.ended_ms.unwrap_or(now_ms);
                ((end - start).max(0)) as f64 / 1000.0
            }
        }
    }
}

/// Formats a CEEMS unit uuid from a job id.
pub fn job_uuid(id: u64) -> String {
    format!("slurm-{id}")
}

/// Parses a CEEMS unit uuid back to a job id.
pub fn parse_job_uuid(uuid: &str) -> Option<u64> {
    uuid.strip_prefix("slurm-")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_strings_and_terminality() {
        assert_eq!(JobState::Running.as_str(), "RUNNING");
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Pending.is_terminal());
        for s in [
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Timeout,
        ] {
            assert!(s.is_terminal());
        }
    }

    #[test]
    fn uuid_roundtrip() {
        assert_eq!(job_uuid(42), "slurm-42");
        assert_eq!(parse_job_uuid("slurm-42"), Some(42));
        assert_eq!(parse_job_uuid("openstack-42"), None);
        assert_eq!(parse_job_uuid("slurm-x"), None);
    }

    #[test]
    fn elapsed_accounts_for_state() {
        let mut rec = JobRecord {
            id: 1,
            uuid: job_uuid(1),
            user: "alice".into(),
            account: "proj1".into(),
            partition: "cpu".into(),
            state: JobState::Pending,
            submitted_ms: 0,
            started_ms: None,
            ended_ms: None,
            placements: vec![],
            nodes: 2,
            cores_per_node: 8,
            memory_per_node: 1 << 30,
            gpus_per_node: 1,
            walltime_s: 600,
            workload_kind: "idle",
        };
        assert_eq!(rec.elapsed_s(10_000), 0.0);
        rec.started_ms = Some(5_000);
        assert_eq!(rec.elapsed_s(15_000), 10.0);
        rec.ended_ms = Some(11_000);
        assert_eq!(rec.elapsed_s(1_000_000), 6.0);
        assert_eq!(rec.total_cores(), 16);
        assert_eq!(rec.total_gpus(), 2);
    }
}
