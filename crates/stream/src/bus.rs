//! The in-process sample bus.
//!
//! One [`StreamBus`] owns every `(tenant, topic)` stream. A publish is a
//! *synchronous* ingest: the frame goes through the ingest sink (in the
//! stack, [`exposition_to_batch` → `append_batch`] — one WAL group commit
//! per frame) before the publisher's sequence number is acknowledged, so an
//! ack means the samples are durable. After ingest the frame is appended to
//! a bounded replay ring (for subscriber resume) and fanned out to live
//! subscriber [`StreamWriter`]s.
//!
//! Sequence bookkeeping is per `(tenant, topic, publisher)`: a frame with
//! `seq <= last_acked` is a duplicate — acknowledged again but not
//! re-ingested — which makes resend-after-reconnect idempotent. Ring
//! offsets are per-topic and monotonic; subscribers resume with
//! `from_offset` and the bus replays what the ring still holds, emitting a
//! gap control record when eviction outran the subscriber.

use std::collections::BTreeMap;
use std::sync::Arc;

use ceems_http::StreamWriter;
use ceems_metrics::instruments::{Counter, Gauge};
use ceems_metrics::registry::Registry;
use parking_lot::Mutex;

use crate::frame::{gap_record, SampleFrame};

/// What an ingest sink reports back for one frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SinkReceipt {
    /// Samples ingested from the frame.
    pub samples: u64,
    /// Distinct metric names that arrived — feeds incremental rule
    /// evaluation (S23: only the affected rule sub-DAG re-evaluates).
    pub names: Vec<String>,
}

/// Ingest callback: parse + append the frame, return what arrived.
/// Must be atomic with respect to partial failure (a failed frame must not
/// leave half its samples behind, or retry would duplicate them).
pub type IngestSink = Arc<dyn Fn(&SampleFrame) -> Result<SinkReceipt, String> + Send + Sync>;

/// Bus limits.
#[derive(Clone, Copy, Debug)]
pub struct StreamBusConfig {
    /// Frames kept per topic for subscriber replay.
    pub ring_capacity: usize,
    /// Live subscribers allowed per tenant (backpressure: excess gets 429).
    pub max_subscribers_per_tenant: usize,
}

impl Default for StreamBusConfig {
    fn default() -> Self {
        StreamBusConfig {
            ring_capacity: 256,
            max_subscribers_per_tenant: 64,
        }
    }
}

/// Outcome of one publish.
#[derive(Clone, Debug, PartialEq)]
pub enum PublishOutcome {
    /// Frame ingested; `offset` is its topic offset.
    Ingested {
        /// Topic offset assigned to the frame.
        offset: u64,
        /// Sink receipt (sample count + arrived metric names).
        receipt: SinkReceipt,
    },
    /// `seq` at or below the last acked — re-acked, not re-ingested.
    Duplicate {
        /// Highest acked sequence for this publisher.
        last_seq: u64,
    },
}

/// Subscribe failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubscribeError {
    /// Tenant is at its live-subscriber cap.
    AtCapacity {
        /// The cap that was hit.
        cap: usize,
    },
}

struct TopicState {
    ring: std::collections::VecDeque<(u64, SampleFrame)>,
    next_offset: u64,
    last_seq: BTreeMap<String, u64>,
    subscribers: Vec<StreamWriter>,
}

impl TopicState {
    fn new() -> TopicState {
        TopicState {
            ring: std::collections::VecDeque::new(),
            next_offset: 1,
            last_seq: BTreeMap::new(),
            subscribers: Vec::new(),
        }
    }
}

#[derive(Default)]
struct BusInner {
    topics: BTreeMap<(String, String), TopicState>,
}

/// Counter/gauge snapshot for tests and status endpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BusStats {
    /// Frames ingested.
    pub published: u64,
    /// Duplicate frames re-acked.
    pub duplicates: u64,
    /// Frames evicted from replay rings.
    pub dropped: u64,
    /// Subscriptions that resumed from a non-zero offset.
    pub resumed: u64,
    /// Live subscribers right now.
    pub subscribers: u64,
}

/// The bus. Cheap to share (`Arc<StreamBus>`); all state behind one mutex —
/// publish is ingest-bound, not lock-bound.
pub struct StreamBus {
    cfg: StreamBusConfig,
    sink: IngestSink,
    inner: Mutex<BusInner>,
    published_total: Counter,
    duplicate_total: Counter,
    dropped_total: Counter,
    resumed_total: Counter,
    live_subscribers: Gauge,
    ring_occupancy: Gauge,
    publisher_lag_ms: Gauge,
}

impl StreamBus {
    /// Bus over an ingest sink.
    pub fn new(cfg: StreamBusConfig, sink: IngestSink) -> StreamBus {
        StreamBus {
            cfg,
            sink,
            inner: Mutex::new(BusInner::default()),
            published_total: Counter::new(),
            duplicate_total: Counter::new(),
            dropped_total: Counter::new(),
            resumed_total: Counter::new(),
            live_subscribers: Gauge::new(),
            ring_occupancy: Gauge::new(),
            publisher_lag_ms: Gauge::new(),
        }
    }

    /// Publishes one frame for `tenant` at wall/sim time `now_ms`.
    ///
    /// Sink errors propagate without advancing the ack, so the publisher's
    /// retry re-offers the same frame.
    pub fn publish(
        &self,
        tenant: &str,
        frame: SampleFrame,
        now_ms: i64,
    ) -> Result<PublishOutcome, String> {
        let mut inner = self.inner.lock();
        let topic = inner
            .topics
            .entry((tenant.to_string(), frame.topic.clone()))
            .or_insert_with(TopicState::new);

        if let Some(&last) = topic.last_seq.get(&frame.publisher) {
            if frame.seq <= last {
                self.duplicate_total.inc();
                return Ok(PublishOutcome::Duplicate { last_seq: last });
            }
        }

        // Synchronous ingest: ack implies durable. Holding the bus lock
        // here serializes publishes per process, which is exactly the WAL
        // group-commit unit we want (one frame = one batch = one commit).
        let receipt = (self.sink)(&frame)?;

        self.publisher_lag_ms
            .set((now_ms - frame.produced_ms).max(0) as f64);

        let offset = topic.next_offset;
        topic.next_offset += 1;
        topic.last_seq.insert(frame.publisher.clone(), frame.seq);

        // Fan out to live subscribers; a writer whose consumer vanished
        // (send fails) is shed here.
        let mut wire = Vec::new();
        frame.encode_into(&mut wire, Some(offset));
        let before = topic.subscribers.len();
        topic.subscribers.retain(|w| w.send(wire.clone()));
        let shed = before - topic.subscribers.len();

        topic.ring.push_back((offset, frame));
        while topic.ring.len() > self.cfg.ring_capacity {
            topic.ring.pop_front();
            self.dropped_total.inc();
        }
        let occupancy: usize = inner.topics.values().map(|t| t.ring.len()).sum();

        self.published_total.inc();
        self.ring_occupancy.set(occupancy as f64);
        if shed > 0 {
            self.live_subscribers.add(-(shed as f64));
        }
        Ok(PublishOutcome::Ingested { offset, receipt })
    }

    /// Attaches a live subscriber, replaying ring contents past
    /// `from_offset` first (0 = only new frames... and any retained
    /// history, since every retained offset is `> 0`; pass the last seen
    /// offset to resume). Emits a gap control record when eviction has
    /// outrun the resume point.
    pub fn subscribe(
        &self,
        tenant: &str,
        topic_name: &str,
        from_offset: u64,
        writer: StreamWriter,
    ) -> Result<u64, SubscribeError> {
        let mut inner = self.inner.lock();
        let tenant_subs: usize = inner
            .topics
            .iter()
            .filter(|((t, _), _)| t == tenant)
            .map(|(_, s)| s.subscribers.len())
            .sum();
        if tenant_subs >= self.cfg.max_subscribers_per_tenant {
            return Err(SubscribeError::AtCapacity {
                cap: self.cfg.max_subscribers_per_tenant,
            });
        }
        let topic = inner
            .topics
            .entry((tenant.to_string(), topic_name.to_string()))
            .or_insert_with(TopicState::new);

        if from_offset > 0 {
            self.resumed_total.inc();
        }
        if let Some(&(oldest, _)) = topic.ring.front() {
            if from_offset + 1 < oldest {
                let mut wire = Vec::new();
                crate::frame::encode_record(&mut wire, &gap_record(from_offset, oldest));
                writer.send(wire);
            }
        }
        let mut replayed = 0;
        for (offset, frame) in topic.ring.iter() {
            if *offset > from_offset {
                let mut wire = Vec::new();
                frame.encode_into(&mut wire, Some(*offset));
                if !writer.send(wire) {
                    return Ok(replayed); // consumer already gone
                }
                replayed += 1;
            }
        }
        topic.subscribers.push(writer);
        self.live_subscribers.add(1.0);
        Ok(replayed)
    }

    /// Highest acked sequence for a publisher, if any.
    pub fn last_acked(&self, tenant: &str, topic: &str, publisher: &str) -> Option<u64> {
        self.inner
            .lock()
            .topics
            .get(&(tenant.to_string(), topic.to_string()))
            .and_then(|t| t.last_seq.get(publisher).copied())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BusStats {
        BusStats {
            published: self.published_total.get() as u64,
            duplicates: self.duplicate_total.get() as u64,
            dropped: self.dropped_total.get() as u64,
            resumed: self.resumed_total.get() as u64,
            subscribers: self.live_subscribers.get() as u64,
        }
    }

    /// Registers S17 health instruments for the bus.
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        let bus = Arc::clone(self);
        registry.register(
            "ceems_stream_bus",
            Arc::new(move || {
                vec![
                    ceems_obs::counter_family(
                        "ceems_stream_published_frames_total",
                        "Frames ingested through the stream bus",
                        &bus.published_total,
                    ),
                    ceems_obs::counter_family(
                        "ceems_stream_duplicate_frames_total",
                        "Re-sent frames acknowledged without re-ingest",
                        &bus.duplicate_total,
                    ),
                    ceems_obs::counter_family(
                        "ceems_stream_dropped_frames_total",
                        "Frames evicted from replay rings before any resume",
                        &bus.dropped_total,
                    ),
                    ceems_obs::counter_family(
                        "ceems_stream_resumed_sessions_total",
                        "Subscriptions that resumed from a prior offset",
                        &bus.resumed_total,
                    ),
                    ceems_obs::gauge_family(
                        "ceems_stream_live_subscribers",
                        "Currently attached stream subscribers",
                        &bus.live_subscribers,
                    ),
                    ceems_obs::gauge_family(
                        "ceems_stream_ring_occupancy",
                        "Frames held across all replay rings",
                        &bus.ring_occupancy,
                    ),
                    ceems_obs::gauge_family(
                        "ceems_stream_publisher_lag_ms",
                        "Ingest time minus produce time of the last frame",
                        &bus.publisher_lag_ms,
                    ),
                ]
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::RecordDecoder;
    use ceems_http::stream_pair;

    fn counting_sink() -> IngestSink {
        Arc::new(|f: &SampleFrame| {
            Ok(SinkReceipt {
                samples: f.body.lines().count() as u64,
                names: f
                    .body
                    .lines()
                    .filter_map(|l| l.split_whitespace().next())
                    .map(|s| s.to_string())
                    .collect(),
            })
        })
    }

    fn frame(publisher: &str, seq: u64, body: &str) -> SampleFrame {
        SampleFrame {
            topic: "t".into(),
            publisher: publisher.into(),
            seq,
            instance: format!("{publisher}:9100"),
            job: "ceems".into(),
            extra_labels: vec![],
            body: body.into(),
            produced_ms: 1_000,
        }
    }

    #[test]
    fn duplicate_seq_is_acked_not_reingested() {
        let bus = StreamBus::new(StreamBusConfig::default(), counting_sink());
        let r1 = bus.publish("acme", frame("n1", 1, "a 1\n"), 1_000).unwrap();
        assert!(matches!(r1, PublishOutcome::Ingested { offset: 1, .. }));
        let r2 = bus.publish("acme", frame("n1", 1, "a 1\n"), 1_000).unwrap();
        assert_eq!(r2, PublishOutcome::Duplicate { last_seq: 1 });
        assert_eq!(bus.stats().published, 1);
        assert_eq!(bus.stats().duplicates, 1);
        assert_eq!(bus.last_acked("acme", "t", "n1"), Some(1));
        // Different tenant: independent sequence space.
        let r3 = bus.publish("umbrella", frame("n1", 1, "a 1\n"), 1_000).unwrap();
        assert!(matches!(r3, PublishOutcome::Ingested { .. }));
    }

    #[test]
    fn sink_failure_does_not_advance_ack() {
        let sink: IngestSink = Arc::new(|f: &SampleFrame| {
            if f.body.contains("bad") {
                Err("parse error".into())
            } else {
                Ok(SinkReceipt::default())
            }
        });
        let bus = StreamBus::new(StreamBusConfig::default(), sink);
        assert!(bus.publish("a", frame("n1", 1, "bad 1\n"), 0).is_err());
        assert_eq!(bus.last_acked("a", "t", "n1"), None);
        // Retry with the same seq succeeds and is NOT a duplicate.
        let r = bus.publish("a", frame("n1", 1, "ok 1\n"), 0).unwrap();
        assert!(matches!(r, PublishOutcome::Ingested { .. }));
    }

    #[test]
    fn ring_eviction_counts_drops_and_replay_reports_gap() {
        let cfg = StreamBusConfig {
            ring_capacity: 2,
            ..Default::default()
        };
        let bus = StreamBus::new(cfg, counting_sink());
        for seq in 1..=5 {
            bus.publish("a", frame("n1", seq, "m 1\n"), 0).unwrap();
        }
        assert_eq!(bus.stats().dropped, 3);

        // Resume from offset 1: ring now holds offsets 4..=5, so a gap
        // control record precedes the replay.
        let (body, writer) = stream_pair(1 << 20);
        let replayed = bus.subscribe("a", "t", 1, writer).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(bus.stats().resumed, 1);
        let (chunks, _) = body.take_chunks();
        let mut dec = RecordDecoder::new();
        let mut records = Vec::new();
        for c in &chunks {
            records.extend(dec.feed(c).unwrap());
        }
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0].get("control").and_then(|v| v.as_str()),
            Some("gap")
        );
        assert_eq!(
            records[0].get("oldest_available").and_then(|v| v.as_u64()),
            Some(4)
        );
        assert_eq!(records[1].get("offset").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(records[2].get("offset").and_then(|v| v.as_u64()), Some(5));
    }

    #[test]
    fn fanout_reaches_live_subscriber_and_sheds_dead_ones() {
        let bus = StreamBus::new(StreamBusConfig::default(), counting_sink());
        let (stream, writer) = stream_pair(1 << 20);
        bus.subscribe("a", "t", 0, writer).unwrap();
        assert_eq!(bus.stats().subscribers, 1);

        bus.publish("a", frame("n1", 1, "m 1\n"), 0).unwrap();
        let (chunks, _closed) = stream.take_chunks();
        let mut dec = RecordDecoder::new();
        let mut records = Vec::new();
        for c in &chunks {
            records.extend(dec.feed(c).unwrap());
        }
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("offset").and_then(|v| v.as_u64()), Some(1));

        // Kill the consumer; next publish sheds the writer.
        stream.abort();
        bus.publish("a", frame("n1", 2, "m 2\n"), 0).unwrap();
        assert_eq!(bus.stats().subscribers, 0);
    }

    #[test]
    fn per_tenant_subscriber_cap() {
        let cfg = StreamBusConfig {
            max_subscribers_per_tenant: 1,
            ..Default::default()
        };
        let bus = StreamBus::new(cfg, counting_sink());
        let (_b1, w1) = stream_pair(1 << 20);
        bus.subscribe("a", "t", 0, w1).unwrap();
        let (_b2, w2) = stream_pair(1 << 20);
        assert_eq!(
            bus.subscribe("a", "t", 0, w2),
            Err(SubscribeError::AtCapacity { cap: 1 })
        );
        // Another tenant is unaffected.
        let (_b3, w3) = stream_pair(1 << 20);
        assert!(bus.subscribe("b", "t", 0, w3).is_ok());
    }
}
