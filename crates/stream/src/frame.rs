//! Wire format for the sample bus (S23).
//!
//! A *frame* is one exporter render: exposition text plus the target labels
//! a scrape pass would have stamped (`instance`, `job`, extra group labels)
//! and a per-publisher monotonic sequence number. Frames ride HTTP bodies as
//! `[u32 big-endian length][JSON]` records — several per `POST
//! /api/v1/stream/push` body, one per chunk on the subscribe stream.
//!
//! Why length-prefixed records inside ordinary keep-alive POSTs rather than
//! one long-lived chunked *request*? Chunked request bodies pin a reactor
//! connection in a half-open state for the publisher's lifetime and make
//! retry semantics murky (how much of an infinite body was "received"?).
//! Batched POSTs reuse the pooled keep-alive connection (S20), give the
//! publisher a crisp ack unit to resume from, and let the server treat one
//! push body as one WAL group commit. Server→client paths (subscribe, live
//! queries) *do* use true chunked streaming — there the server controls the
//! framing and a dropped consumer is just shed.

use serde_json::{json, Value};

/// One published exporter render.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleFrame {
    /// Topic the frame is published to (per-tenant namespace).
    pub topic: String,
    /// Publisher identity; sequence numbers are monotonic per publisher.
    pub publisher: String,
    /// Monotonic sequence number, starting at 1. The bus acks the highest
    /// contiguous seq it has ingested; `seq <= last_acked` is a duplicate
    /// (acknowledged again, not re-ingested) so resend-after-reconnect is
    /// idempotent.
    pub seq: u64,
    /// `instance` label stamped on every sample (as a scrape would).
    pub instance: String,
    /// `job` label stamped on every sample.
    pub job: String,
    /// Extra target-group labels (e.g. `nodegroup`).
    pub extra_labels: Vec<(String, String)>,
    /// Exposition text payload.
    pub body: String,
    /// Producer timestamp (ms) — used for samples without explicit
    /// timestamps and for the publisher-lag gauge.
    pub produced_ms: i64,
}

impl SampleFrame {
    /// JSON value for the wire. `offset` is the bus-assigned topic offset,
    /// present only on the subscribe stream (publishers don't know it).
    pub fn to_json(&self, offset: Option<u64>) -> Value {
        let mut v = json!({
            "topic": self.topic,
            "publisher": self.publisher,
            "seq": self.seq,
            "instance": self.instance,
            "job": self.job,
            "extra_labels": self.extra_labels.iter()
                .map(|(k, val)| json!([k, val]))
                .collect::<Vec<_>>(),
            "body": self.body,
            "produced_ms": self.produced_ms,
        });
        if let Some(off) = offset {
            if let Value::Object(m) = &mut v {
                m.insert("offset".to_string(), json!(off));
            }
        }
        v
    }

    /// Parses a wire JSON object back into a frame (ignores `offset`).
    pub fn from_json(v: &Value) -> Result<SampleFrame, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(|x| x.to_string())
                .ok_or_else(|| format!("frame missing string field {key:?}"))
        };
        let mut extra_labels = Vec::new();
        if let Some(arr) = v.get("extra_labels").and_then(|x| x.as_array()) {
            for pair in arr {
                let p = pair.as_array().ok_or("extra_labels entry not a pair")?;
                match (p.first().and_then(|x| x.as_str()), p.get(1).and_then(|x| x.as_str())) {
                    (Some(k), Some(val)) => extra_labels.push((k.to_string(), val.to_string())),
                    _ => return Err("extra_labels entry not a string pair".into()),
                }
            }
        }
        Ok(SampleFrame {
            topic: s("topic")?,
            publisher: s("publisher")?,
            seq: v
                .get("seq")
                .and_then(|x| x.as_u64())
                .ok_or("frame missing seq")?,
            instance: s("instance")?,
            job: s("job")?,
            extra_labels,
            body: s("body")?,
            produced_ms: v.get("produced_ms").and_then(|x| x.as_i64()).unwrap_or(0),
        })
    }

    /// Appends this frame as a length-prefixed record.
    pub fn encode_into(&self, out: &mut Vec<u8>, offset: Option<u64>) {
        encode_record(out, &self.to_json(offset));
    }
}

/// Appends one `[u32 BE length][JSON]` record.
pub fn encode_record(out: &mut Vec<u8>, v: &Value) {
    let bytes = v.to_string().into_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&bytes);
}

/// A control record on the subscribe stream: the ring no longer holds the
/// offset the subscriber asked to resume from, so a gap exists.
pub fn gap_record(requested_from: u64, oldest_available: u64) -> Value {
    json!({
        "control": "gap",
        "requested_from": requested_from,
        "oldest_available": oldest_available,
    })
}

/// Incremental decoder over length-prefixed records; tolerates records
/// arriving split across arbitrary chunk boundaries (the subscribe stream
/// re-chunks at the transport layer).
#[derive(Debug, Default)]
pub struct RecordDecoder {
    buf: Vec<u8>,
}

impl RecordDecoder {
    /// Empty decoder.
    pub fn new() -> RecordDecoder {
        RecordDecoder::default()
    }

    /// Feeds bytes; returns every complete record now available.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Value>, String> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                as usize;
            if len > MAX_RECORD_BYTES {
                return Err(format!("record length {len} exceeds cap"));
            }
            if self.buf.len() < 4 + len {
                break;
            }
            let v: Value = serde_json::from_slice(&self.buf[4..4 + len])
                .map_err(|e| format!("bad record JSON: {e}"))?;
            self.buf.drain(..4 + len);
            out.push(v);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a record's remainder.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Upper bound on one record's JSON payload — matches the HTTP server's
/// body cap order of magnitude; a frame past this is a protocol error, not
/// a bigger buffer.
pub const MAX_RECORD_BYTES: usize = 8 << 20;

/// Decodes a complete buffer of records (push bodies arrive whole).
pub fn decode_records(body: &[u8]) -> Result<Vec<Value>, String> {
    let mut dec = RecordDecoder::new();
    let out = dec.feed(body)?;
    if dec.pending_bytes() > 0 {
        return Err(format!(
            "trailing {} bytes after last complete record",
            dec.pending_bytes()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64) -> SampleFrame {
        SampleFrame {
            topic: "node-metrics".into(),
            publisher: "n1".into(),
            seq,
            instance: "n1:9100".into(),
            job: "ceems".into(),
            extra_labels: vec![("nodegroup".into(), "intel-dram".into())],
            body: "power_watts 250\n".into(),
            produced_ms: 15_000,
        }
    }

    #[test]
    fn frame_roundtrips_through_wire_encoding() {
        let f = frame(7);
        let mut buf = Vec::new();
        f.encode_into(&mut buf, Some(42));
        frame(8).encode_into(&mut buf, None);
        let records = decode_records(&buf).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("offset").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(SampleFrame::from_json(&records[0]).unwrap(), f);
        assert_eq!(SampleFrame::from_json(&records[1]).unwrap(), frame(8));
    }

    #[test]
    fn decoder_handles_split_chunk_boundaries() {
        let mut buf = Vec::new();
        frame(1).encode_into(&mut buf, Some(1));
        frame(2).encode_into(&mut buf, Some(2));
        let mut dec = RecordDecoder::new();
        let mut got = Vec::new();
        // Feed one byte at a time — worst-case re-chunking.
        for b in &buf {
            got.extend(dec.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got.len(), 2);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn truncated_body_is_rejected() {
        let mut buf = Vec::new();
        frame(1).encode_into(&mut buf, None);
        buf.truncate(buf.len() - 3);
        assert!(decode_records(&buf).is_err());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut buf = ((MAX_RECORD_BYTES + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(RecordDecoder::new().feed(&buf).is_err());
    }
}
