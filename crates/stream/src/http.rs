//! HTTP surface of the bus: `POST /api/v1/stream/push` and
//! `GET /api/v1/stream/subscribe`.
//!
//! Tenancy follows the rest of the stack: the `x-grafana-user` header names
//! the tenant, absent means `anonymous`. A push body carries one or more
//! length-prefixed frames (usually one publisher, several renders after a
//! reconnect); the ack maps each publisher to its highest acknowledged
//! sequence so the client can drop its buffered prefix. The subscribe
//! endpoint holds a chunked response open and relays frames as the bus
//! ingests them.

use std::sync::Arc;

use ceems_http::types::Status;
use ceems_http::{Request, Response, Router};
use ceems_obs::trace::QueryTrace;
use ceems_obs::TraceSink;
use serde_json::json;

use crate::bus::{PublishOutcome, StreamBus, SubscribeError};
use crate::frame::{decode_records, SampleFrame};

/// Clock used to stamp ingest time (simulated in tests, wall elsewhere).
pub type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

fn tenant_of(req: &Request) -> String {
    req.header("x-grafana-user").unwrap_or("anonymous").to_string()
}

/// Mounts the stream endpoints on a router.
pub fn mount(
    router: &mut Router,
    bus: Arc<StreamBus>,
    now: NowFn,
    trace_sink: Option<Arc<TraceSink>>,
) {
    let push_bus = Arc::clone(&bus);
    let push_now = Arc::clone(&now);
    let push_sink = trace_sink.clone();
    router.post("/api/v1/stream/push", move |req| {
        handle_push(&push_bus, &push_now, push_sink.as_deref(), req)
    });

    router.get("/api/v1/stream/subscribe", move |req| {
        handle_subscribe(&bus, req)
    });
}

fn handle_push(
    bus: &StreamBus,
    now: &NowFn,
    trace_sink: Option<&TraceSink>,
    req: &Request,
) -> Response {
    let tenant = tenant_of(req);
    let trace = QueryTrace::begin(req.header("x-ceems-trace-id"));
    let stage = trace.stage("stream_push");

    let records = match decode_records(&req.body) {
        Ok(r) => r,
        Err(e) => return Response::error(Status::BAD_REQUEST, &e),
    };
    let now_ms = now();
    let mut acked: std::collections::BTreeMap<String, u64> = Default::default();
    let mut ingested = 0u64;
    let mut duplicates = 0u64;
    let mut failure: Option<String> = None;
    let mut frames = 0u64;
    for record in &records {
        let frame = match SampleFrame::from_json(record) {
            Ok(f) => f,
            Err(e) => return Response::error(Status::BAD_REQUEST, &e),
        };
        let publisher = frame.publisher.clone();
        let seq = frame.seq;
        frames += 1;
        match bus.publish(&tenant, frame, now_ms) {
            Ok(PublishOutcome::Ingested { receipt, .. }) => {
                ingested += receipt.samples;
                let e = acked.entry(publisher).or_insert(0);
                *e = (*e).max(seq);
            }
            Ok(PublishOutcome::Duplicate { last_seq }) => {
                duplicates += 1;
                let e = acked.entry(publisher).or_insert(0);
                *e = (*e).max(last_seq);
            }
            Err(e) => {
                // Stop at the first sink failure: later frames from the
                // same publisher must not be acked past a hole.
                failure = Some(e);
                break;
            }
        }
    }

    stage.finish();
    trace.add_count("frames", frames);
    trace.add_count("samples", ingested);
    if let Some(sink) = trace_sink {
        sink.offer("stream", "/api/v1/stream/push", &tenant, &trace.report());
    }

    let mut acked_map = serde_json::Map::new();
    for (k, v) in &acked {
        acked_map.insert(k.clone(), json!(v));
    }
    let mut ack_json = json!({
        "status": if failure.is_none() { "success" } else { "error" },
        "acked": serde_json::Value::Object(acked_map),
        "ingested": ingested,
        "duplicates": duplicates,
    });
    if let (Some(e), serde_json::Value::Object(m)) = (&failure, &mut ack_json) {
        m.insert("error".to_string(), json!(e));
    }
    let mut resp = Response::json(ack_json.to_string());
    if failure.is_some() {
        resp.status = Status::INTERNAL;
    }
    resp
}

fn handle_subscribe(bus: &StreamBus, req: &Request) -> Response {
    let tenant = tenant_of(req);
    let topic = match req.query_param("topic") {
        Some(t) if !t.is_empty() => t.to_string(),
        _ => return Response::error(Status::BAD_REQUEST, "missing topic parameter"),
    };
    let from_offset = req
        .query_param("from_offset")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);

    let (resp, writer) = Response::streaming(Status::OK);
    match bus.subscribe(&tenant, &topic, from_offset, writer) {
        Ok(_replayed) => resp.with_header("content-type", "application/x-ceems-frames"),
        Err(SubscribeError::AtCapacity { cap }) => Response::error(
            Status::TOO_MANY_REQUESTS,
            format!("tenant at live-subscriber cap ({cap})"),
        )
        .with_retry_after(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{SinkReceipt, StreamBusConfig};
    use crate::frame::RecordDecoder;
    use crate::publisher::StreamPublisher;
    use ceems_http::{HttpServer, ServerConfig};

    fn serve(bus: Arc<StreamBus>) -> HttpServer {
        let mut router = Router::new();
        mount(&mut router, bus, Arc::new(|| 5_000), None);
        HttpServer::serve(ServerConfig::ephemeral(), router).unwrap()
    }

    fn counting_bus(cfg: StreamBusConfig) -> Arc<StreamBus> {
        Arc::new(StreamBus::new(
            cfg,
            Arc::new(|f: &SampleFrame| {
                Ok(SinkReceipt {
                    samples: f.body.lines().count() as u64,
                    names: vec![],
                })
            }),
        ))
    }

    #[test]
    fn push_acks_and_dedups_over_http() {
        let bus = counting_bus(StreamBusConfig::default());
        let server = serve(Arc::clone(&bus));
        let mut publisher = StreamPublisher::new(
            &server.base_url(),
            "node-metrics",
            "n1",
            "n1:9100",
            "ceems",
            vec![],
        );
        let report = publisher.publish("a 1\nb 2\n".into(), 1_000).unwrap();
        assert_eq!(report.acked_seq, 1);
        assert_eq!(report.samples, 2);
        assert_eq!(publisher.pending(), 0);

        // Re-sending the same seq (simulated resume) is acked as duplicate.
        publisher.enqueue("c 3\n".into(), 2_000);
        let report = publisher.flush().unwrap();
        assert_eq!(report.acked_seq, 2);
        assert_eq!(bus.stats().published, 2);
        server.shutdown();
    }

    #[test]
    fn subscribe_receives_pushed_frames_live() {
        let bus = counting_bus(StreamBusConfig::default());
        let server = serve(Arc::clone(&bus));
        let client = ceems_http::Client::new();
        let mut sub = client
            .get_stream(&format!(
                "{}/api/v1/stream/subscribe?topic=node-metrics",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(sub.status.0, 200);

        let mut publisher = StreamPublisher::new(
            &server.base_url(),
            "node-metrics",
            "n1",
            "n1:9100",
            "ceems",
            vec![],
        );
        publisher.publish("a 1\n".into(), 1_000).unwrap();

        let mut dec = RecordDecoder::new();
        let mut records = Vec::new();
        while records.is_empty() {
            match sub.next_chunk().unwrap() {
                Some(chunk) => records.extend(dec.feed(&chunk).unwrap()),
                None => panic!("stream ended before frame arrived"),
            }
        }
        let frame = SampleFrame::from_json(&records[0]).unwrap();
        assert_eq!(frame.publisher, "n1");
        assert_eq!(frame.body, "a 1\n");
        assert_eq!(records[0].get("offset").and_then(|v| v.as_u64()), Some(1));
        server.shutdown();
    }

    #[test]
    fn subscriber_cap_returns_429_with_retry_after() {
        let bus = counting_bus(StreamBusConfig {
            max_subscribers_per_tenant: 0,
            ..Default::default()
        });
        let server = serve(bus);
        let client = ceems_http::Client::new();
        let resp = client
            .get(&format!(
                "{}/api/v1/stream/subscribe?topic=t",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status.0, 429);
        assert!(resp.headers.contains_key("retry-after"));
        server.shutdown();
    }

    #[test]
    fn malformed_push_body_is_rejected() {
        let bus = counting_bus(StreamBusConfig::default());
        let server = serve(bus);
        let client = ceems_http::Client::new();
        let resp = client
            .post(
                &format!("{}/api/v1/stream/push", server.base_url()),
                b"garbage".to_vec(),
                "application/x-ceems-frames",
            )
            .unwrap();
        assert_eq!(resp.status.0, 400);
        server.shutdown();
    }
}
