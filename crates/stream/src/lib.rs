//! # ceems-stream — streaming ingest bus and live sample fan-out (S23)
//!
//! The paper's stack is pull-based: exporters are scraped, rules re-evaluate
//! wholesale on a timer, dashboards poll. This crate adds the push path:
//!
//! * [`frame`] — the wire format: length-prefixed JSON frames carrying one
//!   exporter render plus target labels and a per-publisher sequence number.
//! * [`bus`] — the [`bus::StreamBus`]: per-tenant topics, synchronous
//!   ingest through a sink (one frame = one WAL group commit), per-publisher
//!   ack/dedup for idempotent resume, bounded replay rings, and live
//!   fan-out to subscriber stream writers.
//! * [`publisher`] — the exporter-side client: buffers unacked frames,
//!   flushes them over the pooled keep-alive HTTP client, resumes by
//!   re-sending after reconnect (the bus dedups).
//! * [`http`] — `POST /api/v1/stream/push` and
//!   `GET /api/v1/stream/subscribe` mounted on the S20 router, with a
//!   `stream_push` trace stage.
//!
//! Downstream, the TSDB consumes pushed batches exactly like scraped ones
//! (same label stamping via `exposition_to_batch`), the rule engine
//! re-evaluates only the sub-DAG whose inputs arrived
//! (`RuleEngine::tick_incremental`), and the query frontend pushes per-step
//! deltas to live `query_live` subscribers.

pub mod bus;
pub mod frame;
pub mod http;
pub mod publisher;

pub use bus::{BusStats, IngestSink, PublishOutcome, SinkReceipt, StreamBus, StreamBusConfig, SubscribeError};
pub use frame::{RecordDecoder, SampleFrame};
pub use publisher::{register_publisher_metrics, PublisherStats, PushReport, StreamPublisher};
