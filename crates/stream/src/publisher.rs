//! Publisher-side client for the sample bus.
//!
//! A [`StreamPublisher`] wraps the pooled keep-alive [`Client`] (S20) and
//! owns the resume protocol: frames are assigned monotonic sequence numbers
//! at enqueue time and buffered until the bus acknowledges them. A flush
//! batches every unacked frame into one `POST /api/v1/stream/push` body —
//! after a reconnect that naturally *re-sends* previously delivered frames,
//! which the bus re-acks as duplicates without re-ingesting. The publisher
//! therefore needs no connection-level state at all: "resume" is just
//! "flush again".

use std::collections::VecDeque;

use ceems_http::Client;

use crate::frame::SampleFrame;

/// Result of one successful flush.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushReport {
    /// Highest sequence the bus has acknowledged for this publisher.
    pub acked_seq: u64,
    /// Frames carried in the push body.
    pub sent_frames: usize,
    /// Frames the bus had already seen (resume overlap).
    pub duplicates: u64,
    /// Samples ingested by this push.
    pub samples: u64,
}

/// Buffering publisher for one `(topic, publisher)` identity.
pub struct StreamPublisher {
    client: Client,
    push_url: String,
    topic: String,
    publisher: String,
    instance: String,
    job: String,
    extra_labels: Vec<(String, String)>,
    next_seq: u64,
    unacked: VecDeque<SampleFrame>,
    max_buffered: usize,
    /// Highest seq ever included in an attempted push body; a later flush
    /// whose oldest frame is at or below this is a resume (re-send).
    attempted_through: u64,
    /// Frames dropped because the unacked buffer hit its cap while the bus
    /// was unreachable (oldest-first; visible data loss, counted).
    pub dropped_frames: u64,
    /// Flushes that carried previously sent frames (i.e. resumes).
    pub resumed_flushes: u64,
}

/// Default cap on frames buffered while the bus is unreachable.
pub const DEFAULT_PUBLISHER_BUFFER: usize = 512;

impl StreamPublisher {
    /// Publisher pushing to `base_url` (e.g. `http://host:port`), tagged
    /// with the target labels a scrape of this exporter would stamp.
    pub fn new(
        base_url: &str,
        topic: &str,
        publisher: &str,
        instance: &str,
        job: &str,
        extra_labels: Vec<(String, String)>,
    ) -> StreamPublisher {
        StreamPublisher {
            client: Client::new(),
            push_url: format!("{}/api/v1/stream/push", base_url.trim_end_matches('/')),
            topic: topic.to_string(),
            publisher: publisher.to_string(),
            instance: instance.to_string(),
            job: job.to_string(),
            extra_labels,
            next_seq: 1,
            unacked: VecDeque::new(),
            max_buffered: DEFAULT_PUBLISHER_BUFFER,
            attempted_through: 0,
            dropped_frames: 0,
            resumed_flushes: 0,
        }
    }

    /// Replaces the HTTP client (to attach auth, fault plans, headers).
    pub fn with_client(mut self, client: Client) -> StreamPublisher {
        self.client = client;
        self
    }

    /// Caps the unacked buffer.
    pub fn with_max_buffered(mut self, n: usize) -> StreamPublisher {
        self.max_buffered = n.max(1);
        self
    }

    /// Frames awaiting acknowledgement.
    pub fn pending(&self) -> usize {
        self.unacked.len()
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Buffers one exporter render for delivery. Oldest frames are dropped
    /// (and counted) once the buffer cap is hit.
    pub fn enqueue(&mut self, body: String, produced_ms: i64) {
        let frame = SampleFrame {
            topic: self.topic.clone(),
            publisher: self.publisher.clone(),
            seq: self.next_seq,
            instance: self.instance.clone(),
            job: self.job.clone(),
            extra_labels: self.extra_labels.clone(),
            body,
            produced_ms,
        };
        self.next_seq += 1;
        self.unacked.push_back(frame);
        while self.unacked.len() > self.max_buffered {
            self.unacked.pop_front();
            self.dropped_frames += 1;
        }
    }

    /// Sends every unacked frame in one push body and drops the acked
    /// prefix. On transport error the frames stay buffered for the next
    /// flush (the resume path).
    pub fn flush(&mut self) -> Result<PushReport, String> {
        if self.unacked.is_empty() {
            return Ok(PushReport {
                acked_seq: self.next_seq.saturating_sub(1),
                ..PushReport::default()
            });
        }
        let oldest = self.unacked.front().map(|f| f.seq).unwrap_or(0);
        if oldest != 0 && oldest <= self.attempted_through {
            self.resumed_flushes += 1;
        }
        self.attempted_through = self.unacked.back().map(|f| f.seq).unwrap_or(0);

        let mut body = Vec::new();
        let sent_frames = self.unacked.len();
        for f in &self.unacked {
            f.encode_into(&mut body, None);
        }
        let resp = self
            .client
            .post(&self.push_url, body, "application/x-ceems-frames")
            .map_err(|e| format!("push failed: {e}"))?;
        if !resp.status.is_success() {
            return Err(format!("push returned {}", resp.status.0));
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body)
            .map_err(|e| format!("bad push ack: {e}"))?;
        let acked = v
            .get("acked")
            .and_then(|a| a.get(self.publisher.as_str()))
            .and_then(|s| s.as_u64())
            .ok_or("push ack missing publisher seq")?;
        while self.unacked.front().map(|f| f.seq <= acked).unwrap_or(false) {
            self.unacked.pop_front();
        }
        Ok(PushReport {
            acked_seq: acked,
            sent_frames,
            duplicates: v.get("duplicates").and_then(|d| d.as_u64()).unwrap_or(0),
            samples: v.get("ingested").and_then(|d| d.as_u64()).unwrap_or(0),
        })
    }

    /// Enqueue + flush in one call — the common per-interval push.
    pub fn publish(&mut self, body: String, produced_ms: i64) -> Result<PushReport, String> {
        self.enqueue(body, produced_ms);
        self.flush()
    }
}
