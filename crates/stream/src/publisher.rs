//! Publisher-side client for the sample bus.
//!
//! A [`StreamPublisher`] wraps the pooled keep-alive [`Client`] (S20) and
//! owns the resume protocol: frames are assigned monotonic sequence numbers
//! at enqueue time and buffered until the bus acknowledges them. A flush
//! batches every unacked frame into one `POST /api/v1/stream/push` body —
//! after a reconnect that naturally *re-sends* previously delivered frames,
//! which the bus re-acks as duplicates without re-ingesting. The publisher
//! therefore needs no connection-level state at all: "resume" is just
//! "flush again".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ceems_http::Client;
use ceems_metrics::Registry;

use crate::frame::SampleFrame;

/// Shared delivery stats for one publisher, registrable on the exporter's
/// `/metrics`: buffer pressure and loss stay visible even while the bus is
/// unreachable (exactly when they matter).
#[derive(Debug, Default)]
pub struct PublisherStats {
    dropped: AtomicU64,
    resumed: AtomicU64,
    unacked: AtomicU64,
    high_watermark: AtomicU64,
}

impl PublisherStats {
    /// Frames dropped oldest-first because the unacked buffer hit its cap.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flushes that re-sent previously attempted frames (resumes).
    pub fn resumed_flushes(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Frames currently awaiting acknowledgement.
    pub fn unacked(&self) -> u64 {
        self.unacked.load(Ordering::Relaxed)
    }

    /// Largest unacked-buffer depth ever observed.
    pub fn unacked_high_watermark(&self) -> u64 {
        self.high_watermark.load(Ordering::Relaxed)
    }

    fn set_unacked(&self, n: u64) {
        self.unacked.store(n, Ordering::Relaxed);
        self.high_watermark.fetch_max(n, Ordering::Relaxed);
    }
}

/// Registers one publisher's delivery stats on `registry` (served from the
/// exporter's `/metrics`), labelled with the publisher identity.
pub fn register_publisher_metrics(
    registry: &Registry,
    publisher: &str,
    stats: Arc<PublisherStats>,
) {
    let id = publisher.to_string();
    registry.register(
        format!("stream_publisher_{publisher}"),
        Arc::new(move || {
            let labels =
                ceems_metrics::labels::LabelSet::from_pairs([("publisher", id.as_str())]);
            let fam = |name, help, kind, v: u64| {
                ceems_obs::family_with_metrics(
                    name,
                    help,
                    kind,
                    vec![ceems_obs::metric(labels.clone(), v as f64)],
                )
            };
            vec![
                fam(
                    "ceems_stream_publisher_unacked_frames",
                    "Frames buffered awaiting bus acknowledgement.",
                    ceems_metrics::MetricType::Gauge,
                    stats.unacked(),
                ),
                fam(
                    "ceems_stream_publisher_unacked_high_watermark",
                    "Largest unacked-buffer depth ever observed.",
                    ceems_metrics::MetricType::Gauge,
                    stats.unacked_high_watermark(),
                ),
                fam(
                    "ceems_stream_publisher_dropped_frames_total",
                    "Frames dropped oldest-first at the unacked-buffer cap.",
                    ceems_metrics::MetricType::Counter,
                    stats.dropped_frames(),
                ),
                fam(
                    "ceems_stream_publisher_resumed_flushes_total",
                    "Flushes that re-sent previously attempted frames.",
                    ceems_metrics::MetricType::Counter,
                    stats.resumed_flushes(),
                ),
            ]
        }),
    );
}

/// Result of one successful flush.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushReport {
    /// Highest sequence the bus has acknowledged for this publisher.
    pub acked_seq: u64,
    /// Frames carried in the push body.
    pub sent_frames: usize,
    /// Frames the bus had already seen (resume overlap).
    pub duplicates: u64,
    /// Samples ingested by this push.
    pub samples: u64,
}

/// Buffering publisher for one `(topic, publisher)` identity.
pub struct StreamPublisher {
    client: Client,
    push_url: String,
    topic: String,
    publisher: String,
    instance: String,
    job: String,
    extra_labels: Vec<(String, String)>,
    next_seq: u64,
    unacked: VecDeque<SampleFrame>,
    max_buffered: usize,
    /// Highest seq ever included in an attempted push body; a later flush
    /// whose oldest frame is at or below this is a resume (re-send).
    attempted_through: u64,
    /// Delivery stats, shared with `/metrics` registrations.
    stats: Arc<PublisherStats>,
}

/// Default cap on frames buffered while the bus is unreachable.
pub const DEFAULT_PUBLISHER_BUFFER: usize = 512;

impl StreamPublisher {
    /// Publisher pushing to `base_url` (e.g. `http://host:port`), tagged
    /// with the target labels a scrape of this exporter would stamp.
    pub fn new(
        base_url: &str,
        topic: &str,
        publisher: &str,
        instance: &str,
        job: &str,
        extra_labels: Vec<(String, String)>,
    ) -> StreamPublisher {
        StreamPublisher {
            client: Client::new(),
            push_url: format!("{}/api/v1/stream/push", base_url.trim_end_matches('/')),
            topic: topic.to_string(),
            publisher: publisher.to_string(),
            instance: instance.to_string(),
            job: job.to_string(),
            extra_labels,
            next_seq: 1,
            unacked: VecDeque::new(),
            max_buffered: DEFAULT_PUBLISHER_BUFFER,
            attempted_through: 0,
            stats: Arc::new(PublisherStats::default()),
        }
    }

    /// This publisher's delivery stats (for `/metrics` registration via
    /// [`register_publisher_metrics`]).
    pub fn stats(&self) -> Arc<PublisherStats> {
        self.stats.clone()
    }

    /// Frames dropped at the buffer cap (visible data loss).
    pub fn dropped_frames(&self) -> u64 {
        self.stats.dropped_frames()
    }

    /// Flushes that re-sent previously attempted frames.
    pub fn resumed_flushes(&self) -> u64 {
        self.stats.resumed_flushes()
    }

    /// Replaces the HTTP client (to attach auth, fault plans, headers).
    pub fn with_client(mut self, client: Client) -> StreamPublisher {
        self.client = client;
        self
    }

    /// Caps the unacked buffer.
    pub fn with_max_buffered(mut self, n: usize) -> StreamPublisher {
        self.max_buffered = n.max(1);
        self
    }

    /// Frames awaiting acknowledgement.
    pub fn pending(&self) -> usize {
        self.unacked.len()
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Buffers one exporter render for delivery. Oldest frames are dropped
    /// (and counted) once the buffer cap is hit.
    pub fn enqueue(&mut self, body: String, produced_ms: i64) {
        let frame = SampleFrame {
            topic: self.topic.clone(),
            publisher: self.publisher.clone(),
            seq: self.next_seq,
            instance: self.instance.clone(),
            job: self.job.clone(),
            extra_labels: self.extra_labels.clone(),
            body,
            produced_ms,
        };
        self.next_seq += 1;
        self.unacked.push_back(frame);
        while self.unacked.len() > self.max_buffered {
            self.unacked.pop_front();
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.set_unacked(self.unacked.len() as u64);
    }

    /// Sends every unacked frame in one push body and drops the acked
    /// prefix. On transport error the frames stay buffered for the next
    /// flush (the resume path).
    pub fn flush(&mut self) -> Result<PushReport, String> {
        if self.unacked.is_empty() {
            return Ok(PushReport {
                acked_seq: self.next_seq.saturating_sub(1),
                ..PushReport::default()
            });
        }
        let oldest = self.unacked.front().map(|f| f.seq).unwrap_or(0);
        if oldest != 0 && oldest <= self.attempted_through {
            self.stats.resumed.fetch_add(1, Ordering::Relaxed);
        }
        self.attempted_through = self.unacked.back().map(|f| f.seq).unwrap_or(0);

        let mut body = Vec::new();
        let sent_frames = self.unacked.len();
        for f in &self.unacked {
            f.encode_into(&mut body, None);
        }
        let resp = self
            .client
            .post(&self.push_url, body, "application/x-ceems-frames")
            .map_err(|e| format!("push failed: {e}"))?;
        if !resp.status.is_success() {
            return Err(format!("push returned {}", resp.status.0));
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body)
            .map_err(|e| format!("bad push ack: {e}"))?;
        let acked = v
            .get("acked")
            .and_then(|a| a.get(self.publisher.as_str()))
            .and_then(|s| s.as_u64())
            .ok_or("push ack missing publisher seq")?;
        while self.unacked.front().map(|f| f.seq <= acked).unwrap_or(false) {
            self.unacked.pop_front();
        }
        self.stats.set_unacked(self.unacked.len() as u64);
        Ok(PushReport {
            acked_seq: acked,
            sent_frames,
            duplicates: v.get("duplicates").and_then(|d| d.as_u64()).unwrap_or(0),
            samples: v.get("ingested").and_then(|d| d.as_u64()).unwrap_or(0),
        })
    }

    /// Enqueue + flush in one call — the common per-interval push.
    pub fn publish(&mut self, body: String, produced_ms: i64) -> Result<PushReport, String> {
        self.enqueue(body, produced_ms);
        self.flush()
    }
}
