//! Immutable time-partitioned blocks for the long-term store.
//!
//! The hot TSDB replicates sealed time windows into these blocks (the
//! Thanos role in Fig. 1). Each block holds compressed chunks keyed by
//! label set; selection is a scan + matcher filter, which is fine for the
//! cold path.

use std::sync::Arc;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::{matches_all, LabelMatcher};

use crate::chunk::XorChunk;
use crate::types::{Sample, SeriesData};

/// An immutable block covering `[min_t, max_t]`. Label sets are shared with
/// the hot TSDB's registry, so sealing a window never copies label strings.
pub struct Block {
    min_t: i64,
    max_t: i64,
    series: Vec<(Arc<LabelSet>, XorChunk)>,
}

impl Block {
    /// Builds a block from series data. Series out of time order are
    /// skipped sample-wise (callers hand over sorted data).
    pub fn from_series(series: Vec<SeriesData>) -> Block {
        let mut min_t = i64::MAX;
        let mut max_t = i64::MIN;
        let mut out = Vec::with_capacity(series.len());
        for s in series {
            if s.samples.is_empty() {
                continue;
            }
            let mut chunk = XorChunk::new();
            for sample in &s.samples {
                if chunk.append(*sample).is_ok() {
                    min_t = min_t.min(sample.t_ms);
                    max_t = max_t.max(sample.t_ms);
                }
            }
            if !chunk.is_empty() {
                out.push((s.labels, chunk));
            }
        }
        Block {
            min_t,
            max_t,
            series: out,
        }
    }

    /// Earliest sample time.
    pub fn min_time(&self) -> i64 {
        self.min_t
    }

    /// Latest sample time.
    pub fn max_time(&self) -> i64 {
        self.max_t
    }

    /// Series count.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total compressed bytes.
    pub fn byte_len(&self) -> usize {
        self.series.iter().map(|(_, c)| c.byte_len()).sum()
    }

    /// Selects matching series restricted to `[tmin, tmax]`.
    pub fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        if tmax < self.min_t || tmin > self.max_t {
            return Vec::new();
        }
        self.series
            .iter()
            .filter(|(labels, _)| matches_all(matchers, labels))
            .filter_map(|(labels, chunk)| {
                let samples: Vec<Sample> = chunk
                    .iter()
                    .filter(|s| s.t_ms >= tmin && s.t_ms <= tmax)
                    .collect();
                (!samples.is_empty()).then(|| SeriesData {
                    labels: labels.clone(),
                    samples,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn block() -> Block {
        Block::from_series(vec![
            SeriesData::new(
                labels! {"__name__" => "m", "instance" => "n1"},
                (0..10).map(|i| Sample::new(i * 1000, i as f64)).collect(),
            ),
            SeriesData::new(
                labels! {"__name__" => "m", "instance" => "n2"},
                (5..15).map(|i| Sample::new(i * 1000, 0.0)).collect(),
            ),
            SeriesData::new(labels! {"__name__" => "empty"}, vec![]),
        ])
    }

    #[test]
    fn build_and_bounds() {
        let b = block();
        assert_eq!(b.series_count(), 2); // empty series dropped
        assert_eq!(b.min_time(), 0);
        assert_eq!(b.max_time(), 14_000);
        assert!(b.byte_len() > 0);
    }

    #[test]
    fn select_with_matchers_and_range() {
        let b = block();
        let got = b.select(&[LabelMatcher::eq("instance", "n1")], 2_000, 4_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].samples.len(), 3);

        let all = b.select(&[LabelMatcher::eq("__name__", "m")], 0, i64::MAX);
        assert_eq!(all.len(), 2);

        // Disjoint range short-circuits.
        assert!(b.select(&[], 100_000, 200_000).is_empty());
    }
}
