//! Matcher-result posting cache.
//!
//! Regex and negative matchers can't use posting lists directly: the index
//! has to scan the label's whole value space (regex union) or walk every
//! candidate series (negatives). Dashboards re-issue the same selectors every
//! refresh, so memoizing `matcher set → series ids` turns that repeated scan
//! into a hash lookup.
//!
//! Correctness hinges on invalidation: every entry is tagged with the
//! [`LabelIndex`](crate::index::LabelIndex) generation it was computed at,
//! and the index bumps its generation on every series creation or removal.
//! A lookup with a newer generation treats the entry as dead — the cache can
//! never serve ids across a membership change.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use ceems_metrics::matcher::LabelMatcher;

use crate::types::SeriesId;

/// One memoized matcher resolution.
#[derive(Debug)]
struct Entry {
    /// Index generation the ids were computed at.
    generation: u64,
    /// Logical clock of the last hit, for LRU eviction.
    last_used: u64,
    /// The resolved, sorted series ids.
    ids: Arc<Vec<SeriesId>>,
}

/// LRU cache of matcher-set resolutions, generation-checked.
#[derive(Debug, Default)]
pub struct PostingCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
}

/// Hit/miss counters, exposed for introspection and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the index (including stale entries).
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
}

impl PostingCache {
    /// Cache holding at most `capacity` entries. Zero disables caching:
    /// every lookup misses and inserts are dropped.
    pub fn new(capacity: usize) -> PostingCache {
        PostingCache {
            capacity,
            ..PostingCache::default()
        }
    }

    /// Fetches the ids for `key` if present and computed at `generation`.
    /// A stale entry (older generation) is evicted and reported as a miss.
    pub fn get(&mut self, key: &str, generation: u64) -> Option<Arc<Vec<SeriesId>>> {
        match self.entries.get_mut(key) {
            Some(e) if e.generation == generation => {
                self.clock += 1;
                e.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&e.ids))
            }
            Some(_) => {
                self.entries.remove(key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a resolution computed at `generation`, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&mut self, key: String, generation: u64, ids: Arc<Vec<SeriesId>>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            Entry {
                generation,
                last_used: self.clock,
                ids,
            },
        );
    }

    /// Drops every entry (used when the caller wants a hard reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.entries.len(),
        }
    }
}

/// Number of independently locked [`PostingCache`] shards. Concurrent
/// selects resolving different keys take different locks, so the cache no
/// longer serializes the resolve phase the parallel read path depends on.
const CACHE_SHARDS: usize = 8;

/// A [`PostingCache`] split over [`CACHE_SHARDS`] independently locked
/// shards, keyed by key hash. Capacity is divided evenly (rounding up) so
/// the configured total is an upper bound across shards; LRU eviction is
/// per shard, an acceptable approximation for dashboard-shaped workloads.
#[derive(Debug)]
pub struct ShardedPostingCache {
    shards: Vec<Mutex<PostingCache>>,
}

impl ShardedPostingCache {
    /// Sharded cache holding at most ~`capacity` entries in total. Zero
    /// disables caching in every shard.
    pub fn new(capacity: usize) -> ShardedPostingCache {
        let shards = if capacity == 0 { 1 } else { CACHE_SHARDS.min(capacity) };
        let per_shard = capacity.div_ceil(shards);
        ShardedPostingCache {
            shards: (0..shards)
                .map(|_| Mutex::new(PostingCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<PostingCache> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    /// Fetches `key`'s ids if cached at `generation` (see
    /// [`PostingCache::get`]).
    pub fn get(&self, key: &str, generation: u64) -> Option<Arc<Vec<SeriesId>>> {
        self.shard(key).lock().get(key, generation)
    }

    /// Stores a resolution computed at `generation`.
    pub fn insert(&self, key: String, generation: u64, ids: Arc<Vec<SeriesId>>) {
        self.shard(&key).lock().insert(key, generation, ids);
    }

    /// Counters aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.len += s.len;
        }
        total
    }
}

/// Canonical cache key for a matcher set, or `None` when the query is not
/// worth caching.
///
/// Exact-only selectors already resolve through sorted posting-list
/// intersections — caching them would just duplicate the index. Only sets
/// containing at least one regex or negative matcher (the scan-heavy shapes)
/// get a key. Matchers are rendered and sorted so `{a="1", b=~"x"}` and
/// `{b=~"x", a="1"}` share an entry.
pub fn cache_key(matchers: &[LabelMatcher]) -> Option<String> {
    if matchers.is_empty() || matchers.iter().all(|m| m.is_exact()) {
        return None;
    }
    let mut parts: Vec<String> = matchers.iter().map(|m| m.to_string()).collect();
    parts.sort_unstable();
    // 0x1f (unit separator) can't appear unescaped in a rendered matcher.
    Some(parts.join("\x1f"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::matcher::MatchOp;

    fn ids(v: &[SeriesId]) -> Arc<Vec<SeriesId>> {
        Arc::new(v.to_vec())
    }

    #[test]
    fn hit_requires_matching_generation() {
        let mut c = PostingCache::new(4);
        c.insert("k".into(), 7, ids(&[1, 2]));
        assert_eq!(c.get("k", 7).as_deref(), Some(&vec![1, 2]));
        // Generation moved: stale entry must not be served.
        assert!(c.get("k", 8).is_none());
        // And it was evicted, not kept around.
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PostingCache::new(2);
        c.insert("a".into(), 1, ids(&[1]));
        c.insert("b".into(), 1, ids(&[2]));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get("a", 1).is_some());
        c.insert("c".into(), 1, ids(&[3]));
        assert!(c.get("b", 1).is_none());
        assert!(c.get("a", 1).is_some());
        assert!(c.get("c", 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PostingCache::new(0);
        c.insert("k".into(), 1, ids(&[1]));
        assert!(c.get("k", 1).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn sharded_cache_round_trips_and_aggregates_stats() {
        // Capacity well above the key count so per-shard LRU never evicts
        // even under a skewed key→shard hash.
        let c = ShardedPostingCache::new(256);
        for i in 0..32u64 {
            c.insert(format!("k{i}"), 1, ids(&[i]));
        }
        for i in 0..32u64 {
            assert_eq!(c.get(&format!("k{i}"), 1).as_deref(), Some(&vec![i]));
        }
        assert!(c.get("k0", 2).is_none(), "stale generation must miss");
        let s = c.stats();
        assert_eq!(s.hits, 32);
        assert_eq!(s.misses, 1);
        assert_eq!(s.len, 31, "stale entry evicted on miss");
    }

    #[test]
    fn sharded_cache_zero_capacity_disables() {
        let c = ShardedPostingCache::new(0);
        c.insert("k".into(), 1, ids(&[1]));
        assert!(c.get("k", 1).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn key_skips_exact_only_and_empty_sets() {
        assert!(cache_key(&[]).is_none());
        assert!(cache_key(&[LabelMatcher::eq("a", "1")]).is_none());
        let re = LabelMatcher::new("b", MatchOp::Re, "x.*").unwrap();
        assert!(cache_key(&[LabelMatcher::eq("a", "1"), re]).is_some());
        let ne = LabelMatcher::new("b", MatchOp::Ne, "x").unwrap();
        assert!(cache_key(&[ne]).is_some());
    }

    #[test]
    fn key_is_order_insensitive() {
        let re = LabelMatcher::new("b", MatchOp::Re, "x.*").unwrap();
        let eq = LabelMatcher::eq("a", "1");
        let k1 = cache_key(&[eq.clone(), re.clone()]).unwrap();
        let k2 = cache_key(&[re, eq]).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn key_distinguishes_different_sets() {
        let re1 = LabelMatcher::new("b", MatchOp::Re, "x.*").unwrap();
        let re2 = LabelMatcher::new("b", MatchOp::Re, "y.*").unwrap();
        assert_ne!(cache_key(std::slice::from_ref(&re1)), cache_key(&[re2]));
        let nre = LabelMatcher::new("b", MatchOp::Nre, "x.*").unwrap();
        assert_ne!(cache_key(&[re1]), cache_key(&[nre]));
    }
}
