//! Gorilla-style chunk compression.
//!
//! Timestamps are stored as delta-of-delta with the Prometheus prefix
//! codes; values use Facebook Gorilla's XOR scheme. Monitoring data — a
//! fixed scrape interval and slowly moving values — compresses to a couple
//! of bits per sample, which is what lets one Prometheus host ingest a
//! 1,400-node fleet.

use crate::types::Sample;

/// Append-only bit writer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0..=8; 0 means byte boundary).
    used: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes one bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 || self.used == 8 {
            self.bytes.push(0);
            self.used = 0;
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    /// Writes the low `n` bits of `v`, most-significant first.
    pub fn write_bits(&mut self, v: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Byte view of the stream.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Sequential bit reader.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over a byte stream.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits MSB-first.
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A compressed chunk of one series.
#[derive(Clone, Debug, Default)]
pub struct XorChunk {
    w: BitWriter,
    count: u32,
    // Appender state.
    last_t: i64,
    last_delta: i64,
    last_v: u64,
    leading: u8,
    trailing: u8,
    min_t: i64,
    max_t: i64,
}

impl XorChunk {
    /// New empty chunk.
    pub fn new() -> XorChunk {
        XorChunk {
            min_t: i64::MAX,
            max_t: i64::MIN,
            ..Default::default()
        }
    }

    /// Samples stored.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Earliest timestamp (meaningless when empty).
    pub fn min_time(&self) -> i64 {
        self.min_t
    }

    /// Latest timestamp (meaningless when empty).
    pub fn max_time(&self) -> i64 {
        self.max_t
    }

    /// Compressed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.w.as_bytes().len()
    }

    /// Appends a sample. Timestamps must be non-decreasing; out-of-order
    /// samples are rejected (the head drops them, as Prometheus does).
    pub fn append(&mut self, s: Sample) -> Result<(), OutOfOrder> {
        if self.count > 0 && s.t_ms < self.last_t {
            return Err(OutOfOrder {
                at: s.t_ms,
                head: self.last_t,
            });
        }
        match self.count {
            0 => {
                self.w.write_bits(zigzag(s.t_ms), 64);
                self.w.write_bits(s.v.to_bits(), 64);
                self.last_t = s.t_ms;
                self.last_v = s.v.to_bits();
                // Sentinels meaning "no previous XOR window".
                self.leading = 0xff;
                self.trailing = 0;
            }
            1 => {
                let delta = s.t_ms - self.last_t;
                write_varbits(&mut self.w, zigzag(delta), 64);
                self.write_value(s.v);
                self.last_delta = delta;
                self.last_t = s.t_ms;
            }
            _ => {
                let delta = s.t_ms - self.last_t;
                let dod = delta - self.last_delta;
                self.write_dod(dod);
                self.write_value(s.v);
                self.last_delta = delta;
                self.last_t = s.t_ms;
            }
        }
        self.count += 1;
        self.min_t = self.min_t.min(s.t_ms);
        self.max_t = self.max_t.max(s.t_ms);
        Ok(())
    }

    fn write_dod(&mut self, dod: i64) {
        // Prometheus prefix codes: 0 | 10+14b | 110+17b | 1110+20b | 1111+64b.
        let z = zigzag(dod);
        if dod == 0 {
            self.w.write_bit(false);
        } else if fits_bits(z, 14) {
            self.w.write_bits(0b10, 2);
            self.w.write_bits(z, 14);
        } else if fits_bits(z, 17) {
            self.w.write_bits(0b110, 3);
            self.w.write_bits(z, 17);
        } else if fits_bits(z, 20) {
            self.w.write_bits(0b1110, 4);
            self.w.write_bits(z, 20);
        } else {
            self.w.write_bits(0b1111, 4);
            self.w.write_bits(z, 64);
        }
    }

    fn write_value(&mut self, v: f64) {
        let bits = v.to_bits();
        let xor = bits ^ self.last_v;
        self.last_v = bits;
        if xor == 0 {
            self.w.write_bit(false);
            return;
        }
        self.w.write_bit(true);
        let leading = xor.leading_zeros().min(31) as u8;
        let trailing = xor.trailing_zeros() as u8;
        if self.leading != 0xff && leading >= self.leading && trailing >= self.trailing {
            // Reuse the previous window.
            self.w.write_bit(false);
            let sig = 64 - self.leading - self.trailing;
            self.w.write_bits(xor >> self.trailing, sig);
        } else {
            self.leading = leading;
            self.trailing = trailing;
            let sig = 64 - leading - trailing;
            self.w.write_bit(true);
            self.w.write_bits(leading as u64, 5);
            // 6 bits of significant-bit count; 64 wraps to 0.
            self.w.write_bits((sig & 63) as u64, 6);
            self.w.write_bits(xor >> trailing, sig);
        }
    }

    /// Iterates the samples back out.
    pub fn iter(&self) -> ChunkIter<'_> {
        ChunkIter {
            r: BitReader::new(self.w.as_bytes()),
            remaining: self.count,
            state: IterState::default(),
        }
    }
}

fn fits_bits(z: u64, n: u8) -> bool {
    z < (1u64 << n)
}

/// Writes `z` as either a compact or full-width field. Used for the second
/// sample's delta: 14-bit fast path, 64-bit escape.
fn write_varbits(w: &mut BitWriter, z: u64, _max: u8) {
    if fits_bits(z, 14) {
        w.write_bit(false);
        w.write_bits(z, 14);
    } else {
        w.write_bit(true);
        w.write_bits(z, 64);
    }
}

fn read_varbits(r: &mut BitReader<'_>) -> Option<u64> {
    if r.read_bit()? {
        r.read_bits(64)
    } else {
        r.read_bits(14)
    }
}

/// Error appending an out-of-order sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfOrder {
    /// Rejected timestamp.
    pub at: i64,
    /// Current head timestamp.
    pub head: i64,
}

impl std::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out-of-order sample at {} (head {})", self.at, self.head)
    }
}

impl std::error::Error for OutOfOrder {}

#[derive(Default)]
struct IterState {
    t: i64,
    delta: i64,
    v: u64,
    leading: u8,
    trailing: u8,
    read: u32,
}

/// Iterator over a chunk's samples.
pub struct ChunkIter<'a> {
    r: BitReader<'a>,
    remaining: u32,
    state: IterState,
}

impl Iterator for ChunkIter<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let st = &mut self.state;
        match st.read {
            0 => {
                st.t = unzigzag(self.r.read_bits(64)?);
                st.v = self.r.read_bits(64)?;
            }
            1 => {
                st.delta = unzigzag(read_varbits(&mut self.r)?);
                st.t += st.delta;
                read_value(&mut self.r, st)?;
            }
            _ => {
                let dod = if !self.r.read_bit()? {
                    0
                } else if !self.r.read_bit()? {
                    unzigzag(self.r.read_bits(14)?)
                } else if !self.r.read_bit()? {
                    unzigzag(self.r.read_bits(17)?)
                } else if !self.r.read_bit()? {
                    unzigzag(self.r.read_bits(20)?)
                } else {
                    unzigzag(self.r.read_bits(64)?)
                };
                st.delta += dod;
                st.t += st.delta;
                read_value(&mut self.r, st)?;
            }
        }
        st.read += 1;
        Some(Sample {
            t_ms: st.t,
            v: f64::from_bits(st.v),
        })
    }
}

fn read_value(r: &mut BitReader<'_>, st: &mut IterState) -> Option<()> {
    if !r.read_bit()? {
        return Some(()); // unchanged
    }
    if r.read_bit()? {
        st.leading = r.read_bits(5)? as u8;
        let sig = r.read_bits(6)? as u8;
        let sig = if sig == 0 { 64 } else { sig };
        st.trailing = 64 - st.leading - sig;
    }
    let sig = 64 - st.leading - st.trailing;
    let bits = r.read_bits(sig)?;
    st.v ^= bits << st.trailing;
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[Sample]) {
        let mut c = XorChunk::new();
        for &s in samples {
            c.append(s).unwrap();
        }
        let back: Vec<Sample> = c.iter().collect();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(back.iter()) {
            assert_eq!(a.t_ms, b.t_ms);
            assert!(
                a.v == b.v || (a.v.is_nan() && b.v.is_nan()),
                "value mismatch: {} vs {}",
                a.v,
                b.v
            );
        }
    }

    #[test]
    fn bitstream_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0b1011, 4);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 3);
        let mut r = BitReader::new(w.as_bytes());
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(3), Some(0));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_and_single() {
        let c = XorChunk::new();
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
        roundtrip(&[Sample::new(1700000000000, 42.5)]);
    }

    #[test]
    fn regular_scrape_pattern() {
        let samples: Vec<Sample> = (0..1000)
            .map(|i| Sample::new(1700000000000 + i * 15_000, 100.0 + (i as f64) * 0.5))
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn constant_values_compress_tiny() {
        let mut c = XorChunk::new();
        for i in 0..1000 {
            c.append(Sample::new(i * 15_000, 1.0)).unwrap();
        }
        // ~2 bits/sample after the first two: far below raw 16 B/sample.
        assert!(c.byte_len() < 1000, "compressed to {} bytes", c.byte_len());
        roundtrip(&(0..1000).map(|i| Sample::new(i * 15_000, 1.0)).collect::<Vec<_>>());
    }

    #[test]
    fn irregular_timestamps_and_values() {
        let samples = vec![
            Sample::new(-5_000, -1.5),
            Sample::new(0, 0.0),
            Sample::new(1, f64::MAX),
            Sample::new(50_000, f64::MIN_POSITIVE),
            Sample::new(50_001, f64::INFINITY),
            Sample::new(100_000, f64::NEG_INFINITY),
            Sample::new(2_000_000_000, f64::NAN),
            Sample::new(2_000_000_001, 1e-300),
        ];
        roundtrip(&samples);
    }

    #[test]
    fn duplicate_timestamps_allowed_out_of_order_rejected() {
        let mut c = XorChunk::new();
        c.append(Sample::new(100, 1.0)).unwrap();
        c.append(Sample::new(100, 2.0)).unwrap(); // duplicate ts OK
        let err = c.append(Sample::new(99, 3.0)).unwrap_err();
        assert_eq!(err, OutOfOrder { at: 99, head: 100 });
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn min_max_time_tracked() {
        let mut c = XorChunk::new();
        c.append(Sample::new(10, 1.0)).unwrap();
        c.append(Sample::new(30, 1.0)).unwrap();
        assert_eq!(c.min_time(), 10);
        assert_eq!(c.max_time(), 30);
    }

    #[test]
    fn counter_like_series() {
        // Monotonic counter with occasional large jumps (RAPL energy).
        let mut v = 0.0;
        let samples: Vec<Sample> = (0..500)
            .map(|i| {
                v += 150.0 * 15.0 * 1e6; // µJ per scrape
                if i % 97 == 0 {
                    v = 0.0; // wraparound reset
                }
                Sample::new(i * 15_000, v)
            })
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn compression_ratio_on_realistic_data() {
        let mut c = XorChunk::new();
        let n = 2000;
        for i in 0..n {
            // 15s cadence with 1ms jitter, slowly varying gauge.
            let t = i * 15_000 + (i % 3);
            let v = 250.0 + 10.0 * ((i as f64) * 0.05).sin();
            c.append(Sample::new(t, v)).unwrap();
        }
        let raw = n as usize * 16;
        let ratio = raw as f64 / c.byte_len() as f64;
        // Full-precision noisy floats are the worst case for XOR encoding;
        // even there the scheme must beat raw well clear of overhead.
        assert!(ratio > 1.5, "compression ratio only {ratio:.2}");

        // The favourable (and common) case: exact fixed-rate counter at a
        // jitter-free cadence compresses ~10x or better.
        let mut c2 = XorChunk::new();
        for i in 0..n {
            c2.append(Sample::new(i * 15_000, (i * 150) as f64)).unwrap();
        }
        let ratio2 = raw as f64 / c2.byte_len() as f64;
        assert!(ratio2 > 5.0, "counter compression ratio only {ratio2:.2}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn chunk_roundtrips_any_monotonic_series(
            start in -1_000_000_000i64..1_000_000_000,
            deltas in proptest::collection::vec(0i64..10_000_000, 0..200),
            values in proptest::collection::vec(proptest::num::f64::ANY, 0..200),
        ) {
            let n = deltas.len().min(values.len());
            let mut t = start;
            let mut samples = Vec::with_capacity(n);
            for i in 0..n {
                t += deltas[i];
                samples.push(Sample::new(t, values[i]));
            }
            let mut c = XorChunk::new();
            for &s in &samples {
                c.append(s).unwrap();
            }
            let back: Vec<Sample> = c.iter().collect();
            prop_assert_eq!(back.len(), samples.len());
            for (a, b) in samples.iter().zip(back.iter()) {
                prop_assert_eq!(a.t_ms, b.t_ms);
                prop_assert!(a.v.to_bits() == b.v.to_bits());
            }
        }
    }
}
