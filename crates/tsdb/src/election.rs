//! Leader failover for the TSDB replication group (S24).
//!
//! A [`ReplicationGroup`] runs N durable TSDB nodes — one leader serving
//! writes, the rest [`WalFollower`]s streaming its WAL — and a
//! deterministic failover coordinator driven by an external clock (the
//! stack's sim clock), so chaos tests replay identically per seed:
//!
//! * **Probe**: every `probe_interval_ms` the coordinator probes the
//!   leader's `/api/v1/wal/position` directly. Misses accumulate; after
//!   `election_timeout_ms` without a successful probe an election runs.
//! * **Election**: among reachable followers the highest
//!   `(epoch, replicated records, node id)` wins, gated on being within
//!   `min_catchup_records` of the dead leader's last reported position.
//!   The winner durably bumps the epoch ([`Tsdb::bump_epoch`] logs and
//!   fsyncs an `EpochBump` record *before* the role flips) — the fence:
//!   any write stamped with the old epoch is now rejected with
//!   `409 stale-epoch` by every node that has seen the bump.
//! * **Re-route**: the shared [`WriteRouter`] repoints at the new leader
//!   and new epoch; in-process writers (scrape, stream sink, rule writes)
//!   pick it up on their next append. Surviving followers re-target their
//!   catch-up streams at the new leader, resuming at their replicated
//!   record count via `/api/v1/wal/locate`.
//! * **Rejoin**: a restarted ex-leader compares its WAL tail against the
//!   new leader's epoch history, truncates the divergent suffix (records
//!   past the successor epoch's `start_records` were never replicated —
//!   never acknowledged by the cluster), reopens, and re-enters as a
//!   follower through the ordinary catch-up protocol. If the new leader
//!   had ever checkpoint-resynced (its local record units no longer match
//!   the stream's), the rejoiner re-bootstraps from a checkpoint instead —
//!   slower, never wrong.
//!
//! Every transition appends a line to the coordinator's event log; the log
//! is the failover trace chaos tests compare across same-seed runs (it
//! contains node ids, epochs and record counts — never ports or wall
//! times).

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;

use ceems_http::{Client, HttpServer, ServerConfig};
use ceems_metrics::labels::LabelSet;
use ceems_obs::trace::QueryTrace;
use ceems_obs::TraceSink;

use crate::httpapi::{api_router, NowFn};
use crate::replica::WalFollower;
use crate::storage::{StaleEpoch, Tsdb, TsdbConfig};
use crate::wal::{self, TruncateOutcome, WalOptions};

/// Failover tuning (the YAML `failover:` section).
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// How often the coordinator probes the leader, in coordinator-clock
    /// milliseconds.
    pub probe_interval_ms: i64,
    /// How long the leader may stay unreachable before an election runs.
    pub election_timeout_ms: i64,
    /// A follower must be within this many records of the dead leader's
    /// last reported position to be promotable; elections defer (the group
    /// stays leaderless, writes fail fast) until a candidate qualifies.
    pub min_catchup_records: u64,
    /// Catch-up polls granted to each follower per [`ReplicationGroup::tick`].
    pub catchup_polls: u32,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            probe_interval_ms: 1_000,
            election_timeout_ms: 3_000,
            min_catchup_records: u64::MAX,
            catchup_polls: 64,
        }
    }
}

/// A node's current role in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Serving writes at the current epoch.
    Leader,
    /// Streaming the leader's WAL.
    Follower,
    /// Killed or deposed; must rejoin before serving again.
    Down,
}

struct Node {
    id: String,
    dir: PathBuf,
    db: Arc<Tsdb>,
    server: Option<HttpServer>,
    url: String,
    follower: Option<WalFollower>,
    role: NodeRole,
    /// Local WAL record counts still match the replicated stream's units
    /// (falsified by a checkpoint resync; a non-aligned leader forces
    /// rejoiners onto the full re-bootstrap path).
    aligned: bool,
}

/// The current write route: who serves writes, at which epoch.
#[derive(Clone)]
pub struct Route {
    /// The epoch writes must be stamped with.
    pub epoch: u64,
    /// The leader's node id (empty while leaderless).
    pub leader_id: String,
    /// The leader's base URL (HTTP writers).
    pub leader_url: String,
    /// The leader's database (in-process writers). `None` while leaderless.
    pub db: Option<Arc<Tsdb>>,
}

/// Shared, swappable handle to the current leader. In-process writers
/// (scrape, stream sink, rule writes) capture a clone at build time and
/// follow every failover without re-wiring.
#[derive(Clone)]
pub struct WriteRouter {
    inner: Arc<RwLock<Route>>,
}

impl WriteRouter {
    fn new(route: Route) -> WriteRouter {
        WriteRouter {
            inner: Arc::new(RwLock::new(route)),
        }
    }

    /// A snapshot of the current route.
    pub fn route(&self) -> Route {
        self.inner.read().clone()
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// The current leader's database, when one is elected.
    pub fn leader_db(&self) -> Option<Arc<Tsdb>> {
        self.inner.read().db.clone()
    }

    /// Appends through the current route, stamped with the route's epoch.
    /// Fails fast while leaderless; a concurrent failover between snapshot
    /// and append surfaces as the fence's `StaleEpoch`.
    pub fn append_batch(&self, batch: &[(LabelSet, i64, f64)]) -> Result<(), String> {
        let route = self.route();
        let Some(db) = route.db else {
            return Err("no leader elected".to_string());
        };
        db.append_batch_fenced(route.epoch, batch)
            .map_err(|e: StaleEpoch| e.to_string())
    }

    fn swap(&self, route: Route) {
        *self.inner.write() = route;
    }
}

/// A replication group with automatic leader failover.
pub struct ReplicationGroup {
    cfg: FailoverConfig,
    wal_opts: WalOptions,
    tsdb_cfg: TsdbConfig,
    now: NowFn,
    nodes: Vec<Node>,
    leader: Option<usize>,
    /// Last coordinator time the leader answered a probe.
    leader_ok_ms: i64,
    /// The leader's reported record count at its last successful probe —
    /// the yardstick `min_catchup_records` measures candidates against.
    leader_records: u64,
    last_probe_ms: i64,
    epoch: u64,
    router: WriteRouter,
    events: Vec<String>,
    failovers: u64,
    probe_client: Client,
    trace_sink: Option<Arc<TraceSink>>,
}

impl ReplicationGroup {
    /// Builds an `n`-node group under `base_dir` (one WAL directory per
    /// node), elects node 0 leader at epoch 1, and starts the remaining
    /// nodes as followers streaming from genesis. `now` is the
    /// coordinator's clock (the stack passes its sim clock) — it stamps the
    /// event log and paces probes, so a fixed seed replays identically.
    pub fn new(
        base_dir: &std::path::Path,
        n: usize,
        wal_opts: WalOptions,
        tsdb_cfg: TsdbConfig,
        cfg: FailoverConfig,
        now: NowFn,
    ) -> io::Result<ReplicationGroup> {
        assert!(n >= 2, "a replication group needs at least 2 nodes");
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let id = format!("node-{i}");
            let dir = base_dir.join(&id);
            let db = Arc::new(Tsdb::open(&dir, wal_opts, tsdb_cfg.clone())?);
            db.set_leader(false);
            let server = HttpServer::serve(
                ServerConfig::ephemeral(),
                api_router(db.clone(), now.clone()),
            )
            .map_err(io::Error::other)?;
            let url = server.base_url().to_string();
            nodes.push(Node {
                id,
                dir,
                db,
                server: Some(server),
                url,
                follower: None,
                role: NodeRole::Follower,
                aligned: true,
            });
        }

        // Node 0 leads. A fresh group starts at epoch 1 so epoch 0 can
        // never be a valid write epoch; a reopened group resumes from
        // whatever epoch its WAL recorded.
        let start_ms = now();
        let leader_db = nodes[0].db.clone();
        let epoch = if leader_db.current_epoch() == 0 {
            let at = leader_db.reported_wal_position().records;
            leader_db.bump_epoch(1, at)?
        } else {
            leader_db.current_epoch()
        };
        leader_db.set_leader(true);
        nodes[0].role = NodeRole::Leader;
        let leader_url = nodes[0].url.clone();
        for node in nodes.iter_mut().skip(1) {
            let f = WalFollower::new(node.db.clone(), leader_url.clone())
                .with_follower_id(node.id.clone());
            node.follower = Some(f);
        }

        let router = WriteRouter::new(Route {
            epoch,
            leader_id: nodes[0].id.clone(),
            leader_url,
            db: Some(leader_db),
        });
        let mut group = ReplicationGroup {
            cfg,
            wal_opts,
            tsdb_cfg,
            now,
            nodes,
            leader: Some(0),
            leader_ok_ms: start_ms,
            leader_records: 0,
            last_probe_ms: i64::MIN / 2,
            epoch,
            router,
            events: Vec::new(),
            failovers: 0,
            probe_client: Client::new(),
            trace_sink: None,
        };
        group.event(start_ms, format!("start epoch={epoch} leader=node-0 nodes={n}"));
        Ok(group)
    }

    /// Attaches the shared trace sink: elections record an `election` stage
    /// through it, so failovers show up in the durable trace store.
    pub fn with_trace_sink(mut self, sink: Arc<TraceSink>) -> ReplicationGroup {
        self.trace_sink = Some(sink);
        self
    }

    /// The shared write route (clone freely; every clone follows failovers).
    pub fn write_router(&self) -> WriteRouter {
        self.router.clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current leader's node id, when one is elected.
    pub fn leader_id(&self) -> Option<&str> {
        self.leader.map(|i| self.nodes[i].id.as_str())
    }

    /// Completed failovers (elections that promoted a new leader).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Fenced (stale-epoch) writes rejected across all nodes.
    pub fn fenced_writes(&self) -> u64 {
        self.nodes.iter().map(|n| n.db.fenced_writes()).sum()
    }

    /// The coordinator's event log: one line per transition (probe misses,
    /// elections, re-routes, rejoins). Deterministic under a fixed clock
    /// and kill schedule — the failover trace.
    pub fn events(&self) -> Vec<String> {
        self.events.clone()
    }

    /// Node ids with their roles, in creation order.
    pub fn roles(&self) -> Vec<(String, NodeRole)> {
        self.nodes.iter().map(|n| (n.id.clone(), n.role)).collect()
    }

    /// The node's database (tests compare replica contents).
    pub fn node_db(&self, id: &str) -> Option<Arc<Tsdb>> {
        self.node_idx(id).map(|i| self.nodes[i].db.clone())
    }

    /// The node's current base URL, while its server is up.
    pub fn node_url(&self, id: &str) -> Option<String> {
        self.node_idx(id)
            .filter(|&i| self.nodes[i].server.is_some())
            .map(|i| self.nodes[i].url.clone())
    }

    /// Every live node's `(id, url)` — what an LB builds its backend pool
    /// from.
    pub fn live_urls(&self) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .filter(|n| n.server.is_some())
            .map(|n| (n.id.clone(), n.url.clone()))
            .collect()
    }

    fn node_idx(&self, id: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    fn event(&mut self, now_ms: i64, line: String) {
        self.events.push(format!("t={now_ms} {line}"));
    }

    /// Kills a node: its HTTP server stops answering (probes, catch-up and
    /// routed writes all start failing). State on disk is kept — the node
    /// can [`Self::rejoin`] later.
    pub fn kill(&mut self, id: &str) {
        let now_ms = (self.now)();
        let Some(i) = self.node_idx(id) else { return };
        if let Some(server) = self.nodes[i].server.take() {
            server.shutdown();
        }
        self.nodes[i].follower = None;
        if self.nodes[i].role != NodeRole::Leader {
            // A killed follower is down immediately; a killed leader stays
            // nominally Leader until the probe timeout deposes it — that
            // window is exactly the failover gap the tests measure.
            self.nodes[i].role = NodeRole::Down;
        }
        self.event(now_ms, format!("kill node={id}"));
    }

    /// Drives the coordinator one step at coordinator time `now_ms`: pumps
    /// follower catch-up, probes the leader on its interval, and runs an
    /// election once the leader has been unreachable past the timeout.
    pub fn tick(&mut self, now_ms: i64) {
        // Pump followers first so election-time positions are as fresh as
        // the surviving replicas can be.
        for node in &mut self.nodes {
            if let Some(f) = &mut node.follower {
                for _ in 0..self.cfg.catchup_polls {
                    match f.poll_once() {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }
        }

        if now_ms - self.last_probe_ms < self.cfg.probe_interval_ms {
            return;
        }
        self.last_probe_ms = now_ms;

        let Some(leader_idx) = self.leader else {
            // Leaderless: retry the election every probe interval (a
            // deferred election may now have a caught-up candidate).
            self.elect(now_ms);
            return;
        };
        match self.probe(leader_idx) {
            Some(records) => {
                self.leader_ok_ms = now_ms;
                self.leader_records = records;
            }
            None => {
                let down_for = now_ms - self.leader_ok_ms;
                let id = self.nodes[leader_idx].id.clone();
                self.event(now_ms, format!("probe-miss leader={id} down_for_ms={down_for}"));
                if down_for >= self.cfg.election_timeout_ms {
                    self.nodes[leader_idx].role = NodeRole::Down;
                    self.leader = None;
                    self.event(now_ms, format!("depose leader={id}"));
                    self.elect(now_ms);
                }
            }
        }
    }

    /// Probes a node's WAL position over HTTP (the direct probe — a dead
    /// server refuses the connection). Returns its reported record count.
    fn probe(&self, idx: usize) -> Option<u64> {
        let node = &self.nodes[idx];
        node.server.as_ref()?;
        let url = format!("{}/api/v1/wal/position", node.url);
        let resp = self.probe_client.get(&url).ok()?;
        if !resp.status.is_success() {
            return None;
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body).ok()?;
        v["data"]["records"].as_u64()
    }

    /// Runs one election round. Deterministic: candidates are the live
    /// followers, the highest `(epoch, records, id)` wins, and the winner
    /// must be within `min_catchup_records` of the dead leader's last
    /// reported position — otherwise the election defers and the group
    /// stays leaderless until the next tick.
    fn elect(&mut self, now_ms: i64) {
        let qtrace = QueryTrace::begin(None);
        let stage = qtrace.stage("election");

        let mut best: Option<(u64, u64, usize)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if node.role != NodeRole::Follower || node.server.is_none() {
                continue;
            }
            let key = (
                node.db.current_epoch(),
                node.db.reported_wal_position().records,
                i,
            );
            // Node ids are `node-<i>`, so the index IS the stable tiebreak.
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let Some((cand_epoch, cand_records, winner)) = best else {
            self.event(now_ms, "election-deferred reason=no-candidates".to_string());
            stage.finish();
            return;
        };
        if self.leader_records.saturating_sub(cand_records) > self.cfg.min_catchup_records {
            self.event(
                now_ms,
                format!(
                    "election-deferred reason=catchup best={cand_records} leader_had={}",
                    self.leader_records
                ),
            );
            stage.finish();
            return;
        }

        let new_epoch = self.epoch.max(cand_epoch) + 1;
        let winner_id = self.nodes[winner].id.clone();
        {
            let node = &mut self.nodes[winner];
            node.follower = None;
            // Durable fence first: the bump is logged + fsynced before the
            // role flips, so a crash mid-promotion never leaves a fenceless
            // leader.
            if let Err(e) = node.db.bump_epoch(new_epoch, cand_records) {
                self.event(now_ms, format!("election-failed node={winner_id} err={e}"));
                stage.finish();
                return;
            }
            node.db.clear_upstream_wal_position();
            node.db.set_leader(true);
            node.role = NodeRole::Leader;
        }
        self.leader = Some(winner);
        self.leader_ok_ms = now_ms;
        self.leader_records = cand_records;
        self.epoch = new_epoch;
        self.failovers += 1;

        let leader_url = self.nodes[winner].url.clone();
        // Surviving followers re-target the new leader, resuming at their
        // own replicated record count via the locate handshake.
        for i in 0..self.nodes.len() {
            if i == winner || self.nodes[i].role != NodeRole::Follower {
                continue;
            }
            let node = &mut self.nodes[i];
            if node.server.is_none() {
                continue;
            }
            let records = node.db.reported_wal_position().records;
            let mut f = WalFollower::new(node.db.clone(), leader_url.clone())
                .with_follower_id(node.id.clone());
            match f.resume_from_records(records) {
                Ok(()) => node.follower = Some(f),
                Err(e) => {
                    let id = node.id.clone();
                    self.event(now_ms, format!("repoint-failed node={id} err={e}"));
                }
            }
        }

        self.event(
            now_ms,
            format!("elect epoch={new_epoch} leader={winner_id} records={cand_records}"),
        );
        self.router.swap(Route {
            epoch: new_epoch,
            leader_id: winner_id,
            leader_url,
            db: Some(self.nodes[winner].db.clone()),
        });
        stage.finish();
        if let Some(sink) = &self.trace_sink {
            sink.offer("tsdb", "failover", "system", &qtrace.report());
        }
    }

    /// Rejoins a killed node as a follower of the current leader:
    /// truncates whatever WAL suffix diverged past the successor epoch
    /// (records the cluster never acknowledged), reopens the database from
    /// the kept prefix, and resumes catch-up. Falls back to a full
    /// checkpoint re-bootstrap when the prefix is unusable (the leader
    /// checkpointed past it, or the leader's record units are not aligned
    /// with the stream).
    pub fn rejoin(&mut self, id: &str) -> io::Result<()> {
        let now_ms = (self.now)();
        let i = self
            .node_idx(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no node {id}")))?;
        if self.nodes[i].server.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{id} is still up"),
            ));
        }
        let leader_idx = self.leader.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no leader to rejoin under")
        })?;
        let leader_url = self.nodes[leader_idx].url.clone();
        let leader_aligned = self.nodes[leader_idx].aligned;

        // Where did the logs diverge? The first epoch the rejoiner has not
        // seen starts at `start_records` in the shared record units —
        // everything past it on the rejoiner's disk was never replicated.
        let my_epoch = self.nodes[i].db.current_epoch();
        let divergence = self.nodes[leader_idx]
            .db
            .epoch_history()
            .iter()
            .filter(|s| s.epoch > my_epoch)
            .map(|s| s.start_records)
            .min();

        let mut truncated = 0u64;
        let mut full_resync = !leader_aligned;
        if let (Some(target), false) = (divergence, full_resync) {
            match wal::truncate_to_records(&self.nodes[i].dir, target)? {
                TruncateOutcome::AlreadyShort => {}
                TruncateOutcome::Truncated { dropped_records } => truncated = dropped_records,
                // The local checkpoint already covers past the divergence
                // point: the prefix cannot be carved out file-level.
                TruncateOutcome::NeedsResync => full_resync = true,
            }
        }

        // Reopen from the kept prefix; the old Arc (and its file handles)
        // is dropped with the node swap below.
        let db = Arc::new(Tsdb::open(
            &self.nodes[i].dir,
            self.wal_opts,
            self.tsdb_cfg.clone(),
        )?);
        db.set_leader(false);
        let kept = db.wal_position().map_or(0, |p| p.records);
        let mut follower =
            WalFollower::new(db.clone(), leader_url).with_follower_id(id.to_string());
        if full_resync {
            db.clear_for_resync();
            follower.bootstrap().map_err(io::Error::other)?;
        } else {
            follower.resume_from_records(kept).map_err(io::Error::other)?;
        }
        follower.catch_up(16).map_err(io::Error::other)?;

        let server = HttpServer::serve(
            ServerConfig::ephemeral(),
            api_router(db.clone(), self.now.clone()),
        )
        .map_err(io::Error::other)?;
        let node = &mut self.nodes[i];
        node.url = server.base_url().to_string();
        node.server = Some(server);
        node.db = db;
        node.follower = Some(follower);
        node.role = NodeRole::Follower;
        node.aligned = !full_resync && node.aligned;
        self.event(
            now_ms,
            format!(
                "rejoin node={id} truncated={truncated} resync={full_resync} from_records={kept}"
            ),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::LabelMatcher;
    use std::sync::atomic::{AtomicI64, Ordering};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ceems-election-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn sim_clock() -> (Arc<AtomicI64>, NowFn) {
        let t = Arc::new(AtomicI64::new(0));
        let t2 = t.clone();
        (t, Arc::new(move || t2.load(Ordering::Relaxed)))
    }

    fn group(dir: &std::path::Path, now: NowFn) -> ReplicationGroup {
        ReplicationGroup::new(
            dir,
            3,
            WalOptions::default(),
            TsdbConfig::default(),
            FailoverConfig {
                probe_interval_ms: 100,
                election_timeout_ms: 300,
                min_catchup_records: u64::MAX,
                catchup_polls: 64,
            },
            now,
        )
        .unwrap()
    }

    #[test]
    fn failover_promotes_reroutes_and_fences() {
        let dir = tmp("basic");
        let (clock, now) = sim_clock();
        let mut g = group(&dir, now);
        let router = g.write_router();
        let series = labels! {"__name__" => "watts", "uuid" => "u1"};

        assert_eq!(g.epoch(), 1);
        assert_eq!(g.leader_id(), Some("node-0"));
        for i in 0..50i64 {
            router.append_batch(&[(series.clone(), i * 1000, i as f64)]).unwrap();
            clock.fetch_add(100, Ordering::Relaxed);
            g.tick(clock.load(Ordering::Relaxed));
        }
        let old_epoch = router.epoch();
        let old_db = router.leader_db().unwrap();

        g.kill("node-0");
        // Probe misses accumulate until the timeout deposes node-0.
        for _ in 0..6 {
            clock.fetch_add(100, Ordering::Relaxed);
            g.tick(clock.load(Ordering::Relaxed));
        }
        assert_eq!(g.failovers(), 1);
        assert_eq!(g.epoch(), old_epoch + 1);
        let new_leader = g.leader_id().unwrap().to_string();
        assert_ne!(new_leader, "node-0");

        // The route moved; a write through it lands on the new leader.
        assert_eq!(router.epoch(), old_epoch + 1);
        router.append_batch(&[(series.clone(), 60_000, 60.0)]).unwrap();

        // The fence: the dead leader's epoch is rejected everywhere live.
        let fenced = g
            .node_db(&new_leader)
            .unwrap()
            .append_batch_fenced(old_epoch, &[(series.clone(), 61_000, 61.0)]);
        assert!(fenced.is_err(), "stale epoch must be fenced");
        // And the old leader itself (if something still holds its handle)
        // rejects writes stamped with the NEW epoch: it never saw the bump.
        assert!(old_db.append_batch_fenced(g.epoch(), &[(series, 62_000, 62.0)]).is_err());
        assert!(g.fenced_writes() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejoin_truncates_divergent_tail_and_converges() {
        let dir = tmp("rejoin");
        let (clock, now) = sim_clock();
        let mut g = group(&dir, now);
        let router = g.write_router();
        let series = labels! {"__name__" => "watts", "uuid" => "u1"};
        for i in 0..30i64 {
            router.append_batch(&[(series.clone(), i * 1000, i as f64)]).unwrap();
            clock.fetch_add(100, Ordering::Relaxed);
            g.tick(clock.load(Ordering::Relaxed));
        }

        // Unreplicated (unacked) writes land on the leader, then it dies
        // before any follower could stream them: the divergent tail.
        g.kill("node-0");
        let old_db = g.node_db("node-0").unwrap();
        for i in 30..35i64 {
            old_db.append_batch_fenced(1, &[(series.clone(), i * 1000, i as f64)]).unwrap();
        }
        for _ in 0..6 {
            clock.fetch_add(100, Ordering::Relaxed);
            g.tick(clock.load(Ordering::Relaxed));
        }
        assert_eq!(g.failovers(), 1);

        // Post-failover writes the rejoiner must converge onto.
        for i in 35..45i64 {
            router.append_batch(&[(series.clone(), i * 1000, 1000.0 + i as f64)]).unwrap();
        }
        g.rejoin("node-0").unwrap();
        for _ in 0..4 {
            clock.fetch_add(100, Ordering::Relaxed);
            g.tick(clock.load(Ordering::Relaxed));
        }

        let rejoined = g.node_db("node-0").unwrap();
        let got = rejoined.select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
        assert_eq!(got.len(), 1);
        let ts: Vec<i64> = got[0].samples.iter().map(|s| s.t_ms).collect();
        // Acked prefix (0..30) and post-failover writes (35..45) present;
        // the divergent tail (30..35, values 30..35) truncated — never
        // resurrected.
        assert!(ts.contains(&29_000));
        assert!(ts.contains(&44_000));
        for i in 30..35i64 {
            let at = got[0].samples.iter().find(|s| s.t_ms == i * 1000);
            assert!(
                at.is_none_or(|s| s.v >= 1000.0),
                "truncated write resurrected at t={}: {at:?}",
                i * 1000
            );
        }
        // Byte-identical to the leader's view of the same selector.
        let leader_db = router.leader_db().unwrap();
        let want = leader_db.select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
        assert_eq!(got[0].samples, want[0].samples);
        assert!(g.events().iter().any(|e| e.contains("rejoin node=node-0")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
