//! The write head: per-series chunked storage with striped locking.
//!
//! Every series owns a deque of [`XorChunk`]s; the last one is the open
//! appender, cut when it reaches [`CHUNK_SAMPLES`]. Series are spread over
//! lock shards by id so concurrent scrape threads rarely contend — this is
//! the ingest hot path of the 1,400-node experiment.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::chunk::{OutOfOrder, XorChunk};
use crate::types::{Sample, SeriesId};

/// Samples per chunk before cutting a new one (Prometheus uses 120; a
/// larger chunk compresses slightly better and is fine in memory).
pub const CHUNK_SAMPLES: u32 = 240;

/// Storage of one series.
#[derive(Debug, Default)]
pub struct SeriesStore {
    chunks: VecDeque<XorChunk>,
}

impl SeriesStore {
    /// Appends a sample, cutting a new chunk when the open one is full.
    pub fn append(&mut self, s: Sample) -> Result<(), OutOfOrder> {
        // Reject samples older than the series head (cheap global check).
        if let Some(last) = self.chunks.back() {
            if !last.is_empty() && s.t_ms < last.max_time() {
                return Err(OutOfOrder {
                    at: s.t_ms,
                    head: last.max_time(),
                });
            }
        }
        let need_new = match self.chunks.back() {
            None => true,
            Some(c) => c.len() >= CHUNK_SAMPLES,
        };
        if need_new {
            self.chunks.push_back(XorChunk::new());
        }
        self.chunks.back_mut().unwrap().append(s)
    }

    /// Samples with `tmin <= t <= tmax`, in time order.
    pub fn samples_in(&self, tmin: i64, tmax: i64) -> Vec<Sample> {
        let mut out = Vec::new();
        for c in &self.chunks {
            if c.is_empty() || c.max_time() < tmin || c.min_time() > tmax {
                continue;
            }
            out.extend(c.iter().filter(|s| s.t_ms >= tmin && s.t_ms <= tmax));
        }
        out
    }

    /// Latest sample, if any.
    pub fn last_sample(&self) -> Option<Sample> {
        self.chunks.back().and_then(|c| c.iter().last())
    }

    /// Drops whole chunks that end before `cutoff`; returns true when the
    /// series is left empty.
    pub fn drop_before(&mut self, cutoff: i64) -> bool {
        while let Some(front) = self.chunks.front() {
            if !front.is_empty() && front.max_time() < cutoff {
                self.chunks.pop_front();
            } else {
                break;
            }
        }
        self.chunks.is_empty()
    }

    /// Total stored samples.
    pub fn sample_count(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    /// Approximate compressed bytes held.
    pub fn byte_len(&self) -> usize {
        self.chunks.iter().map(|c| c.byte_len()).sum()
    }

    /// Chunk count (for tests).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

/// Striped series storage.
pub struct Head {
    shards: Vec<Mutex<HashMap<SeriesId, SeriesStore>>>,
}

impl Head {
    /// Creates a head with `shards` lock stripes.
    pub fn new(shards: usize) -> Head {
        Head {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, id: SeriesId) -> &Mutex<HashMap<SeriesId, SeriesStore>> {
        &self.shards[self.shard_of(id)]
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stripe a series id lives in. Parallel readers group their id lists by
    /// this so each worker touches disjoint locks.
    pub fn shard_of(&self, id: SeriesId) -> usize {
        (id as usize) % self.shards.len()
    }

    /// Reads several series of one stripe under a single lock acquisition.
    /// Returns one sample vector per id, in the order given (empty when the
    /// series is absent or has nothing in range). Every id must belong to
    /// `shard` (as reported by [`Head::shard_of`]).
    pub fn read_shard(
        &self,
        shard: usize,
        ids: &[SeriesId],
        tmin: i64,
        tmax: i64,
    ) -> Vec<Vec<Sample>> {
        let map = self.shards[shard].lock();
        ids.iter()
            .map(|id| {
                debug_assert_eq!(self.shard_of(*id), shard);
                map.get(id)
                    .map(|s| s.samples_in(tmin, tmax))
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Appends to a series (creating it on first touch).
    pub fn append(&self, id: SeriesId, s: Sample) -> Result<(), OutOfOrder> {
        self.shard(id).lock().entry(id).or_default().append(s)
    }

    /// Reads a series' samples in a range.
    pub fn read(&self, id: SeriesId, tmin: i64, tmax: i64) -> Vec<Sample> {
        self.shard(id)
            .lock()
            .get(&id)
            .map(|s| s.samples_in(tmin, tmax))
            .unwrap_or_default()
    }

    /// Latest sample of a series.
    pub fn last_sample(&self, id: SeriesId) -> Option<Sample> {
        self.shard(id).lock().get(&id).and_then(|s| s.last_sample())
    }

    /// Removes a series entirely.
    pub fn remove(&self, id: SeriesId) {
        self.shard(id).lock().remove(&id);
    }

    /// Applies retention: drops chunks ending before `cutoff`, returning the
    /// ids of series that became empty (caller unregisters them).
    pub fn drop_before(&self, cutoff: i64) -> Vec<SeriesId> {
        let mut emptied = Vec::new();
        for shard in &self.shards {
            let mut map = shard.lock();
            let empty_ids: Vec<SeriesId> = map
                .iter_mut()
                .filter_map(|(&id, s)| s.drop_before(cutoff).then_some(id))
                .collect();
            for id in &empty_ids {
                map.remove(id);
            }
            emptied.extend(empty_ids);
        }
        emptied
    }

    /// Snapshot of every series' full sample list, sorted by id (the
    /// checkpoint writer runs this with appenders gated out, so the result
    /// is a consistent cut).
    pub fn snapshot(&self) -> Vec<(SeriesId, Vec<Sample>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock();
            for (&id, s) in map.iter() {
                out.push((id, s.samples_in(i64::MIN, i64::MAX)));
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Total samples held.
    pub fn sample_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|v| v.sample_count()).sum::<u64>())
            .sum()
    }

    /// Approximate compressed bytes held.
    pub fn byte_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|v| v.byte_len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_cutting() {
        let mut s = SeriesStore::default();
        for i in 0..(CHUNK_SAMPLES as i64 * 2 + 10) {
            s.append(Sample::new(i * 1000, i as f64)).unwrap();
        }
        assert_eq!(s.chunk_count(), 3);
        assert_eq!(s.sample_count(), CHUNK_SAMPLES as u64 * 2 + 10);
    }

    #[test]
    fn range_reads_cross_chunks() {
        let mut s = SeriesStore::default();
        for i in 0..600i64 {
            s.append(Sample::new(i * 1000, i as f64)).unwrap();
        }
        let got = s.samples_in(239_000, 241_000);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].v, 239.0);
        assert_eq!(got[2].v, 241.0);
        assert_eq!(s.samples_in(10_000_000, 20_000_000).len(), 0);
        assert_eq!(s.last_sample().unwrap().v, 599.0);
    }

    #[test]
    fn out_of_order_rejected_across_chunks() {
        let mut s = SeriesStore::default();
        for i in 0..(CHUNK_SAMPLES as i64 + 1) {
            s.append(Sample::new(i * 1000, 0.0)).unwrap();
        }
        assert!(s.append(Sample::new(0, 0.0)).is_err());
    }

    #[test]
    fn retention_drops_whole_chunks() {
        let mut s = SeriesStore::default();
        for i in 0..600i64 {
            s.append(Sample::new(i * 1000, 0.0)).unwrap();
        }
        assert_eq!(s.chunk_count(), 3);
        // Cutoff midway through the second chunk: only the first is dropped.
        assert!(!s.drop_before(300_000));
        assert_eq!(s.chunk_count(), 2);
        // Everything before a far-future cutoff: series emptied.
        assert!(s.drop_before(i64::MAX));
        assert_eq!(s.sample_count(), 0);
    }

    #[test]
    fn head_concurrent_appends() {
        let head = std::sync::Arc::new(Head::new(8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let head = head.clone();
                scope.spawn(move || {
                    for i in 0..1000i64 {
                        head.append(t, Sample::new(i, i as f64)).unwrap();
                    }
                });
            }
        });
        assert_eq!(head.sample_count(), 8000);
        assert_eq!(head.read(3, 0, 10).len(), 11);
        assert_eq!(head.last_sample(3).unwrap().t_ms, 999);
        assert!(head.byte_len() > 0);
    }

    #[test]
    fn head_remove_and_retention() {
        let head = Head::new(4);
        head.append(1, Sample::new(1000, 1.0)).unwrap();
        head.append(2, Sample::new(500_000, 1.0)).unwrap();
        head.remove(1);
        assert!(head.read(1, 0, i64::MAX).is_empty());
        let emptied = head.drop_before(i64::MAX);
        assert_eq!(emptied, vec![2]);
        assert_eq!(head.sample_count(), 0);
    }
}
