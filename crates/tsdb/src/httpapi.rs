//! Prometheus HTTP API subset.
//!
//! The endpoints Grafana and the CEEMS load balancer actually use:
//! `/api/v1/query`, `/api/v1/query_range`, `/api/v1/labels`,
//! `/api/v1/label/<name>/values`, `/api/v1/series`, plus the admin
//! `delete_series` the API server's cardinality cleanup calls. Responses
//! follow the Prometheus JSON envelope (`status`/`data`, values as
//! `[unix_seconds, "string"]` pairs).

use std::sync::Arc;

use serde_json::{json, Value as Json};

use ceems_http::{Request, Response, Router, Status};
use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;

use crate::promql::{instant_query, parse_expr, range_query, Expr, Value};
use crate::storage::Tsdb;

/// A clock supplying "now" for queries without an explicit `time` param
/// (simulated deployments pass the simulation clock).
pub type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

fn ok_json(data: Json) -> Response {
    Response::json(
        serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap(),
    )
}

fn err_json(status: Status, error: impl Into<String>) -> Response {
    let body = json!({"status": "error", "error": error.into()});
    Response::json(serde_json::to_vec(&body).unwrap()).with_status(status)
}

trait WithStatus {
    fn with_status(self, s: Status) -> Response;
}

impl WithStatus for Response {
    fn with_status(mut self, s: Status) -> Response {
        self.status = s;
        self
    }
}

fn labels_to_json(labels: &LabelSet) -> Json {
    let map: serde_json::Map<String, Json> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), Json::String(v.to_string())))
        .collect();
    Json::Object(map)
}

fn sample_pair(t_ms: i64, v: f64) -> Json {
    json!([t_ms as f64 / 1000.0, format!("{v}")])
}

/// Parses a `time=`-style parameter (unix seconds, fractional allowed).
fn parse_time(req: &Request, name: &str, default_ms: i64) -> Result<i64, String> {
    match req.query_param(name) {
        None => Ok(default_ms),
        Some(s) => s
            .parse::<f64>()
            .map(|secs| (secs * 1000.0) as i64)
            .map_err(|_| format!("bad {name} parameter: {s:?}")),
    }
}

/// Parses the `match[]` selectors of series/delete endpoints.
fn parse_matchers(req: &Request) -> Result<Vec<Vec<LabelMatcher>>, String> {
    let mut out = Vec::new();
    for m in req.query_params("match[]") {
        match parse_expr(m) {
            Ok(Expr::Selector(sel)) if sel.range_ms.is_none() => out.push(sel.matchers),
            Ok(_) => return Err(format!("match[] must be an instant selector: {m:?}")),
            Err(e) => return Err(e.to_string()),
        }
    }
    if out.is_empty() {
        return Err("no match[] parameter".into());
    }
    Ok(out)
}

/// Builds the API router over a TSDB.
pub fn api_router(db: Arc<Tsdb>, now: NowFn) -> Router {
    let mut router = Router::new();

    {
        let db = db.clone();
        let now = now.clone();
        router.get("/api/v1/query", move |req| {
            let t = match parse_time(req, "time", now()) {
                Ok(t) => t,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let Some(q) = req.query_param("query") else {
                return err_json(Status::BAD_REQUEST, "missing query parameter");
            };
            let expr = match parse_expr(q) {
                Ok(e) => e,
                Err(e) => return err_json(Status::BAD_REQUEST, e.to_string()),
            };
            match instant_query(db.as_ref(), &expr, t) {
                Ok(Value::Scalar(v)) => ok_json(json!({
                    "resultType": "scalar",
                    "result": sample_pair(t, v),
                })),
                Ok(Value::Vector(vec)) => ok_json(json!({
                    "resultType": "vector",
                    "result": vec.iter().map(|(l, v)| json!({
                        "metric": labels_to_json(l),
                        "value": sample_pair(t, *v),
                    })).collect::<Vec<_>>(),
                })),
                Ok(Value::Matrix(m)) => ok_json(json!({
                    "resultType": "matrix",
                    "result": m.iter().map(|s| json!({
                        "metric": labels_to_json(&s.labels),
                        "values": s.samples.iter().map(|x| sample_pair(x.t_ms, x.v)).collect::<Vec<_>>(),
                    })).collect::<Vec<_>>(),
                })),
                Err(e) => err_json(Status::UNPROCESSABLE, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/query_range", move |req| {
            let (start, end) = match (parse_time(req, "start", 0), parse_time(req, "end", 0)) {
                (Ok(s), Ok(e)) => (s, e),
                (Err(e), _) | (_, Err(e)) => return err_json(Status::BAD_REQUEST, e),
            };
            let step_ms = match req.query_param("step") {
                Some(s) => match s.parse::<f64>() {
                    Ok(sec) if sec > 0.0 => (sec * 1000.0) as i64,
                    _ => return err_json(Status::BAD_REQUEST, "bad step parameter"),
                },
                None => return err_json(Status::BAD_REQUEST, "missing step parameter"),
            };
            let Some(q) = req.query_param("query") else {
                return err_json(Status::BAD_REQUEST, "missing query parameter");
            };
            let expr = match parse_expr(q) {
                Ok(e) => e,
                Err(e) => return err_json(Status::BAD_REQUEST, e.to_string()),
            };
            match range_query(db.as_ref(), &expr, start, end, step_ms) {
                Ok(series) => ok_json(json!({
                    "resultType": "matrix",
                    "result": series.iter().map(|s| json!({
                        "metric": labels_to_json(&s.labels),
                        "values": s.samples.iter().map(|x| sample_pair(x.t_ms, x.v)).collect::<Vec<_>>(),
                    })).collect::<Vec<_>>(),
                })),
                Err(e) => err_json(Status::UNPROCESSABLE, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/labels", move |_req| {
            ok_json(json!(db.label_names()))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/label/:name/values", move |req| {
            let name = req.path_param("name").unwrap_or_default();
            ok_json(json!(db.label_values(name)))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/series", move |req| {
            let matcher_sets = match parse_matchers(req) {
                Ok(m) => m,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let mut out: Vec<Json> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for matchers in matcher_sets {
                for (labels, _) in db.select_latest(&matchers) {
                    if seen.insert(labels.fingerprint()) {
                        out.push(labels_to_json(&labels));
                    }
                }
            }
            ok_json(Json::Array(out))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/status/tsdb", move |_req| {
            ok_json(json!({
                "headStats": {
                    "numSeries": db.series_count(),
                    "numSamples": db.samples_appended(),
                    "storageBytes": db.storage_bytes(),
                }
            }))
        });
    }

    // -- WAL endpoints (replica catch-up + staleness probes) ---------------

    {
        let db = db.clone();
        router.get("/api/v1/wal/position", move |_req| {
            let pos = db.reported_wal_position();
            ok_json(json!({
                "seq": pos.seq,
                "offset": pos.offset,
                "records": pos.records,
                "walEnabled": db.wal_enabled(),
            }))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/segments", move |_req| {
            match db.wal_segments() {
                Ok(segs) => ok_json(json!(segs
                    .iter()
                    .map(|(seq, bytes)| json!({"seq": seq, "bytes": bytes}))
                    .collect::<Vec<_>>())),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/checkpoint", move |_req| {
            match db.wal_checkpoint_bytes() {
                Ok(Some((seq, bytes))) => Response::status(Status::OK)
                    .with_header("content-type", "application/octet-stream")
                    .with_header("x-wal-checkpoint-seq", seq.to_string())
                    .with_body(bytes),
                Ok(None) => err_json(Status::NOT_FOUND, "no checkpoint taken yet"),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/fetch", move |req| {
            let parse_u64 = |name: &str| -> Result<u64, String> {
                match req.query_param(name) {
                    Some(s) => s.parse().map_err(|_| format!("bad {name} parameter")),
                    None => Ok(0),
                }
            };
            let (seq, offset) = match (parse_u64("seq"), parse_u64("offset")) {
                (Ok(s), Ok(o)) => (s, o),
                (Err(e), _) | (_, Err(e)) => return err_json(Status::BAD_REQUEST, e),
            };
            let last_seq = db.wal_position().map(|p| p.seq).unwrap_or(0);
            match db.read_wal_segment(seq, offset) {
                Ok(Some(bytes)) => Response::status(Status::OK)
                    .with_header("content-type", "application/octet-stream")
                    .with_header("x-wal-seq", seq.to_string())
                    .with_header("x-wal-last-seq", last_seq.to_string())
                    .with_body(bytes),
                // Gone: GC'd behind a checkpoint — the follower re-bootstraps.
                Ok(None) => err_json(Status(410), format!("segment {seq} gone")),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.post("/api/v1/admin/tsdb/delete_series", move |req| {
            let matcher_sets = match parse_matchers(req) {
                Ok(m) => m,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let mut deleted = 0;
            for matchers in matcher_sets {
                deleted += db.delete_series(&matchers);
            }
            ok_json(json!({"deletedSeries": deleted}))
        });
    }

    router
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{Client, HttpServer, ServerConfig};
    use ceems_metrics::labels;

    fn serve() -> (HttpServer, Arc<Tsdb>) {
        let db = Arc::new(Tsdb::default());
        for i in 0..10i64 {
            db.append(
                &labels! {"__name__" => "power_watts", "instance" => "n1"},
                i * 15_000,
                100.0,
            );
            db.append(
                &labels! {"__name__" => "power_watts", "instance" => "n2"},
                i * 15_000,
                200.0,
            );
        }
        let router = api_router(db.clone(), Arc::new(|| 135_000));
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        (server, db)
    }

    fn get_json(url: &str) -> serde_json::Value {
        let resp = Client::new().get(url).unwrap();
        serde_json::from_slice(&resp.body).unwrap()
    }

    #[test]
    fn instant_query_endpoint() {
        let (server, _db) = serve();
        let v = get_json(&format!(
            "{}/api/v1/query?query=sum(power_watts)",
            server.base_url()
        ));
        assert_eq!(v["status"], "success");
        assert_eq!(v["data"]["resultType"], "vector");
        assert_eq!(v["data"]["result"][0]["value"][1], "300");
        // Explicit time param.
        let v = get_json(&format!(
            "{}/api/v1/query?query=power_watts&time=135",
            server.base_url()
        ));
        assert_eq!(v["data"]["result"].as_array().unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn range_query_endpoint() {
        let (server, _db) = serve();
        let v = get_json(&format!(
            "{}/api/v1/query_range?query=power_watts&start=0&end=135&step=15",
            server.base_url()
        ));
        assert_eq!(v["status"], "success");
        let result = v["data"]["result"].as_array().unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0]["values"].as_array().unwrap().len(), 10);
        server.shutdown();
    }

    #[test]
    fn labels_series_and_status() {
        let (server, _db) = serve();
        let v = get_json(&format!("{}/api/v1/labels", server.base_url()));
        assert!(v["data"].as_array().unwrap().iter().any(|x| x == "instance"));

        let v = get_json(&format!(
            "{}/api/v1/label/instance/values",
            server.base_url()
        ));
        assert_eq!(v["data"], json!(["n1", "n2"]));

        let v = get_json(&format!(
            "{}/api/v1/series?match[]=power_watts%7Binstance%3D%22n1%22%7D",
            server.base_url()
        ));
        assert_eq!(v["data"].as_array().unwrap().len(), 1);

        let v = get_json(&format!("{}/api/v1/status/tsdb", server.base_url()));
        assert_eq!(v["data"]["headStats"]["numSeries"], 2);
        server.shutdown();
    }

    #[test]
    fn delete_series_endpoint() {
        let (server, db) = serve();
        let resp = Client::new()
            .post(
                &format!(
                    "{}/api/v1/admin/tsdb/delete_series?match[]=%7Binstance%3D%22n1%22%7D",
                    server.base_url()
                ),
                Vec::new(),
                "application/json",
            )
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["data"]["deletedSeries"], 1);
        assert_eq!(db.series_count(), 1);
        server.shutdown();
    }

    #[test]
    fn error_responses() {
        let (server, _db) = serve();
        let resp = Client::new()
            .get(&format!("{}/api/v1/query", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        let resp = Client::new()
            .get(&format!(
                "{}/api/v1/query?query=rate(power_watts)",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status, Status::UNPROCESSABLE);
        let resp = Client::new()
            .get(&format!(
                "{}/api/v1/query_range?query=up&start=0&end=10&step=0",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        let resp = Client::new()
            .get(&format!("{}/api/v1/series", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }
}
