//! Prometheus HTTP API subset.
//!
//! The endpoints Grafana and the CEEMS load balancer actually use:
//! `/api/v1/query`, `/api/v1/query_range`, `/api/v1/labels`,
//! `/api/v1/label/<name>/values`, `/api/v1/series`, plus the admin
//! `delete_series` the API server's cardinality cleanup calls. Responses
//! follow the Prometheus JSON envelope (`status`/`data`, values as
//! `[unix_seconds, "string"]` pairs).
//!
//! Observability (S17): the router also serves `/metrics` from a
//! [`Registry`] (default: [`selfmon::default_registry`]); the query
//! endpoints accept `?trace=1` (and the `x-ceems-trace-id` header) to
//! return a per-stage wall-time breakdown under `data.trace`, and feed a
//! configurable [`SlowQueryLog`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde_json::{json, Value as Json};

use ceems_http::{Request, Response, Router, Status};
use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;
use ceems_metrics::Registry;
use ceems_obs::http::TRACE_STORED_HEADER;
use ceems_obs::slowlog::{SlowQueryLog, SlowQueryRecord};
use ceems_obs::trace::{self, QueryTrace, TraceReport};
use ceems_obs::{counter_family, TraceSink, TRACE_HEADER};

use crate::promql::{instant_query, parse_expr, range_query, Expr, Value};
use crate::selfmon;
use crate::storage::Tsdb;

/// A clock supplying "now" for queries without an explicit `time` param
/// (simulated deployments pass the simulation clock).
pub type NowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

/// Options for [`api_router_with`]: the clock plus the observability knobs.
pub struct ApiOptions {
    /// Clock supplying "now" for queries without an explicit `time` param.
    pub now: NowFn,
    /// Registry served at `/metrics`. `None` builds the default TSDB
    /// registry ([`selfmon::default_registry`]) over `db`.
    pub registry: Option<Registry>,
    /// Slow-query log. `None` (like a non-positive threshold) disables it.
    pub slow_query: Option<SlowQueryLog>,
    /// Leader-side token bucket over `/api/v1/wal/fetch`, per follower.
    /// `None` leaves the endpoint unthrottled.
    pub wal_fetch_limit: Option<Arc<WalFetchLimiter>>,
    /// Always-on trace sampling: finished query traces are offered here and
    /// persisted when head-sampled or slow. `None` keeps traces
    /// response-inline only (the pre-S22 behaviour).
    pub trace_sink: Option<Arc<TraceSink>>,
}

impl ApiOptions {
    /// Options with the given clock, the default registry, and the
    /// slow-query log disabled — what [`api_router`] uses.
    pub fn new(now: NowFn) -> ApiOptions {
        ApiOptions {
            now,
            registry: None,
            slow_query: None,
            wal_fetch_limit: None,
            trace_sink: None,
        }
    }
}

/// Per-follower token bucket protecting the WAL leader from fetch storms.
///
/// Each follower (identified by its `x-wal-follower` header; followers
/// without one share a single bucket) gets `burst` tokens refilled at
/// `rate_per_s`. A denied fetch costs nothing and returns how long until
/// the next token, which the handler surfaces as `Retry-After`.
pub struct WalFetchLimiter {
    rate_per_s: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    throttled: ceems_metrics::Counter,
}

struct TokenBucket {
    tokens: f64,
    refilled: Instant,
}

impl WalFetchLimiter {
    /// A limiter allowing `rate_per_s` sustained fetches per follower with
    /// a `burst`-token reservoir (both floored at sane minimums).
    pub fn new(rate_per_s: f64, burst: f64) -> Arc<WalFetchLimiter> {
        Arc::new(WalFetchLimiter {
            rate_per_s: rate_per_s.max(0.001),
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
            throttled: ceems_metrics::Counter::new(),
        })
    }

    /// Total fetches denied so far (exported as
    /// `ceems_tsdb_wal_fetch_throttled_total`).
    pub fn throttled_counter(&self) -> ceems_metrics::Counter {
        self.throttled.clone()
    }

    /// Takes one token from `follower`'s bucket, or returns the delay in
    /// seconds until one becomes available.
    pub fn try_acquire(&self, follower: &str) -> Result<(), f64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(follower.to_string()).or_insert(TokenBucket {
            tokens: self.burst,
            refilled: now,
        });
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_s).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            self.throttled.inc();
            Err((1.0 - bucket.tokens) / self.rate_per_s)
        }
    }
}

/// `?trace=1` (or `trace=true`) requests the stage breakdown in the reply.
fn trace_requested(req: &Request) -> bool {
    matches!(req.query_param("trace"), Some("1") | Some("true"))
}

/// Inserts `trace` into the (object) data payload.
fn attach_trace(data: Json, report: &TraceReport) -> Json {
    match data {
        Json::Object(mut map) => {
            map.insert("trace".to_string(), report.to_json());
            Json::Object(map)
        }
        other => other,
    }
}

fn ok_json(data: Json) -> Response {
    Response::json(
        serde_json::to_vec(&json!({"status": "success", "data": data})).unwrap(),
    )
}

fn err_json(status: Status, error: impl Into<String>) -> Response {
    let body = json!({"status": "error", "error": error.into()});
    Response::json(serde_json::to_vec(&body).unwrap()).with_status(status)
}

trait WithStatus {
    fn with_status(self, s: Status) -> Response;
}

impl WithStatus for Response {
    fn with_status(mut self, s: Status) -> Response {
        self.status = s;
        self
    }
}

fn labels_to_json(labels: &LabelSet) -> Json {
    let map: serde_json::Map<String, Json> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), Json::String(v.to_string())))
        .collect();
    Json::Object(map)
}

fn sample_pair(t_ms: i64, v: f64) -> Json {
    json!([t_ms as f64 / 1000.0, format!("{v}")])
}

/// Parses a `time=`-style parameter (unix seconds, fractional allowed).
fn parse_time(req: &Request, name: &str, default_ms: i64) -> Result<i64, String> {
    match req.query_param(name) {
        None => Ok(default_ms),
        Some(s) => s
            .parse::<f64>()
            .map(|secs| (secs * 1000.0) as i64)
            .map_err(|_| format!("bad {name} parameter: {s:?}")),
    }
}

/// Parses the `match[]` selectors of series/delete endpoints.
fn parse_matchers(req: &Request) -> Result<Vec<Vec<LabelMatcher>>, String> {
    let mut out = Vec::new();
    for m in req.query_params("match[]") {
        match parse_expr(m) {
            Ok(Expr::Selector(sel)) if sel.range_ms.is_none() => out.push(sel.matchers),
            Ok(_) => return Err(format!("match[] must be an instant selector: {m:?}")),
            Err(e) => return Err(e.to_string()),
        }
    }
    if out.is_empty() {
        return Err("no match[] parameter".into());
    }
    Ok(out)
}

/// Builds the API router over a TSDB (default observability: `/metrics`
/// from the default registry, no slow-query log).
pub fn api_router(db: Arc<Tsdb>, now: NowFn) -> Router {
    api_router_with(db, ApiOptions::new(now))
}

/// Builds the API router with explicit observability options.
pub fn api_router_with(db: Arc<Tsdb>, opts: ApiOptions) -> Router {
    let now = opts.now;
    let registry = opts
        .registry
        .unwrap_or_else(|| selfmon::default_registry(db.clone()));
    let slow = opts.slow_query.unwrap_or_else(|| SlowQueryLog::new(0.0));
    let wal_limit = opts.wal_fetch_limit;
    let trace_sink = opts.trace_sink;
    if let Some(limiter) = &wal_limit {
        let throttled = limiter.throttled_counter();
        registry.register(
            "tsdb_wal_fetch_throttled",
            Arc::new(move || {
                vec![counter_family(
                    "ceems_tsdb_wal_fetch_throttled_total",
                    "WAL fetches denied by the leader-side rate limit.",
                    &throttled,
                )]
            }),
        );
    }
    {
        let emitted = slow.emitted_counter();
        registry.register(
            "tsdb_slow_queries",
            Arc::new(move || {
                vec![counter_family(
                    "ceems_tsdb_slow_queries_total",
                    "Queries that crossed the slow-query threshold.",
                    &emitted,
                )]
            }),
        );
    }
    ceems_obs::register_build_info(&registry, "tsdb");
    if let Some(sink) = &trace_sink {
        sink.store().register_metrics(&registry);
    }
    let mut router = Router::new();
    ceems_obs::add_metrics_route(&mut router, registry);

    {
        let db = db.clone();
        let now = now.clone();
        let slow = slow.clone();
        let sink = trace_sink.clone();
        router.get("/api/v1/query", move |req| {
            let qtrace = QueryTrace::begin(req.header(TRACE_HEADER));
            let _cur = trace::enter(Some(qtrace.clone()));
            let t = match parse_time(req, "time", now()) {
                Ok(t) => t,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let Some(q) = req.query_param("query") else {
                return err_json(Status::BAD_REQUEST, "missing query parameter");
            };
            let parsing = qtrace.stage("parse");
            let expr = match parse_expr(q) {
                Ok(e) => e,
                Err(e) => return err_json(Status::BAD_REQUEST, e.to_string()),
            };
            parsing.finish();
            let evaling = qtrace.stage("eval");
            let result = instant_query(db.as_ref(), &expr, t);
            evaling.finish();
            let data = match result {
                Ok(Value::Scalar(v)) => json!({
                    "resultType": "scalar",
                    "result": sample_pair(t, v),
                }),
                Ok(Value::Vector(vec)) => json!({
                    "resultType": "vector",
                    "result": vec.iter().map(|(l, v)| json!({
                        "metric": labels_to_json(l),
                        "value": sample_pair(t, *v),
                    })).collect::<Vec<_>>(),
                }),
                Ok(Value::Matrix(m)) => json!({
                    "resultType": "matrix",
                    "result": m.iter().map(|s| json!({
                        "metric": labels_to_json(&s.labels),
                        "values": s.samples.iter().map(|x| sample_pair(x.t_ms, x.v)).collect::<Vec<_>>(),
                    })).collect::<Vec<_>>(),
                }),
                Err(e) => return err_json(Status::UNPROCESSABLE, e.to_string()),
            };
            let report = qtrace.report();
            let tenant = req.header("x-grafana-user").unwrap_or("anonymous");
            let store_key = sink
                .as_ref()
                .and_then(|s| s.offer("tsdb", "/api/v1/query", tenant, &report));
            slow.observe(&SlowQueryRecord {
                component: "tsdb",
                endpoint: "/api/v1/query",
                query: q,
                total_ms: report.total_ms,
                trace: Some(&report),
                store_key: store_key.as_deref(),
            });
            let resp = if trace_requested(req) {
                ok_json(attach_trace(data, &report))
            } else {
                ok_json(data)
            };
            match store_key {
                Some(key) => resp.with_header(TRACE_STORED_HEADER, key),
                None => resp,
            }
        });
    }

    {
        let db = db.clone();
        let slow = slow.clone();
        let sink = trace_sink.clone();
        router.get("/api/v1/query_range", move |req| {
            let qtrace = QueryTrace::begin(req.header(TRACE_HEADER));
            let _cur = trace::enter(Some(qtrace.clone()));
            let (start, end) = match (parse_time(req, "start", 0), parse_time(req, "end", 0)) {
                (Ok(s), Ok(e)) => (s, e),
                (Err(e), _) | (_, Err(e)) => return err_json(Status::BAD_REQUEST, e),
            };
            let step_ms = match req.query_param("step") {
                Some(s) => match s.parse::<f64>() {
                    Ok(sec) if sec > 0.0 => (sec * 1000.0) as i64,
                    _ => return err_json(Status::BAD_REQUEST, "bad step parameter"),
                },
                None => return err_json(Status::BAD_REQUEST, "missing step parameter"),
            };
            let Some(q) = req.query_param("query") else {
                return err_json(Status::BAD_REQUEST, "missing query parameter");
            };
            let parsing = qtrace.stage("parse");
            let expr = match parse_expr(q) {
                Ok(e) => e,
                Err(e) => return err_json(Status::BAD_REQUEST, e.to_string()),
            };
            parsing.finish();
            let evaling = qtrace.stage("eval");
            let result = range_query(db.as_ref(), &expr, start, end, step_ms);
            evaling.finish();
            let data = match result {
                Ok(series) => json!({
                    "resultType": "matrix",
                    "result": series.iter().map(|s| json!({
                        "metric": labels_to_json(&s.labels),
                        "values": s.samples.iter().map(|x| sample_pair(x.t_ms, x.v)).collect::<Vec<_>>(),
                    })).collect::<Vec<_>>(),
                }),
                Err(e) => return err_json(Status::UNPROCESSABLE, e.to_string()),
            };
            let report = qtrace.report();
            let tenant = req.header("x-grafana-user").unwrap_or("anonymous");
            let store_key = sink
                .as_ref()
                .and_then(|s| s.offer("tsdb", "/api/v1/query_range", tenant, &report));
            slow.observe(&SlowQueryRecord {
                component: "tsdb",
                endpoint: "/api/v1/query_range",
                query: q,
                total_ms: report.total_ms,
                trace: Some(&report),
                store_key: store_key.as_deref(),
            });
            let resp = if trace_requested(req) {
                ok_json(attach_trace(data, &report))
            } else {
                ok_json(data)
            };
            match store_key {
                Some(key) => resp.with_header(TRACE_STORED_HEADER, key),
                None => resp,
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/labels", move |_req| {
            ok_json(json!(db.label_names()))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/label/:name/values", move |req| {
            let name = req.path_param("name").unwrap_or_default();
            ok_json(json!(db.label_values(name)))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/series", move |req| {
            let matcher_sets = match parse_matchers(req) {
                Ok(m) => m,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let mut out: Vec<Json> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for matchers in matcher_sets {
                for (labels, _) in db.select_latest(&matchers) {
                    if seen.insert(labels.fingerprint()) {
                        out.push(labels_to_json(&labels));
                    }
                }
            }
            ok_json(Json::Array(out))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/status/tsdb", move |_req| {
            ok_json(json!({
                "headStats": {
                    "numSeries": db.series_count(),
                    "numSamples": db.samples_appended(),
                    "storageBytes": db.storage_bytes(),
                }
            }))
        });
    }

    // -- WAL endpoints (replica catch-up + staleness probes) ---------------

    {
        let db = db.clone();
        router.get("/api/v1/wal/position", move |_req| {
            let pos = db.reported_wal_position();
            ok_json(json!({
                "seq": pos.seq,
                "offset": pos.offset,
                "records": pos.records,
                "walEnabled": db.wal_enabled(),
                "epoch": db.current_epoch(),
                "role": if db.is_leader() { "leader" } else { "follower" },
            }))
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/epochs", move |_req| {
            let history: Vec<Json> = db
                .epoch_history()
                .iter()
                .map(|s| json!({"epoch": s.epoch, "startRecords": s.start_records}))
                .collect();
            ok_json(json!({
                "epoch": db.current_epoch(),
                "history": history,
            }))
        });
    }

    {
        // Maps a replicated record count to this leader's own (seq, offset)
        // so a rejoining ex-leader (whose segment layout differs) can resume
        // `/api/v1/wal/fetch` from the right place. 410 means the count
        // predates the newest checkpoint: the rejoiner must re-bootstrap.
        let db = db.clone();
        router.get("/api/v1/wal/locate", move |req| {
            let records: u64 = match req.query_param("records").map(str::parse) {
                Some(Ok(n)) => n,
                _ => return err_json(Status::BAD_REQUEST, "bad records parameter"),
            };
            match db.locate_records(records) {
                Ok(Some(pos)) => ok_json(json!({
                    "seq": pos.seq,
                    "offset": pos.offset,
                    "records": pos.records,
                })),
                Ok(None) => err_json(Status(410), format!("records {records} not locatable")),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        // Epoch-fenced remote write: JSON `{"epoch": N, "samples":
        // [{"labels": {..}, "t_ms": .., "v": ..}, ..]}`. A stale epoch (or a
        // demoted node) answers 409 so a deposed leader can never accept
        // writes the cluster has moved past.
        let db = db.clone();
        router.post("/api/v1/write", move |req| {
            let body: Json = match serde_json::from_slice(&req.body) {
                Ok(v) => v,
                Err(e) => return err_json(Status::BAD_REQUEST, format!("bad body: {e}")),
            };
            let Some(epoch) = body["epoch"].as_u64() else {
                return err_json(Status::BAD_REQUEST, "missing epoch");
            };
            let Some(samples) = body["samples"].as_array() else {
                return err_json(Status::BAD_REQUEST, "missing samples");
            };
            let mut batch = Vec::with_capacity(samples.len());
            for s in samples {
                let Some(obj) = s["labels"].as_object() else {
                    return err_json(Status::BAD_REQUEST, "sample missing labels");
                };
                let labels = LabelSet::from_pairs(
                    obj.iter()
                        .map(|(k, v)| (k.as_str(), v.as_str().unwrap_or_default())),
                );
                let (Some(t_ms), Some(v)) = (s["t_ms"].as_i64(), s["v"].as_f64()) else {
                    return err_json(Status::BAD_REQUEST, "sample missing t_ms/v");
                };
                batch.push((labels, t_ms, v));
            }
            match db.append_batch_fenced(epoch, &batch) {
                Ok(()) => ok_json(json!({"appended": batch.len()})),
                // 409: the write carried a fenced-off epoch.
                Err(e) => err_json(Status(409), e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/segments", move |_req| {
            match db.wal_segments() {
                Ok(segs) => ok_json(json!(segs
                    .iter()
                    .map(|(seq, bytes)| json!({"seq": seq, "bytes": bytes}))
                    .collect::<Vec<_>>())),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/checkpoint", move |_req| {
            match db.wal_checkpoint_bytes() {
                Ok(Some((seq, bytes))) => Response::status(Status::OK)
                    .with_header("content-type", "application/octet-stream")
                    .with_header("x-wal-checkpoint-seq", seq.to_string())
                    .with_body(bytes),
                Ok(None) => err_json(Status::NOT_FOUND, "no checkpoint taken yet"),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.get("/api/v1/wal/fetch", move |req| {
            if let Some(limiter) = &wal_limit {
                let follower = req.header("x-wal-follower").unwrap_or("anonymous");
                if let Err(wait_s) = limiter.try_acquire(follower) {
                    return err_json(
                        Status::TOO_MANY_REQUESTS,
                        format!("wal fetch rate limit for follower {follower:?}"),
                    )
                    .with_retry_after(wait_s);
                }
            }
            let parse_u64 = |name: &str| -> Result<u64, String> {
                match req.query_param(name) {
                    Some(s) => s.parse().map_err(|_| format!("bad {name} parameter")),
                    None => Ok(0),
                }
            };
            let (seq, offset) = match (parse_u64("seq"), parse_u64("offset")) {
                (Ok(s), Ok(o)) => (s, o),
                (Err(e), _) | (_, Err(e)) => return err_json(Status::BAD_REQUEST, e),
            };
            let last_seq = db.wal_position().map(|p| p.seq).unwrap_or(0);
            match db.read_wal_segment(seq, offset) {
                Ok(Some(bytes)) => Response::status(Status::OK)
                    .with_header("content-type", "application/octet-stream")
                    .with_header("x-wal-seq", seq.to_string())
                    .with_header("x-wal-last-seq", last_seq.to_string())
                    .with_body(bytes),
                // Gone: GC'd behind a checkpoint — the follower re-bootstraps.
                Ok(None) => err_json(Status(410), format!("segment {seq} gone")),
                Err(e) => err_json(Status::NOT_FOUND, e.to_string()),
            }
        });
    }

    {
        let db = db.clone();
        router.post("/api/v1/admin/tsdb/delete_series", move |req| {
            let matcher_sets = match parse_matchers(req) {
                Ok(m) => m,
                Err(e) => return err_json(Status::BAD_REQUEST, e),
            };
            let mut deleted = 0;
            for matchers in matcher_sets {
                deleted += db.delete_series(&matchers);
            }
            ok_json(json!({"deletedSeries": deleted}))
        });
    }

    router
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{Client, HttpServer, ServerConfig};
    use ceems_metrics::labels;

    fn serve() -> (HttpServer, Arc<Tsdb>) {
        let db = Arc::new(Tsdb::default());
        for i in 0..10i64 {
            db.append(
                &labels! {"__name__" => "power_watts", "instance" => "n1"},
                i * 15_000,
                100.0,
            );
            db.append(
                &labels! {"__name__" => "power_watts", "instance" => "n2"},
                i * 15_000,
                200.0,
            );
        }
        let router = api_router(db.clone(), Arc::new(|| 135_000));
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        (server, db)
    }

    fn get_json(url: &str) -> serde_json::Value {
        let resp = Client::new().get(url).unwrap();
        serde_json::from_slice(&resp.body).unwrap()
    }

    #[test]
    fn instant_query_endpoint() {
        let (server, _db) = serve();
        let v = get_json(&format!(
            "{}/api/v1/query?query=sum(power_watts)",
            server.base_url()
        ));
        assert_eq!(v["status"], "success");
        assert_eq!(v["data"]["resultType"], "vector");
        assert_eq!(v["data"]["result"][0]["value"][1], "300");
        // Explicit time param.
        let v = get_json(&format!(
            "{}/api/v1/query?query=power_watts&time=135",
            server.base_url()
        ));
        assert_eq!(v["data"]["result"].as_array().unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn range_query_endpoint() {
        let (server, _db) = serve();
        let v = get_json(&format!(
            "{}/api/v1/query_range?query=power_watts&start=0&end=135&step=15",
            server.base_url()
        ));
        assert_eq!(v["status"], "success");
        let result = v["data"]["result"].as_array().unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0]["values"].as_array().unwrap().len(), 10);
        server.shutdown();
    }

    #[test]
    fn labels_series_and_status() {
        let (server, _db) = serve();
        let v = get_json(&format!("{}/api/v1/labels", server.base_url()));
        assert!(v["data"].as_array().unwrap().iter().any(|x| x == "instance"));

        let v = get_json(&format!(
            "{}/api/v1/label/instance/values",
            server.base_url()
        ));
        assert_eq!(v["data"], json!(["n1", "n2"]));

        let v = get_json(&format!(
            "{}/api/v1/series?match[]=power_watts%7Binstance%3D%22n1%22%7D",
            server.base_url()
        ));
        assert_eq!(v["data"].as_array().unwrap().len(), 1);

        let v = get_json(&format!("{}/api/v1/status/tsdb", server.base_url()));
        assert_eq!(v["data"]["headStats"]["numSeries"], 2);
        server.shutdown();
    }

    #[test]
    fn delete_series_endpoint() {
        let (server, db) = serve();
        let resp = Client::new()
            .post(
                &format!(
                    "{}/api/v1/admin/tsdb/delete_series?match[]=%7Binstance%3D%22n1%22%7D",
                    server.base_url()
                ),
                Vec::new(),
                "application/json",
            )
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["data"]["deletedSeries"], 1);
        assert_eq!(db.series_count(), 1);
        server.shutdown();
    }

    #[test]
    fn trace_param_returns_stage_breakdown() {
        let (server, _db) = serve();
        let v = get_json(&format!(
            "{}/api/v1/query_range?query=power_watts&start=0&end=135&step=15&trace=1",
            server.base_url()
        ));
        let t = &v["data"]["trace"];
        assert_eq!(t["traceId"].as_str().unwrap().len(), 16);
        let stages = t["stages"].as_array().unwrap();
        assert!(stages.iter().any(|s| s["name"] == "parse"));
        assert!(stages.iter().any(|s| s["name"] == "eval"));
        let stage_sum: f64 = stages.iter().map(|s| s["ms"].as_f64().unwrap()).sum();
        assert!(stage_sum <= t["totalMs"].as_f64().unwrap() + 1e-6);
        assert_eq!(t["counts"]["steps"].as_u64(), Some(10));
        assert!(t["counts"]["series"].as_u64().unwrap() >= 2);

        // An upstream trace ID in the header is kept verbatim.
        let resp = Client::new()
            .with_header(TRACE_HEADER, "cafe0123cafe0123")
            .get(&format!(
                "{}/api/v1/query?query=power_watts&trace=1",
                server.base_url()
            ))
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["data"]["trace"]["traceId"], "cafe0123cafe0123");

        // Without trace=1 the payload stays untouched.
        let v = get_json(&format!(
            "{}/api/v1/query?query=power_watts",
            server.base_url()
        ));
        assert!(v["data"]["trace"].is_null());
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_parseable_text() {
        let (server, _db) = serve();
        // Touch the query path so latency histograms have observations.
        get_json(&format!(
            "{}/api/v1/query?query=power_watts",
            server.base_url()
        ));
        let resp = Client::new()
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::OK);
        let text = String::from_utf8(resp.body).unwrap();
        let parsed = ceems_metrics::parse_text(&text).expect("/metrics must parse");
        let has = |n: &str| parsed.samples.iter().any(|s| s.name == n);
        assert!(has("ceems_tsdb_head_series"));
        assert!(has("ceems_tsdb_select_duration_seconds_count"));
        assert!(has("ceems_tsdb_slow_queries_total"));
        server.shutdown();
    }

    #[test]
    fn wal_fetch_limiter_buckets_per_follower() {
        let limiter = WalFetchLimiter::new(1000.0, 2.0);
        assert!(limiter.try_acquire("a").is_ok());
        assert!(limiter.try_acquire("a").is_ok());
        let wait = limiter.try_acquire("a").expect_err("burst of 2 exhausted");
        assert!(wait > 0.0 && wait <= 1.0 / 1000.0 + 1e-6);
        // Another follower has its own bucket.
        assert!(limiter.try_acquire("b").is_ok());
        assert_eq!(limiter.throttled_counter().get(), 1.0);
        // The bucket refills with time.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(limiter.try_acquire("a").is_ok());
    }

    #[test]
    fn wal_fetch_endpoint_sheds_with_retry_after() {
        let db = Arc::new(Tsdb::default());
        let mut opts = ApiOptions::new(Arc::new(|| 0));
        opts.wal_fetch_limit = Some(WalFetchLimiter::new(0.5, 1.0));
        let server =
            HttpServer::serve(ServerConfig::ephemeral(), api_router_with(db, opts)).unwrap();
        let url = format!("{}/api/v1/wal/fetch?seq=0&offset=0", server.base_url());
        let client = Client::new().with_header("x-wal-follower", "f1");
        // First request spends the only token (the un-WAL'd db 404s, but
        // the limiter sits in front of that).
        let first = client.get(&url).unwrap();
        assert_ne!(first.status, Status::TOO_MANY_REQUESTS);
        let second = client.get(&url).unwrap();
        assert_eq!(second.status, Status::TOO_MANY_REQUESTS);
        let retry = second.retry_after_secs().expect("Retry-After present");
        assert!(retry > 0.0 && retry <= 2.0, "retry_after={retry}");
        server.shutdown();
    }

    #[test]
    fn slow_query_log_fires_only_over_threshold() {
        let db = Arc::new(Tsdb::default());
        db.append(&labels! {"__name__" => "power_watts"}, 0, 1.0);
        let serve_with = |log: SlowQueryLog, db: Arc<Tsdb>| {
            let opts = ApiOptions {
                now: Arc::new(|| 0),
                registry: None,
                slow_query: Some(log),
                wal_fetch_limit: None,
                trace_sink: None,
            };
            HttpServer::serve(ServerConfig::ephemeral(), api_router_with(db, opts)).unwrap()
        };

        // Threshold below any real wall time: every query logs one line.
        let lines = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let sink = lines.clone();
        let log = SlowQueryLog::new(1e-6).with_sink(move |l| sink.lock().unwrap().push(l.into()));
        let server = serve_with(log, db.clone());
        get_json(&format!(
            "{}/api/v1/query?query=power_watts",
            server.base_url()
        ));
        server.shutdown();
        let lines = Arc::try_unwrap(lines).unwrap().into_inner().unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("slow_query component=tsdb endpoint=/api/v1/query "));
        assert!(lines[0].ends_with("query=\"power_watts\""));

        // Threshold far above anything achievable: never fires.
        let fired = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let sink = fired.clone();
        let log = SlowQueryLog::new(1e12).with_sink(move |l| sink.lock().unwrap().push(l.into()));
        let server = serve_with(log, db);
        get_json(&format!(
            "{}/api/v1/query?query=power_watts",
            server.base_url()
        ));
        server.shutdown();
        assert!(fired.lock().unwrap().is_empty());
    }

    #[test]
    fn error_responses() {
        let (server, _db) = serve();
        let resp = Client::new()
            .get(&format!("{}/api/v1/query", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        let resp = Client::new()
            .get(&format!(
                "{}/api/v1/query?query=rate(power_watts)",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status, Status::UNPROCESSABLE);
        let resp = Client::new()
            .get(&format!(
                "{}/api/v1/query_range?query=up&start=0&end=10&step=0",
                server.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        let resp = Client::new()
            .get(&format!("{}/api/v1/series", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }
}
