//! Inverted label index.
//!
//! Maps label `name → value → posting list` (sorted series ids). Selectors
//! with exact matchers intersect posting lists; regex/negative matchers
//! scan the value space of the label, which is how Prometheus' index works
//! and why high label cardinality (§II.C of the paper) hurts.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};

use crate::types::SeriesId;

/// The index plus the series registry.
#[derive(Debug, Default)]
pub struct LabelIndex {
    postings: BTreeMap<String, BTreeMap<String, Vec<SeriesId>>>,
    series: HashMap<SeriesId, Arc<LabelSet>>,
    by_fingerprint: HashMap<u64, Vec<SeriesId>>,
    next_id: SeriesId,
    /// Bumped on every series creation or removal. Posting-list caches tag
    /// entries with the generation they were computed at and discard them
    /// when it moves, so a cache can never serve ids across a membership
    /// change.
    generation: u64,
}

impl LabelIndex {
    /// Empty index.
    pub fn new() -> LabelIndex {
        LabelIndex::default()
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Index generation: changes whenever series membership changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up an existing series id for exactly these labels.
    pub fn lookup(&self, labels: &LabelSet) -> Option<SeriesId> {
        self.lookup_with_fingerprint(labels, labels.fingerprint())
    }

    /// [`Self::lookup`] with a precomputed fingerprint, so the append path
    /// hashes a label set once across its lookup + create phases.
    pub fn lookup_with_fingerprint(&self, labels: &LabelSet, fp: u64) -> Option<SeriesId> {
        self.by_fingerprint
            .get(&fp)?
            .iter()
            .copied()
            .find(|id| self.series[id].as_ref() == labels)
    }

    /// Gets an existing id or registers a new series.
    pub fn get_or_create(&mut self, labels: &LabelSet) -> SeriesId {
        self.get_or_create_with_fingerprint(labels, labels.fingerprint())
    }

    /// [`Self::get_or_create`] with a precomputed fingerprint.
    pub fn get_or_create_with_fingerprint(&mut self, labels: &LabelSet, fp: u64) -> SeriesId {
        if let Some(id) = self.lookup_with_fingerprint(labels, fp) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.generation += 1;
        self.series.insert(id, Arc::new(labels.clone()));
        self.by_fingerprint.entry(fp).or_default().push(id);
        for (k, v) in labels.iter() {
            let list = self
                .postings
                .entry(k.to_string())
                .or_default()
                .entry(v.to_string())
                .or_default();
            // Ids are handed out in increasing order, so push keeps lists sorted.
            list.push(id);
        }
        id
    }

    /// Registers a series under a fixed id during WAL or checkpoint replay,
    /// so recovered ids match what logged `Samples` records reference.
    /// No-op when the id already exists. Unlike [`Self::get_or_create`],
    /// ids may arrive in any order (a follower bootstraps from a checkpoint
    /// sorted by id, then replays creates in log order), so posting lists
    /// insert at the sorted position instead of pushing.
    pub fn insert_replayed(&mut self, id: SeriesId, labels: &LabelSet) {
        if self.series.contains_key(&id) {
            return;
        }
        self.generation += 1;
        self.next_id = self.next_id.max(id + 1);
        self.series.insert(id, Arc::new(labels.clone()));
        self.by_fingerprint
            .entry(labels.fingerprint())
            .or_default()
            .push(id);
        for (k, v) in labels.iter() {
            let list = self
                .postings
                .entry(k.to_string())
                .or_default()
                .entry(v.to_string())
                .or_default();
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
    }

    /// Forces the generation counter (checkpoint restore: recovered caches
    /// must invalidate against the same clock the pre-crash index used).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// The id the next created series would get.
    pub fn next_id(&self) -> SeriesId {
        self.next_id
    }

    /// Forces the next-id counter (checkpoint restore: tombstoned series may
    /// have held ids above every live one).
    pub fn set_next_id(&mut self, next_id: SeriesId) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Every live series as `(id, labels)`, sorted by id (checkpoint
    /// snapshots iterate this).
    pub fn all_series(&self) -> Vec<(SeriesId, Arc<LabelSet>)> {
        let mut out: Vec<(SeriesId, Arc<LabelSet>)> = self
            .series
            .iter()
            .map(|(&id, labels)| (id, Arc::clone(labels)))
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Removes a series entirely (tombstone purge).
    pub fn remove(&mut self, id: SeriesId) {
        let Some(labels) = self.series.remove(&id) else {
            return;
        };
        self.generation += 1;
        if let Some(v) = self.by_fingerprint.get_mut(&labels.fingerprint()) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.by_fingerprint.remove(&labels.fingerprint());
            }
        }
        for (k, val) in labels.iter() {
            if let Some(values) = self.postings.get_mut(k) {
                if let Some(list) = values.get_mut(val) {
                    list.retain(|&x| x != id);
                    if list.is_empty() {
                        values.remove(val);
                    }
                }
                if values.is_empty() {
                    self.postings.remove(k);
                }
            }
        }
    }

    /// Labels of a series, shared with the registry (cheap to clone).
    pub fn labels(&self, id: SeriesId) -> Option<&Arc<LabelSet>> {
        self.series.get(&id)
    }

    /// All label names present.
    pub fn label_names(&self) -> Vec<String> {
        self.postings.keys().cloned().collect()
    }

    /// All values of a label name.
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.postings
            .get(name)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Resolves matchers to the sorted set of matching series ids.
    pub fn select(&self, matchers: &[LabelMatcher]) -> Vec<SeriesId> {
        if matchers.is_empty() {
            let mut all: Vec<SeriesId> = self.series.keys().copied().collect();
            all.sort_unstable();
            return all;
        }

        // Candidate narrowing: start from the cheapest positive matcher.
        let mut candidate: Option<Vec<SeriesId>> = None;
        for m in matchers {
            let list = match m.op {
                MatchOp::Eq if m.is_exact() => Some(
                    self.postings
                        .get(&m.name)
                        .and_then(|values| values.get(&m.value))
                        .cloned()
                        .unwrap_or_default(),
                ),
                MatchOp::Re => {
                    // Union of posting lists of matching values.
                    self.postings.get(&m.name).map(|values| {
                        let mut out: Vec<SeriesId> = values
                            .iter()
                            .filter(|(v, _)| m.matches_value(v))
                            .flat_map(|(_, ids)| ids.iter().copied())
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        out
                    })
                }
                _ => None, // negative / empty matchers can't narrow
            };
            if let Some(list) = list {
                candidate = Some(match candidate {
                    None => list,
                    Some(prev) => intersect_sorted(&prev, &list),
                });
            }
        }

        let base: Vec<SeriesId> = match candidate {
            Some(c) => c,
            None => {
                let mut all: Vec<SeriesId> = self.series.keys().copied().collect();
                all.sort_unstable();
                all
            }
        };

        // Final filter applies every matcher (covers negatives and the
        // absent-label-means-empty rule).
        base.into_iter()
            .filter(|id| {
                let labels = &self.series[id];
                matchers.iter().all(|m| m.matches(labels))
            })
            .collect()
    }
}

/// Intersects two sorted id lists with galloping search.
///
/// The shorter list drives; each of its ids is located in the longer list by
/// doubling probes from the last match position, then a binary search over
/// the bracketed window. Cost is `O(m log(n/m))` for lists of length `m ≤ n`,
/// which beats the linear merge exactly when one matcher is far more
/// selective than the other — the common shape for
/// `{__name__="x", instance=~".+"}` style selectors.
pub fn intersect_sorted(a: &[SeriesId], b: &[SeriesId]) -> Vec<SeriesId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(short.len());
    let mut base = 0; // everything below `base` in `long` is already consumed
    for &id in short {
        if base >= long.len() {
            break;
        }
        // Gallop: find an exponent window [base + step/2, base + step]
        // whose upper bound is >= id.
        let mut step = 1;
        while base + step < long.len() && long[base + step] < id {
            step <<= 1;
        }
        let lo = base + step / 2;
        let hi = (base + step + 1).min(long.len());
        match long[lo..hi].binary_search(&id) {
            Ok(pos) => {
                out.push(id);
                base = lo + pos + 1;
            }
            Err(pos) => {
                base = lo + pos;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn sample_index() -> LabelIndex {
        let mut idx = LabelIndex::new();
        idx.get_or_create(&labels! {"__name__" => "up", "instance" => "n1", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "up", "instance" => "n2", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "power", "instance" => "n1", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "power", "instance" => "gpu-1", "job" => "dcgm"});
        idx
    }

    #[test]
    fn ids_stable_per_label_set() {
        let mut idx = LabelIndex::new();
        let a = idx.get_or_create(&labels! {"x" => "1"});
        let b = idx.get_or_create(&labels! {"x" => "2"});
        let a2 = idx.get_or_create(&labels! {"x" => "1"});
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(idx.series_count(), 2);
    }

    #[test]
    fn exact_select_intersects() {
        let idx = sample_index();
        let ids = idx.select(&[
            LabelMatcher::eq("__name__", "up"),
            LabelMatcher::eq("instance", "n1"),
        ]);
        assert_eq!(ids.len(), 1);
        assert_eq!(
            idx.labels(ids[0]).unwrap().get("instance"),
            Some("n1")
        );
    }

    #[test]
    fn regex_and_negative_matchers() {
        let idx = sample_index();
        let re = LabelMatcher::new("instance", MatchOp::Re, "n\\d+").unwrap();
        let ids = idx.select(&[re]);
        assert_eq!(ids.len(), 3);

        let ne = LabelMatcher::new("job", MatchOp::Ne, "dcgm").unwrap();
        let ids = idx.select(&[LabelMatcher::eq("__name__", "power"), ne]);
        assert_eq!(ids.len(), 1);

        let nre = LabelMatcher::new("instance", MatchOp::Nre, "gpu-.*").unwrap();
        let ids = idx.select(&[nre]);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn empty_matcher_set_selects_all() {
        let idx = sample_index();
        assert_eq!(idx.select(&[]).len(), 4);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = sample_index();
        assert!(idx.select(&[LabelMatcher::eq("__name__", "nope")]).is_empty());
        assert!(idx
            .select(&[
                LabelMatcher::eq("__name__", "up"),
                LabelMatcher::eq("job", "dcgm")
            ])
            .is_empty());
    }

    #[test]
    fn label_names_and_values() {
        let idx = sample_index();
        assert_eq!(
            idx.label_names(),
            vec!["__name__".to_string(), "instance".into(), "job".into()]
        );
        assert_eq!(
            idx.label_values("__name__"),
            vec!["power".to_string(), "up".into()]
        );
        assert!(idx.label_values("none").is_empty());
    }

    #[test]
    fn remove_purges_postings() {
        let mut idx = sample_index();
        let ids = idx.select(&[LabelMatcher::eq("job", "dcgm")]);
        assert_eq!(ids.len(), 1);
        idx.remove(ids[0]);
        assert!(idx.select(&[LabelMatcher::eq("job", "dcgm")]).is_empty());
        assert_eq!(idx.series_count(), 3);
        assert!(!idx.label_values("job").contains(&"dcgm".to_string()));
        // Removing twice is a no-op.
        idx.remove(ids[0]);
        assert_eq!(idx.series_count(), 3);
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn intersect_gallops_asymmetric_lists() {
        let long: Vec<SeriesId> = (0..10_000).collect();
        let short: Vec<SeriesId> = vec![0, 17, 4096, 9999];
        assert_eq!(intersect_sorted(&short, &long), short);
        assert_eq!(intersect_sorted(&long, &short), short);
        // Ids past the end of the long list.
        assert_eq!(intersect_sorted(&[5, 20_000], &long), vec![5]);
        // Disjoint.
        let evens: Vec<SeriesId> = (0..1000).map(|x| x * 2).collect();
        let odds: Vec<SeriesId> = (0..1000).map(|x| x * 2 + 1).collect();
        assert!(intersect_sorted(&evens, &odds).is_empty());
        // Matches a naive filter on interleaved lists.
        let a: Vec<SeriesId> = (0..500).map(|x| x * 3).collect();
        let b: Vec<SeriesId> = (0..500).map(|x| x * 5).collect();
        let expect: Vec<SeriesId> = a.iter().copied().filter(|x| b.contains(x)).collect();
        assert_eq!(intersect_sorted(&a, &b), expect);
    }

    #[test]
    fn generation_tracks_membership_changes() {
        let mut idx = LabelIndex::new();
        let g0 = idx.generation();
        let id = idx.get_or_create(&labels! {"x" => "1"});
        let g1 = idx.generation();
        assert_ne!(g0, g1, "creation must bump the generation");
        // Re-resolving an existing series is not a membership change.
        idx.get_or_create(&labels! {"x" => "1"});
        assert_eq!(idx.generation(), g1);
        idx.remove(id);
        assert_ne!(idx.generation(), g1, "removal must bump the generation");
        let g2 = idx.generation();
        // Removing a dead id is a no-op.
        idx.remove(id);
        assert_eq!(idx.generation(), g2);
    }

    #[test]
    fn absent_label_matches_empty_pattern() {
        let mut idx = LabelIndex::new();
        idx.get_or_create(&labels! {"__name__" => "m"});
        // instance="" matches series without the label.
        let ids = idx.select(&[LabelMatcher::eq("instance", "")]);
        assert_eq!(ids.len(), 1);
    }
}
