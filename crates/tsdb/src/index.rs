//! Inverted label index.
//!
//! Maps label `name → value → posting list` (sorted series ids). Selectors
//! with exact matchers intersect posting lists; regex/negative matchers
//! scan the value space of the label, which is how Prometheus' index works
//! and why high label cardinality (§II.C of the paper) hurts.

use std::collections::{BTreeMap, HashMap};

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};

use crate::types::SeriesId;

/// The index plus the series registry.
#[derive(Debug, Default)]
pub struct LabelIndex {
    postings: BTreeMap<String, BTreeMap<String, Vec<SeriesId>>>,
    series: HashMap<SeriesId, LabelSet>,
    by_fingerprint: HashMap<u64, Vec<SeriesId>>,
    next_id: SeriesId,
}

impl LabelIndex {
    /// Empty index.
    pub fn new() -> LabelIndex {
        LabelIndex::default()
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Looks up an existing series id for exactly these labels.
    pub fn lookup(&self, labels: &LabelSet) -> Option<SeriesId> {
        let fp = labels.fingerprint();
        self.by_fingerprint
            .get(&fp)?
            .iter()
            .copied()
            .find(|id| &self.series[id] == labels)
    }

    /// Gets an existing id or registers a new series.
    pub fn get_or_create(&mut self, labels: &LabelSet) -> SeriesId {
        if let Some(id) = self.lookup(labels) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.series.insert(id, labels.clone());
        self.by_fingerprint
            .entry(labels.fingerprint())
            .or_default()
            .push(id);
        for (k, v) in labels.iter() {
            let list = self
                .postings
                .entry(k.to_string())
                .or_default()
                .entry(v.to_string())
                .or_default();
            // Ids are handed out in increasing order, so push keeps lists sorted.
            list.push(id);
        }
        id
    }

    /// Removes a series entirely (tombstone purge).
    pub fn remove(&mut self, id: SeriesId) {
        let Some(labels) = self.series.remove(&id) else {
            return;
        };
        if let Some(v) = self.by_fingerprint.get_mut(&labels.fingerprint()) {
            v.retain(|&x| x != id);
            if v.is_empty() {
                self.by_fingerprint.remove(&labels.fingerprint());
            }
        }
        for (k, val) in labels.iter() {
            if let Some(values) = self.postings.get_mut(k) {
                if let Some(list) = values.get_mut(val) {
                    list.retain(|&x| x != id);
                    if list.is_empty() {
                        values.remove(val);
                    }
                }
                if values.is_empty() {
                    self.postings.remove(k);
                }
            }
        }
    }

    /// Labels of a series.
    pub fn labels(&self, id: SeriesId) -> Option<&LabelSet> {
        self.series.get(&id)
    }

    /// All label names present.
    pub fn label_names(&self) -> Vec<String> {
        self.postings.keys().cloned().collect()
    }

    /// All values of a label name.
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.postings
            .get(name)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Resolves matchers to the sorted set of matching series ids.
    pub fn select(&self, matchers: &[LabelMatcher]) -> Vec<SeriesId> {
        if matchers.is_empty() {
            let mut all: Vec<SeriesId> = self.series.keys().copied().collect();
            all.sort_unstable();
            return all;
        }

        // Candidate narrowing: start from the cheapest positive matcher.
        let mut candidate: Option<Vec<SeriesId>> = None;
        for m in matchers {
            let list = match m.op {
                MatchOp::Eq if m.is_exact() => Some(
                    self.postings
                        .get(&m.name)
                        .and_then(|values| values.get(&m.value))
                        .cloned()
                        .unwrap_or_default(),
                ),
                MatchOp::Re => {
                    // Union of posting lists of matching values.
                    self.postings.get(&m.name).map(|values| {
                        let mut out: Vec<SeriesId> = values
                            .iter()
                            .filter(|(v, _)| m.matches_value(v))
                            .flat_map(|(_, ids)| ids.iter().copied())
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        out
                    })
                }
                _ => None, // negative / empty matchers can't narrow
            };
            if let Some(list) = list {
                candidate = Some(match candidate {
                    None => list,
                    Some(prev) => intersect_sorted(&prev, &list),
                });
            }
        }

        let base: Vec<SeriesId> = match candidate {
            Some(c) => c,
            None => {
                let mut all: Vec<SeriesId> = self.series.keys().copied().collect();
                all.sort_unstable();
                all
            }
        };

        // Final filter applies every matcher (covers negatives and the
        // absent-label-means-empty rule).
        base.into_iter()
            .filter(|id| {
                let labels = &self.series[id];
                matchers.iter().all(|m| m.matches(labels))
            })
            .collect()
    }
}

/// Intersects two sorted id lists.
pub fn intersect_sorted(a: &[SeriesId], b: &[SeriesId]) -> Vec<SeriesId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn sample_index() -> LabelIndex {
        let mut idx = LabelIndex::new();
        idx.get_or_create(&labels! {"__name__" => "up", "instance" => "n1", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "up", "instance" => "n2", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "power", "instance" => "n1", "job" => "ceems"});
        idx.get_or_create(&labels! {"__name__" => "power", "instance" => "gpu-1", "job" => "dcgm"});
        idx
    }

    #[test]
    fn ids_stable_per_label_set() {
        let mut idx = LabelIndex::new();
        let a = idx.get_or_create(&labels! {"x" => "1"});
        let b = idx.get_or_create(&labels! {"x" => "2"});
        let a2 = idx.get_or_create(&labels! {"x" => "1"});
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(idx.series_count(), 2);
    }

    #[test]
    fn exact_select_intersects() {
        let idx = sample_index();
        let ids = idx.select(&[
            LabelMatcher::eq("__name__", "up"),
            LabelMatcher::eq("instance", "n1"),
        ]);
        assert_eq!(ids.len(), 1);
        assert_eq!(
            idx.labels(ids[0]).unwrap().get("instance"),
            Some("n1")
        );
    }

    #[test]
    fn regex_and_negative_matchers() {
        let idx = sample_index();
        let re = LabelMatcher::new("instance", MatchOp::Re, "n\\d+").unwrap();
        let ids = idx.select(&[re]);
        assert_eq!(ids.len(), 3);

        let ne = LabelMatcher::new("job", MatchOp::Ne, "dcgm").unwrap();
        let ids = idx.select(&[LabelMatcher::eq("__name__", "power"), ne]);
        assert_eq!(ids.len(), 1);

        let nre = LabelMatcher::new("instance", MatchOp::Nre, "gpu-.*").unwrap();
        let ids = idx.select(&[nre]);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn empty_matcher_set_selects_all() {
        let idx = sample_index();
        assert_eq!(idx.select(&[]).len(), 4);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = sample_index();
        assert!(idx.select(&[LabelMatcher::eq("__name__", "nope")]).is_empty());
        assert!(idx
            .select(&[
                LabelMatcher::eq("__name__", "up"),
                LabelMatcher::eq("job", "dcgm")
            ])
            .is_empty());
    }

    #[test]
    fn label_names_and_values() {
        let idx = sample_index();
        assert_eq!(
            idx.label_names(),
            vec!["__name__".to_string(), "instance".into(), "job".into()]
        );
        assert_eq!(
            idx.label_values("__name__"),
            vec!["power".to_string(), "up".into()]
        );
        assert!(idx.label_values("none").is_empty());
    }

    #[test]
    fn remove_purges_postings() {
        let mut idx = sample_index();
        let ids = idx.select(&[LabelMatcher::eq("job", "dcgm")]);
        assert_eq!(ids.len(), 1);
        idx.remove(ids[0]);
        assert!(idx.select(&[LabelMatcher::eq("job", "dcgm")]).is_empty());
        assert_eq!(idx.series_count(), 3);
        assert!(!idx.label_values("job").contains(&"dcgm".to_string()));
        // Removing twice is a no-op.
        idx.remove(ids[0]);
        assert_eq!(idx.series_count(), 3);
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert!(intersect_sorted(&[], &[1]).is_empty());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn absent_label_matches_empty_pattern() {
        let mut idx = LabelIndex::new();
        idx.get_or_create(&labels! {"__name__" => "m"});
        // instance="" matches series without the label.
        let ids = idx.select(&[LabelMatcher::eq("instance", "")]);
        assert_eq!(ids.len(), 1);
    }
}
