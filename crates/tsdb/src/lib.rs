#![warn(missing_docs)]
//! Time series database (S2–S4 in `DESIGN.md`).
//!
//! CEEMS stores every metric in Prometheus and derives per-job power with
//! recording rules; Thanos provides long-term storage. This crate is the
//! from-scratch stand-in:
//!
//! * [`chunk`] — Gorilla-style compressed chunks (delta-of-delta
//!   timestamps, XOR values), the storage hot path.
//! * [`index`] — inverted label index with posting-list intersection.
//! * [`head`] — the in-memory write head (striped for concurrent appends).
//! * [`block`] — sealed immutable blocks + compaction from the head.
//! * [`storage`] — [`storage::Tsdb`]: appends, parallel sharded selects,
//!   tombstone deletes (the cardinality cleanup of §II.C), retention.
//! * [`cache`] — generation-checked LRU cache of matcher resolutions for
//!   scan-heavy (regex/negative) selectors.
//! * [`promql`] — a PromQL-subset engine: selectors, `rate`/`increase` with
//!   counter-reset handling, arithmetic, aggregations — enough to express
//!   Eq. (1) exactly as the paper's recording rules do.
//! * [`rules`] — recording-rule groups that materialise derived series.
//! * [`scrape`] — the scrape manager pulling exporters (HTTP or in-process)
//!   into the TSDB.
//! * [`longterm`] — Thanos-like: replication into a cold store, 5-minute
//!   downsampling, fan-in queries across hot+cold.
//! * [`httpapi`] — the Prometheus HTTP API subset Grafana / the LB speak.
//! * [`wal`] — segmented write-ahead log + checkpoints: crash recovery via
//!   [`storage::Tsdb::open`] (S16).
//! * [`replica`] — follower catch-up: stream a leader's WAL over HTTP into
//!   a local (optionally itself durable) TSDB.
//! * [`election`] — leader failover (S24): epoch-fenced deterministic
//!   election, write re-routing via [`election::WriteRouter`], and
//!   divergence-safe rejoin of a deposed leader.

pub mod block;
pub mod cache;
pub mod chunk;
pub mod election;
pub mod head;
pub mod httpapi;
pub mod index;
pub mod longterm;
pub mod promql;
pub mod replica;
pub mod rules;
pub mod scrape;
pub mod selfmon;
pub mod storage;
pub mod types;
pub mod wal;

pub use election::{FailoverConfig, NodeRole, ReplicationGroup, WriteRouter};
pub use storage::{StaleEpoch, Tsdb, TsdbConfig, TsdbInstruments};
pub use types::{Sample, SeriesData};
pub use wal::{DiskFaults, FsyncMode, ScriptedDiskFaults, WalOptions, WalPosition};
