//! Long-term storage: replication, downsampling and fan-in queries
//! (the Thanos role in the paper's Fig. 1).
//!
//! The hot TSDB keeps a bounded window; [`LongTermStore::replicate`] seals
//! windows into immutable [`Block`]s and simultaneously produces 5-minute
//! downsampled series (`avg/min/max/count` with a `__rollup__` label).
//! [`FanInQuerier`] answers PromQL selects across hot + cold transparently.

use parking_lot::RwLock;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;

use crate::block::Block;
use crate::promql::Queryable;
use crate::storage::Tsdb;
use crate::types::SeriesData;

/// Downsampling resolution (5 minutes, like Thanos' first level).
pub const DOWNSAMPLE_MS: i64 = 5 * 60 * 1000;

/// Label marking downsampled series.
pub const ROLLUP_LABEL: &str = "__rollup__";

/// The cold store.
#[derive(Default)]
pub struct LongTermStore {
    blocks: RwLock<Vec<Block>>,
    downsampled: Tsdb,
}

impl LongTermStore {
    /// Empty store.
    pub fn new() -> LongTermStore {
        LongTermStore::default()
    }

    /// Replicates everything in `[start, end]` from the hot TSDB into a new
    /// block, and appends downsampled aggregates. Returns the number of
    /// series replicated.
    pub fn replicate(&self, hot: &Tsdb, start_ms: i64, end_ms: i64) -> usize {
        let series = hot.select(&[], start_ms, end_ms);
        let n = series.len();
        if n == 0 {
            return 0;
        }
        for s in &series {
            self.downsample_series(s);
        }
        self.blocks.write().push(Block::from_series(series));
        n
    }

    fn downsample_series(&self, s: &SeriesData) {
        let mut window_start = None;
        let mut bucket: Vec<f64> = Vec::new();
        let flush = |start: i64, bucket: &mut Vec<f64>| {
            if bucket.is_empty() {
                return;
            }
            let t = start + DOWNSAMPLE_MS - 1;
            let sum: f64 = bucket.iter().sum();
            let count = bucket.len() as f64;
            let min = bucket.iter().copied().fold(f64::INFINITY, f64::min);
            let max = bucket.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (rollup, v) in [
                ("avg", sum / count),
                ("min", min),
                ("max", max),
                ("count", count),
            ] {
                self.downsampled
                    .append(&s.labels.with(ROLLUP_LABEL, rollup), t, v);
            }
            bucket.clear();
        };
        for sample in &s.samples {
            let w = sample.t_ms - sample.t_ms.rem_euclid(DOWNSAMPLE_MS);
            match window_start {
                None => window_start = Some(w),
                Some(cur) if cur != w => {
                    flush(cur, &mut bucket);
                    window_start = Some(w);
                }
                _ => {}
            }
            bucket.push(sample.v);
        }
        if let Some(cur) = window_start {
            flush(cur, &mut bucket);
        }
    }

    /// Number of blocks held.
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total compressed bytes across blocks.
    pub fn byte_len(&self) -> usize {
        self.blocks.read().iter().map(|b| b.byte_len()).sum()
    }

    /// Raw (full-resolution) select across blocks.
    pub fn select_raw(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        let blocks = self.blocks.read();
        let mut by_labels: Vec<SeriesData> = Vec::new();
        for b in blocks.iter() {
            for s in b.select(matchers, tmin, tmax) {
                match by_labels.iter_mut().find(|e| e.labels == s.labels) {
                    Some(existing) => existing.samples.extend(s.samples),
                    None => by_labels.push(s),
                }
            }
        }
        for s in &mut by_labels {
            s.samples.sort_by_key(|x| x.t_ms);
            s.samples.dedup_by_key(|x| x.t_ms);
        }
        by_labels
    }

    /// Downsampled select: `rollup` is one of `avg/min/max/count`.
    pub fn select_downsampled(
        &self,
        matchers: &[LabelMatcher],
        rollup: &str,
        tmin: i64,
        tmax: i64,
    ) -> Vec<SeriesData> {
        let mut ms: Vec<LabelMatcher> = matchers.to_vec();
        ms.push(LabelMatcher::eq(ROLLUP_LABEL, rollup));
        self.downsampled
            .select(&ms, tmin, tmax)
            .into_iter()
            .map(|mut s| {
                s.labels = std::sync::Arc::new(s.labels.without(ROLLUP_LABEL));
                s
            })
            .collect()
    }
}

/// A queryable view over hot + cold storage: samples newer than the hot
/// horizon come from the hot TSDB, older ones from the cold store's raw
/// blocks, merged per series.
pub struct FanInQuerier {
    hot: std::sync::Arc<Tsdb>,
    cold: std::sync::Arc<LongTermStore>,
    /// Timestamps >= this are served by the hot TSDB.
    pub hot_horizon_ms: i64,
}

impl FanInQuerier {
    /// Creates the fan-in view.
    pub fn new(
        hot: std::sync::Arc<Tsdb>,
        cold: std::sync::Arc<LongTermStore>,
        hot_horizon_ms: i64,
    ) -> FanInQuerier {
        FanInQuerier {
            hot,
            cold,
            hot_horizon_ms,
        }
    }
}

impl Queryable for FanInQuerier {
    fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        let wants_cold = tmin < self.hot_horizon_ms;
        let wants_hot = tmax >= self.hot_horizon_ms;

        // When the range straddles the horizon, scan the cold blocks on a
        // scoped sibling thread while this thread queries the hot TSDB.
        // Merge order stays cold-then-hot, so results match the sequential
        // path exactly.
        let (cold, hot) = if wants_cold && wants_hot {
            crossbeam::thread::scope(|scope| {
                let cold_handle = scope.spawn(|_| {
                    self.cold
                        .select_raw(matchers, tmin, tmax.min(self.hot_horizon_ms - 1))
                });
                let hot = self.hot.select(matchers, tmin.max(self.hot_horizon_ms), tmax);
                (cold_handle.join().expect("cold fan-in panicked"), hot)
            })
            .expect("fan-in scope")
        } else if wants_cold {
            (
                self.cold
                    .select_raw(matchers, tmin, tmax.min(self.hot_horizon_ms - 1)),
                Vec::new(),
            )
        } else {
            (
                Vec::new(),
                self.hot.select(matchers, tmin.max(self.hot_horizon_ms), tmax),
            )
        };

        let mut out: Vec<SeriesData> = Vec::new();
        for s in cold.into_iter().chain(hot) {
            match out.iter_mut().find(|e| e.labels == s.labels) {
                Some(existing) => existing.samples.extend(s.samples),
                None => out.push(s),
            }
        }
        for s in &mut out {
            s.samples.sort_by_key(|x| x.t_ms);
            s.samples.dedup_by_key(|x| x.t_ms);
        }
        out.retain(|s| !s.samples.is_empty());
        out
    }
}

/// Convenience: labels of a downsampled series for a rollup kind.
pub fn rollup_labels(base: &LabelSet, rollup: &str) -> LabelSet {
    base.with(ROLLUP_LABEL, rollup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use std::sync::Arc;

    fn hot_with_data(n_minutes: i64) -> Tsdb {
        let hot = Tsdb::default();
        let ls = labels! {"__name__" => "power_watts", "instance" => "n1"};
        for i in 0..(n_minutes * 4) {
            hot.append(&ls, i * 15_000, 100.0 + (i % 4) as f64);
        }
        hot
    }

    #[test]
    fn replicate_builds_blocks_and_downsamples() {
        let hot = hot_with_data(30);
        let lt = LongTermStore::new();
        let n = lt.replicate(&hot, 0, 15 * 60_000 - 1);
        assert_eq!(n, 1);
        assert_eq!(lt.block_count(), 1);

        let raw = lt.select_raw(&[LabelMatcher::eq("instance", "n1")], 0, i64::MAX);
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].samples.len(), 60); // 15 min at 15 s

        // Downsampled: 3 windows of 5 min.
        let avg = lt.select_downsampled(&[], "avg", 0, i64::MAX);
        assert_eq!(avg.len(), 1);
        assert_eq!(avg[0].samples.len(), 3);
        assert!((avg[0].samples[0].v - 101.5).abs() < 1e-9);
        let count = lt.select_downsampled(&[], "count", 0, i64::MAX);
        assert_eq!(count[0].samples[0].v, 20.0);
        let max = lt.select_downsampled(&[], "max", 0, i64::MAX);
        assert_eq!(max[0].samples[0].v, 103.0);
        // Rollup label stripped from results.
        assert_eq!(avg[0].labels.get(ROLLUP_LABEL), None);
    }

    #[test]
    fn replicate_empty_window_is_noop() {
        let hot = Tsdb::default();
        let lt = LongTermStore::new();
        assert_eq!(lt.replicate(&hot, 0, 1000), 0);
        assert_eq!(lt.block_count(), 0);
    }

    #[test]
    fn fan_in_merges_hot_and_cold() {
        let hot = Arc::new(hot_with_data(30));
        let lt = Arc::new(LongTermStore::new());
        // Seal the first 15 minutes into the cold store, then drop them
        // from the hot TSDB via retention.
        lt.replicate(&hot, 0, 15 * 60_000 - 1);
        let horizon = 15 * 60_000;
        let fan = FanInQuerier::new(hot.clone(), lt.clone(), horizon);

        let got = fan.select(&[LabelMatcher::eq("__name__", "power_watts")], 0, i64::MAX);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].samples.len(), 120);
        // Continuity across the horizon.
        assert!(got[0].samples.windows(2).all(|w| w[0].t_ms < w[1].t_ms));

        // Cold-only range.
        let got = fan.select(&[], 0, 10 * 60_000);
        assert_eq!(got[0].samples.len(), 41);
        // Hot-only range.
        let got = fan.select(&[], 20 * 60_000, 25 * 60_000);
        assert_eq!(got[0].samples.len(), 21);
    }

    #[test]
    fn fan_in_supports_promql() {
        use crate::promql::{instant_query, parse_expr, Value};
        let hot = Arc::new(hot_with_data(30));
        let lt = Arc::new(LongTermStore::new());
        lt.replicate(&hot, 0, 15 * 60_000 - 1);
        let fan = FanInQuerier::new(hot, lt, 15 * 60_000);
        let v = instant_query(
            &fan,
            &parse_expr("avg_over_time(power_watts[10m])").unwrap(),
            12 * 60_000,
        )
        .unwrap();
        let Value::Vector(v) = v else { panic!() };
        assert_eq!(v.len(), 1);
        assert!((v[0].1 - 101.5).abs() < 0.2);
    }
}
