//! Static analysis of parsed PromQL for the query frontend.
//!
//! The frontend (`ceems-qfe`) splits long `query_range` requests into
//! day-aligned sub-ranges and caches immutable past results. Both tricks
//! need facts only the parser knows:
//!
//! * [`normalize`] — a canonical rendering of the expression (sorted
//!   matchers and grouping labels, millisecond durations) so that
//!   whitespace/ordering variants of the same query share one cache key;
//! * [`max_selector_lookback_ms`] — how far back any selector reaches,
//!   which bounds the overlap a sub-range needs for `rate`/`increase`/
//!   `*_over_time` to be bit-for-bit identical to the unsplit query;
//! * [`split_safety`] — whether per-step evaluation is provably
//!   independent of the enclosing request window. `topk`/`bottomk` and
//!   offset-bearing selectors are conservatively refused (mirroring
//!   production query frontends) and must pass through verbatim.

use ceems_metrics::matcher::LabelMatcher;

use super::eval::DEFAULT_LOOKBACK_MS;
use super::{AggOp, BinOp, Expr, Grouping, VectorSelector};

/// Whether an expression may be split into sub-ranges and cached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplitSafety {
    /// Per-step evaluation only reads samples within `max_lookback_ms`
    /// before the step; sub-ranges overlap by that much and merge exactly.
    Safe {
        /// Maximum lookback of any selector in the expression (ms).
        max_lookback_ms: i64,
    },
    /// The analyzer could not prove independence; the frontend must pass
    /// the query through verbatim, unsplit and uncached.
    Unsafe {
        /// Human-readable reason, surfaced in traces and logs.
        reason: String,
    },
}

/// Canonical rendering of an expression for use as a cache key.
///
/// Matchers are sorted by `(label, op, value)`, grouping and matching
/// labels are sorted, durations are rendered in milliseconds, and numbers
/// use Rust's shortest round-trip form — so any two query strings that
/// parse to the same tree render identically.
pub fn normalize(expr: &Expr) -> String {
    let mut out = String::new();
    render(expr, &mut out);
    out
}

fn render(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Number(n) => out.push_str(&format!("{n:?}")),
        Expr::Selector(sel) => render_selector(sel, out),
        Expr::Neg(inner) => {
            out.push_str("-(");
            render(inner, out);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs, matching } => {
            out.push('(');
            render(lhs, out);
            out.push(' ');
            out.push_str(match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            });
            match matching {
                Grouping::None => {}
                Grouping::By(ls) => {
                    out.push_str(" on(");
                    out.push_str(&sorted_csv(ls));
                    out.push(')');
                }
                Grouping::Without(ls) => {
                    out.push_str(" ignoring(");
                    out.push_str(&sorted_csv(ls));
                    out.push(')');
                }
            }
            out.push(' ');
            render(rhs, out);
            out.push(')');
        }
        Expr::Agg { op, grouping, param, expr } => {
            out.push_str(match op {
                AggOp::Sum => "sum",
                AggOp::Avg => "avg",
                AggOp::Min => "min",
                AggOp::Max => "max",
                AggOp::Count => "count",
                AggOp::Topk => "topk",
                AggOp::Bottomk => "bottomk",
                AggOp::Stddev => "stddev",
                AggOp::Stdvar => "stdvar",
            });
            match grouping {
                Grouping::None => {}
                Grouping::By(ls) => {
                    out.push_str(" by(");
                    out.push_str(&sorted_csv(ls));
                    out.push(')');
                }
                Grouping::Without(ls) => {
                    out.push_str(" without(");
                    out.push_str(&sorted_csv(ls));
                    out.push(')');
                }
            }
            out.push('(');
            if let Some(p) = param {
                render(p, out);
                out.push_str(", ");
            }
            render(expr, out);
            out.push(')');
        }
        Expr::Func { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render(a, out);
            }
            out.push(')');
        }
        Expr::Compare { op, bool_mode, lhs, rhs } => {
            out.push('(');
            render(lhs, out);
            out.push(' ');
            out.push_str(op.as_str());
            if *bool_mode {
                out.push_str(" bool");
            }
            out.push(' ');
            render(rhs, out);
            out.push(')');
        }
    }
}

fn render_selector(sel: &VectorSelector, out: &mut String) {
    let mut matchers: Vec<&LabelMatcher> = sel.matchers.iter().collect();
    matchers.sort_by(|a, b| {
        (a.name.as_str(), a.op.as_str(), a.value.as_str())
            .cmp(&(b.name.as_str(), b.op.as_str(), b.value.as_str()))
    });
    out.push('{');
    for (i, m) in matchers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&m.name);
        out.push_str(m.op.as_str());
        out.push_str(&format!("{:?}", m.value));
    }
    out.push('}');
    if let Some(r) = sel.range_ms {
        out.push_str(&format!("[{r}ms]"));
    }
    if sel.offset_ms != 0 {
        out.push_str(&format!(" offset {}ms", sel.offset_ms));
    }
}

fn sorted_csv(labels: &[String]) -> String {
    let mut ls: Vec<&str> = labels.iter().map(String::as_str).collect();
    ls.sort_unstable();
    ls.join(",")
}

/// Maximum distance (ms) before an evaluation step that any selector in
/// `expr` reads. Instant selectors contribute the staleness lookback
/// window; range selectors contribute their range.
pub fn max_selector_lookback_ms(expr: &Expr) -> i64 {
    match expr {
        Expr::Number(_) => 0,
        Expr::Selector(sel) => sel.range_ms.unwrap_or(DEFAULT_LOOKBACK_MS),
        Expr::Neg(inner) => max_selector_lookback_ms(inner),
        Expr::Binary { lhs, rhs, .. } => {
            max_selector_lookback_ms(lhs).max(max_selector_lookback_ms(rhs))
        }
        Expr::Agg { param, expr, .. } => {
            let p = param.as_deref().map_or(0, max_selector_lookback_ms);
            p.max(max_selector_lookback_ms(expr))
        }
        Expr::Func { args, .. } => args.iter().map(max_selector_lookback_ms).max().unwrap_or(0),
        Expr::Compare { lhs, rhs, .. } => {
            max_selector_lookback_ms(lhs).max(max_selector_lookback_ms(rhs))
        }
    }
}

/// Decides whether `expr` may be range-split and result-cached.
///
/// Everything this engine evaluates is per-step independent, but the
/// frontend still refuses `topk`/`bottomk` (their membership churns
/// step-to-step, so cached extents would pin stale rankings in
/// production engines) and offset-bearing selectors (the offset shifts
/// the immutability horizon a cache would need to track). Unknown
/// constructs cannot reach this function — the parser rejects them — but
/// the match stays exhaustive so a future `Expr` variant fails closed at
/// compile time rather than silently defaulting to "safe".
pub fn split_safety(expr: &Expr) -> SplitSafety {
    match check(expr) {
        Some(reason) => SplitSafety::Unsafe { reason },
        None => SplitSafety::Safe { max_lookback_ms: max_selector_lookback_ms(expr) },
    }
}

fn check(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Number(_) => None,
        Expr::Selector(sel) => {
            if sel.offset_ms != 0 {
                Some(format!("selector with offset {}ms", sel.offset_ms))
            } else {
                None
            }
        }
        Expr::Neg(inner) => check(inner),
        Expr::Binary { lhs, rhs, .. } => check(lhs).or_else(|| check(rhs)),
        Expr::Agg { op, param, expr, .. } => match op {
            AggOp::Topk | AggOp::Bottomk => Some(format!(
                "{} ranks across series per step",
                if *op == AggOp::Topk { "topk" } else { "bottomk" }
            )),
            _ => param.as_deref().and_then(check).or_else(|| check(expr)),
        },
        Expr::Func { args, .. } => args.iter().find_map(check),
        Expr::Compare { lhs, rhs, .. } => check(lhs).or_else(|| check(rhs)),
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse_expr;
    use super::*;

    #[test]
    fn normalize_canonicalizes_matcher_and_grouping_order() {
        let a = parse_expr(r#"sum by (user, project) (rate(foo{b="2",a="1"}[2m]))"#).unwrap();
        let b = parse_expr(r#"sum by(project,user)(rate(foo{a="1",  b="2"}[120s]))"#).unwrap();
        assert_eq!(normalize(&a), normalize(&b));
        assert!(normalize(&a).contains("[120000ms]"));
    }

    #[test]
    fn normalize_distinguishes_different_queries() {
        let a = parse_expr(r#"rate(foo{a="1"}[2m])"#).unwrap();
        let b = parse_expr(r#"rate(foo{a="2"}[2m])"#).unwrap();
        let c = parse_expr(r#"rate(foo{a="1"}[3m])"#).unwrap();
        assert_ne!(normalize(&a), normalize(&b));
        assert_ne!(normalize(&a), normalize(&c));
    }

    #[test]
    fn lookback_takes_max_over_selectors() {
        let e = parse_expr(r#"sum(rate(foo[10m])) + avg(bar)"#).unwrap();
        assert_eq!(max_selector_lookback_ms(&e), 10 * 60 * 1000);
        let instant = parse_expr("foo").unwrap();
        assert_eq!(max_selector_lookback_ms(&instant), DEFAULT_LOOKBACK_MS);
    }

    #[test]
    fn safety_accepts_dashboard_queries() {
        for q in [
            r#"sum(uuid:ceems_cpu_time:rate{uuid="u1"})"#,
            r#"sum(rate(ceems_compute_unit_perf_flops_total{uuid="u1"}[2m])) / 1e9"#,
            "avg by (user) (foo) - min_over_time(bar[5m])",
        ] {
            let e = parse_expr(q).unwrap();
            assert!(matches!(split_safety(&e), SplitSafety::Safe { .. }), "{q}");
        }
    }

    #[test]
    fn safety_refuses_topk_and_offset() {
        let topk = parse_expr("topk(3, foo)").unwrap();
        assert!(matches!(split_safety(&topk), SplitSafety::Unsafe { .. }));
        let off = parse_expr("sum(rate(foo[2m] offset 1h))").unwrap();
        assert!(matches!(split_safety(&off), SplitSafety::Unsafe { .. }));
        let nested = parse_expr("sum(topk(2, foo)) + bar").unwrap();
        assert!(matches!(split_safety(&nested), SplitSafety::Unsafe { .. }));
    }
}
