//! Expression evaluation.

use std::collections::HashMap;

use ceems_metrics::labels::{LabelSet, METRIC_NAME_LABEL};
use ceems_metrics::matcher::LabelMatcher;

use crate::types::{Sample, SeriesData};

use super::{AggOp, BinOp, CmpOp, Expr, Grouping};

/// Anything the engine can read series from (the hot TSDB, or the fan-in
/// view over hot + long-term storage).
pub trait Queryable: Send + Sync {
    /// Series matching `matchers` with samples in `[tmin, tmax]`.
    fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData>;

    /// Worker threads [`range_query`] may fan step evaluation out over.
    /// `1` (the default) keeps evaluation on the calling thread.
    fn query_threads(&self) -> usize {
        1
    }
}

impl Queryable for crate::storage::Tsdb {
    fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        crate::storage::Tsdb::select(self, matchers, tmin, tmax)
    }

    fn query_threads(&self) -> usize {
        crate::storage::Tsdb::query_threads(self)
    }
}

/// Evaluation result.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A scalar.
    Scalar(f64),
    /// An instant vector.
    Vector(Vec<(LabelSet, f64)>),
    /// A range vector (only produced by range selectors, only consumed by
    /// `*_over_time` / `rate`-family functions).
    Matrix(Vec<SeriesData>),
}

/// Evaluation error.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "promql eval error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Default instant-selector lookback (Prometheus: 5 minutes).
pub const DEFAULT_LOOKBACK_MS: i64 = 5 * 60 * 1000;

/// Evaluation context: the data source plus the instant-selector lookback.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Data source.
    pub db: &'a dyn Queryable,
    /// Instant-selector lookback window (Prometheus defaults to 5 m; the
    /// recording-rule engine uses a much tighter window so series that
    /// stopped being written — finished jobs — go stale promptly instead
    /// of being re-recorded with fresh timestamps).
    pub lookback_ms: i64,
}

/// Evaluates an expression at one instant with the default lookback.
pub fn instant_query(db: &dyn Queryable, expr: &Expr, t_ms: i64) -> Result<Value, EvalError> {
    eval(
        &EvalCtx {
            db,
            lookback_ms: DEFAULT_LOOKBACK_MS,
        },
        expr,
        t_ms,
    )
}

/// Evaluates an expression at one instant with a custom lookback.
pub fn instant_query_with_lookback(
    db: &dyn Queryable,
    expr: &Expr,
    t_ms: i64,
    lookback_ms: i64,
) -> Result<Value, EvalError> {
    eval(&EvalCtx { db, lookback_ms }, expr, t_ms)
}

/// Below this many steps the thread fan-out costs more than it saves;
/// evaluation stays on the calling thread.
const PARALLEL_RANGE_MIN_STEPS: usize = 8;

/// Evaluates an expression over `[start, end]` at `step` intervals,
/// returning one series per result label set.
///
/// Each step is an independent instant evaluation, so steps fan out over
/// [`Queryable::query_threads`] scoped workers when there are enough of
/// them. Step results land in order-preserving slots and are merged on the
/// calling thread in step order — the per-series accumulator maps stay
/// thread-confined and the output (including first-seen series ordering and
/// which error surfaces) is bit-for-bit identical to the serial walk.
/// Workers mark themselves nested so their inner selects don't fan out
/// again into `query_threads²` threads.
pub fn range_query(
    db: &dyn Queryable,
    expr: &Expr,
    start_ms: i64,
    end_ms: i64,
    step_ms: i64,
) -> Result<Vec<SeriesData>, EvalError> {
    if step_ms <= 0 {
        return Err(EvalError("step must be positive".into()));
    }
    let ctx = EvalCtx {
        db,
        lookback_ms: DEFAULT_LOOKBACK_MS,
    };
    let mut steps: Vec<i64> = Vec::new();
    let mut t = start_ms;
    while t <= end_ms {
        steps.push(t);
        t += step_ms;
    }

    if let Some(t) = ceems_obs::trace::current() {
        t.add_count("steps", steps.len() as u64);
    }

    let threads = db.query_threads().min(steps.len());
    let results: Vec<Result<Value, EvalError>> = if threads <= 1
        || steps.len() < PARALLEL_RANGE_MIN_STEPS
        || crate::storage::is_nested_query_worker()
    {
        // Serial path: stop at the first error, exactly as the old walk did.
        let mut out = Vec::with_capacity(steps.len());
        for &t in &steps {
            let r = eval(&ctx, expr, t);
            let failed = r.is_err();
            out.push(r);
            if failed {
                break;
            }
        }
        out
    } else {
        let mut slots: Vec<Option<Result<Value, EvalError>>> =
            steps.iter().map(|_| None).collect();
        // Workers are fresh threads: re-enter the caller's query trace so
        // their selects keep attributing series/sample counts to it.
        let parent_trace = ceems_obs::trace::current();
        let filled: Vec<(usize, Result<Value, EvalError>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let steps = &steps;
                    let expr = &*expr;
                    let parent_trace = parent_trace.clone();
                    scope.spawn(move |_| {
                        crate::storage::mark_nested_query_worker();
                        let _trace = ceems_obs::trace::enter(parent_trace);
                        steps
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(threads)
                            .map(|(i, &t)| (i, eval(&ctx, expr, t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("range step worker panicked"))
                .collect()
        })
        .expect("range step scope");
        for (i, r) in filled {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|r| r.expect("slot filled")).collect()
    };

    // Merge on the calling thread, in step order.
    let mut acc: HashMap<LabelSet, Vec<Sample>> = HashMap::new();
    let mut order: Vec<LabelSet> = Vec::new();
    for (&t, result) in steps.iter().zip(results) {
        match result? {
            Value::Scalar(v) => {
                let key = LabelSet::empty();
                if !acc.contains_key(&key) {
                    order.push(key.clone());
                }
                acc.entry(key).or_default().push(Sample::new(t, v));
            }
            Value::Vector(vec) => {
                for (labels, v) in vec {
                    if !acc.contains_key(&labels) {
                        order.push(labels.clone());
                    }
                    acc.entry(labels).or_default().push(Sample::new(t, v));
                }
            }
            Value::Matrix(_) => {
                return Err(EvalError(
                    "range query over a range selector is not allowed".into(),
                ))
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|labels| {
            let samples = acc.remove(&labels).unwrap();
            SeriesData::new(labels, samples)
        })
        .collect())
}

fn eval(ctx: &EvalCtx<'_>, expr: &Expr, t_ms: i64) -> Result<Value, EvalError> {
    let db = ctx.db;
    match expr {
        Expr::Number(v) => Ok(Value::Scalar(*v)),
        Expr::Neg(inner) => match eval(ctx, inner, t_ms)? {
            Value::Scalar(v) => Ok(Value::Scalar(-v)),
            Value::Vector(v) => Ok(Value::Vector(
                v.into_iter().map(|(l, x)| (l, -x)).collect(),
            )),
            Value::Matrix(_) => Err(EvalError("cannot negate a range vector".into())),
        },
        Expr::Selector(sel) => {
            let at = t_ms - sel.offset_ms;
            match sel.range_ms {
                None => {
                    // Instant: last sample within the lookback window.
                    let series = db.select(&sel.matchers, at - ctx.lookback_ms, at);
                    Ok(Value::Vector(
                        series
                            .into_iter()
                            .filter_map(|s| {
                                s.samples.last().map(|last| ((*s.labels).clone(), last.v))
                            })
                            .collect(),
                    ))
                }
                Some(range) => {
                    let series = db.select(&sel.matchers, at - range, at);
                    Ok(Value::Matrix(series))
                }
            }
        }
        Expr::Func { name, args } => eval_func(ctx, name, args, t_ms),
        Expr::Binary {
            op,
            lhs,
            rhs,
            matching,
        } => {
            let l = eval(ctx, lhs, t_ms)?;
            let r = eval(ctx, rhs, t_ms)?;
            eval_binary(*op, l, r, matching)
        }
        Expr::Compare {
            op,
            bool_mode,
            lhs,
            rhs,
        } => {
            let l = eval(ctx, lhs, t_ms)?;
            let r = eval(ctx, rhs, t_ms)?;
            eval_compare(*op, *bool_mode, l, r)
        }
        Expr::Agg {
            op,
            grouping,
            param,
            expr,
        } => {
            let v = eval(ctx, expr, t_ms)?;
            let Value::Vector(vec) = v else {
                return Err(EvalError("aggregation expects an instant vector".into()));
            };
            let k = match param {
                Some(p) => match eval(ctx, p, t_ms)? {
                    Value::Scalar(k) => Some(k as usize),
                    _ => return Err(EvalError("topk/bottomk k must be a scalar".into())),
                },
                None => None,
            };
            Ok(Value::Vector(aggregate(*op, grouping, k, vec)?))
        }
    }
}

/// Signature used for grouping / vector matching: restrict or drop labels,
/// always dropping `__name__`.
fn signature(labels: &LabelSet, grouping: &Grouping) -> LabelSet {
    match grouping {
        Grouping::None => labels.drop_names(&[]),
        Grouping::By(keep) => labels.restrict_to(keep),
        Grouping::Without(drop) => labels.drop_names(drop),
    }
}

fn aggregate(
    op: AggOp,
    grouping: &Grouping,
    k: Option<usize>,
    vec: Vec<(LabelSet, f64)>,
) -> Result<Vec<(LabelSet, f64)>, EvalError> {
    // topk/bottomk keep original labels and simply filter.
    if matches!(op, AggOp::Topk | AggOp::Bottomk) {
        let k = k.ok_or_else(|| EvalError("topk/bottomk need k".into()))?;
        let mut v = vec;
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if op == AggOp::Bottomk {
            v.reverse();
        }
        v.truncate(k);
        return Ok(v);
    }

    // Grouping collapses to one entry when Grouping::None: signature is the
    // full label set minus __name__ — not what we want. sum(expr) with no
    // grouping collapses everything.
    let mut groups: HashMap<LabelSet, Vec<f64>> = HashMap::new();
    let mut order = Vec::new();
    for (labels, v) in vec {
        let key = match grouping {
            Grouping::None => LabelSet::empty(),
            _ => signature(&labels, grouping),
        };
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(v);
    }
    Ok(order
        .into_iter()
        .map(|key| {
            let vals = groups.remove(&key).unwrap();
            let out = match op {
                AggOp::Sum => vals.iter().sum(),
                AggOp::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                AggOp::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                AggOp::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                AggOp::Count => vals.len() as f64,
                AggOp::Stddev | AggOp::Stdvar => {
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                        / vals.len() as f64;
                    if op == AggOp::Stdvar { var } else { var.sqrt() }
                }
                AggOp::Topk | AggOp::Bottomk => unreachable!(),
            };
            (key, out)
        })
        .collect())
}

fn eval_binary(
    op: BinOp,
    l: Value,
    r: Value,
    matching: &Grouping,
) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Scalar(a), Value::Scalar(b)) => Ok(Value::Scalar(op.apply(a, b))),
        (Value::Vector(v), Value::Scalar(s)) => Ok(Value::Vector(
            v.into_iter()
                .map(|(l, x)| (l.without(METRIC_NAME_LABEL), op.apply(x, s)))
                .collect(),
        )),
        (Value::Scalar(s), Value::Vector(v)) => Ok(Value::Vector(
            v.into_iter()
                .map(|(l, x)| (l.without(METRIC_NAME_LABEL), op.apply(s, x)))
                .collect(),
        )),
        (Value::Vector(lv), Value::Vector(rv)) => {
            // Vector matching: the right side must be unique per signature;
            // the left side may be many-to-one (Prometheus would demand an
            // explicit `group_left`; this engine grants it implicitly and
            // keeps the LEFT labels on the output, which is what the Eq. (1)
            // rules need to retain `uuid` when dividing by node-level
            // series).
            let mut rmap: HashMap<LabelSet, f64> = HashMap::new();
            for (labels, v) in &rv {
                let sig = signature(labels, matching);
                if rmap.insert(sig, *v).is_some() {
                    return Err(EvalError(
                        "right operand has duplicate series per matching signature; \
                         narrow it with on(...)/ignoring(...) or aggregate first"
                            .into(),
                    ));
                }
            }
            let mut out = Vec::new();
            for (labels, lval) in lv {
                let sig = signature(&labels, matching);
                if let Some(&rval) = rmap.get(&sig) {
                    out.push((labels.without(METRIC_NAME_LABEL), op.apply(lval, rval)));
                }
            }
            Ok(Value::Vector(out))
        }
        _ => Err(EvalError(
            "binary operators are not defined on range vectors".into(),
        )),
    }
}

/// Comparison with Prometheus semantics: filtering by default (surviving
/// elements keep their labels — including `__name__` — and values), 0/1
/// per element with the `bool` modifier. Vector-vector comparison matches
/// on the full label signature like unmodified arithmetic matching.
fn eval_compare(op: CmpOp, bool_mode: bool, l: Value, r: Value) -> Result<Value, EvalError> {
    let as_bool = |keep: bool| if keep { 1.0 } else { 0.0 };
    match (l, r) {
        (Value::Scalar(a), Value::Scalar(b)) => {
            if !bool_mode {
                return Err(EvalError(
                    "comparison between two scalars needs the bool modifier".into(),
                ));
            }
            Ok(Value::Scalar(as_bool(op.apply(a, b))))
        }
        (Value::Vector(v), Value::Scalar(s)) => Ok(Value::Vector(
            v.into_iter()
                .filter_map(|(labels, x)| {
                    let keep = op.apply(x, s);
                    if bool_mode {
                        Some((labels.without(METRIC_NAME_LABEL), as_bool(keep)))
                    } else if keep {
                        Some((labels, x))
                    } else {
                        None
                    }
                })
                .collect(),
        )),
        (Value::Scalar(s), Value::Vector(v)) => Ok(Value::Vector(
            v.into_iter()
                .filter_map(|(labels, x)| {
                    let keep = op.apply(s, x);
                    if bool_mode {
                        Some((labels.without(METRIC_NAME_LABEL), as_bool(keep)))
                    } else if keep {
                        Some((labels, x))
                    } else {
                        None
                    }
                })
                .collect(),
        )),
        (Value::Vector(lv), Value::Vector(rv)) => {
            let mut rmap: HashMap<LabelSet, f64> = HashMap::new();
            for (labels, v) in &rv {
                let sig = signature(labels, &Grouping::None);
                if rmap.insert(sig, *v).is_some() {
                    return Err(EvalError(
                        "right operand has duplicate series per matching signature; \
                         aggregate it first"
                            .into(),
                    ));
                }
            }
            let mut out = Vec::new();
            for (labels, lval) in lv {
                let sig = signature(&labels, &Grouping::None);
                let Some(&rval) = rmap.get(&sig) else { continue };
                let keep = op.apply(lval, rval);
                if bool_mode {
                    out.push((labels.without(METRIC_NAME_LABEL), as_bool(keep)));
                } else if keep {
                    out.push((labels, lval));
                }
            }
            Ok(Value::Vector(out))
        }
        _ => Err(EvalError(
            "comparisons are not defined on range vectors".into(),
        )),
    }
}

/// Counter-reset-adjusted increase over a window of samples.
///
/// Returns `(increase, span_seconds)` or `None` with fewer than 2 samples.
fn counter_increase(samples: &[Sample]) -> Option<(f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let mut corrections = 0.0;
    let mut prev = samples[0].v;
    for s in &samples[1..] {
        if s.v < prev {
            corrections += prev; // counter reset (e.g. RAPL wraparound)
        }
        prev = s.v;
    }
    let increase = samples.last().unwrap().v + corrections - samples[0].v;
    let span_s = (samples.last().unwrap().t_ms - samples[0].t_ms) as f64 / 1000.0;
    Some((increase, span_s))
}

fn eval_func(
    ctx: &EvalCtx<'_>,
    name: &str,
    args: &[Expr],
    t_ms: i64,
) -> Result<Value, EvalError> {
    let matrix_arg = |i: usize| -> Result<Vec<SeriesData>, EvalError> {
        match eval(ctx, args.get(i).ok_or_else(|| arity(name))?, t_ms)? {
            Value::Matrix(m) => Ok(m),
            _ => Err(EvalError(format!("{name} expects a range vector"))),
        }
    };
    let vector_arg = |i: usize| -> Result<Vec<(LabelSet, f64)>, EvalError> {
        match eval(ctx, args.get(i).ok_or_else(|| arity(name))?, t_ms)? {
            Value::Vector(v) => Ok(v),
            Value::Scalar(s) => Ok(vec![(LabelSet::empty(), s)]),
            _ => Err(EvalError(format!("{name} expects an instant vector"))),
        }
    };
    let scalar_arg = |i: usize| -> Result<f64, EvalError> {
        match eval(ctx, args.get(i).ok_or_else(|| arity(name))?, t_ms)? {
            Value::Scalar(s) => Ok(s),
            _ => Err(EvalError(format!("{name} expects a scalar argument"))),
        }
    };

    // Range-vector functions: map each series to one point, dropping name.
    let over_time = |m: Vec<SeriesData>, f: &dyn Fn(&[Sample]) -> Option<f64>| -> Value {
        Value::Vector(
            m.into_iter()
                .filter_map(|s| {
                    f(&s.samples).map(|v| (s.labels.without(METRIC_NAME_LABEL), v))
                })
                .collect(),
        )
    };

    match name {
        "rate" => Ok(over_time(matrix_arg(0)?, &|s| {
            counter_increase(s).and_then(|(inc, span)| (span > 0.0).then(|| inc / span))
        })),
        "increase" => Ok(over_time(matrix_arg(0)?, &|s| {
            counter_increase(s).map(|(inc, _)| inc)
        })),
        "irate" => Ok(over_time(matrix_arg(0)?, &|s| {
            if s.len() < 2 {
                return None;
            }
            let a = s[s.len() - 2];
            let b = s[s.len() - 1];
            let dv = if b.v >= a.v { b.v - a.v } else { b.v };
            let dt = (b.t_ms - a.t_ms) as f64 / 1000.0;
            (dt > 0.0).then(|| dv / dt)
        })),
        "delta" => Ok(over_time(matrix_arg(0)?, &|s| {
            (s.len() >= 2).then(|| s.last().unwrap().v - s[0].v)
        })),
        "avg_over_time" => Ok(over_time(matrix_arg(0)?, &|s| {
            (!s.is_empty()).then(|| s.iter().map(|x| x.v).sum::<f64>() / s.len() as f64)
        })),
        "sum_over_time" => Ok(over_time(matrix_arg(0)?, &|s| {
            (!s.is_empty()).then(|| s.iter().map(|x| x.v).sum())
        })),
        "min_over_time" => Ok(over_time(matrix_arg(0)?, &|s| {
            s.iter().map(|x| x.v).min_by(|a, b| a.total_cmp(b))
        })),
        "max_over_time" => Ok(over_time(matrix_arg(0)?, &|s| {
            s.iter().map(|x| x.v).max_by(|a, b| a.total_cmp(b))
        })),
        "count_over_time" => Ok(over_time(matrix_arg(0)?, &|s| {
            (!s.is_empty()).then_some(s.len() as f64)
        })),
        "last_over_time" => Ok(over_time(matrix_arg(0)?, &|s| s.last().map(|x| x.v))),
        "abs" | "ceil" | "floor" => {
            let f = match name {
                "abs" => f64::abs,
                "ceil" => f64::ceil,
                _ => f64::floor,
            };
            Ok(Value::Vector(
                vector_arg(0)?
                    .into_iter()
                    .map(|(l, v)| (l.without(METRIC_NAME_LABEL), f(v)))
                    .collect(),
            ))
        }
        "clamp_min" | "clamp_max" => {
            let bound = scalar_arg(1)?;
            let is_min = name == "clamp_min";
            Ok(Value::Vector(
                vector_arg(0)?
                    .into_iter()
                    .map(|(l, v)| {
                        let v = if is_min { v.max(bound) } else { v.min(bound) };
                        (l.without(METRIC_NAME_LABEL), v)
                    })
                    .collect(),
            ))
        }
        "scalar" => {
            let v = vector_arg(0)?;
            Ok(Value::Scalar(if v.len() == 1 { v[0].1 } else { f64::NAN }))
        }
        "quantile_over_time" => {
            let q = scalar_arg(0)?;
            match eval(ctx, args.get(1).ok_or_else(|| arity(name))?, t_ms)? {
                Value::Matrix(m) => Ok(over_time(m, &|s| {
                    if s.is_empty() {
                        return None;
                    }
                    let mut vals: Vec<f64> = s.iter().map(|x| x.v).collect();
                    vals.sort_by(|a, b| a.total_cmp(b));
                    Some(quantile_sorted(&vals, q))
                })),
                _ => Err(EvalError(
                    "quantile_over_time expects a range vector".into(),
                )),
            }
        }
        "histogram_quantile" => {
            let q = scalar_arg(0)?;
            let buckets = vector_arg(1)?;
            Ok(Value::Vector(histogram_quantile(q, buckets)))
        }
        other => Err(EvalError(format!("unknown function {other:?}"))),
    }
}

/// Linear-interpolated quantile of pre-sorted values.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Prometheus `histogram_quantile`: group `_bucket` samples by their
/// non-`le` labels and interpolate within the bucket holding the quantile.
fn histogram_quantile(q: f64, buckets: Vec<(LabelSet, f64)>) -> Vec<(LabelSet, f64)> {
    let mut groups: HashMap<LabelSet, Vec<(f64, f64)>> = HashMap::new();
    let mut order = Vec::new();
    for (labels, count) in buckets {
        let le = match labels.get("le") {
            Some("+Inf") => f64::INFINITY,
            Some(v) => match v.parse::<f64>() {
                Ok(b) => b,
                Err(_) => continue,
            },
            None => continue,
        };
        let key = labels.drop_names(&["le".to_string()]);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push((le, count));
    }
    order
        .into_iter()
        .filter_map(|key| {
            let mut bs = groups.remove(&key)?;
            bs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let total = bs.last()?.1;
            if total <= 0.0 || !bs.last()?.0.is_infinite() {
                return Some((key, f64::NAN));
            }
            let rank = q.clamp(0.0, 1.0) * total;
            let mut prev_bound = 0.0;
            let mut prev_count = 0.0;
            for &(bound, count) in &bs {
                if count >= rank {
                    if bound.is_infinite() {
                        return Some((key, prev_bound));
                    }
                    let width = bound - prev_bound;
                    let in_bucket = count - prev_count;
                    let frac = if in_bucket > 0.0 {
                        (rank - prev_count) / in_bucket
                    } else {
                        0.0
                    };
                    return Some((key, prev_bound + width * frac));
                }
                prev_bound = bound;
                prev_count = count;
            }
            Some((key, prev_bound))
        })
        .collect()
}

fn arity(name: &str) -> EvalError {
    EvalError(format!("wrong number of arguments for {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promql::parse_expr;
    use crate::storage::Tsdb;
    use ceems_metrics::labels;

    fn db() -> Tsdb {
        let db = Tsdb::default();
        // Counter: 10 J/s on n1, 20 J/s on n2, sampled every 15 s for 10 min.
        for i in 0..41i64 {
            let t = i * 15_000;
            db.append(
                &labels! {"__name__" => "energy_joules_total", "instance" => "n1"},
                t,
                (i * 150) as f64,
            );
            db.append(
                &labels! {"__name__" => "energy_joules_total", "instance" => "n2"},
                t,
                (i * 300) as f64,
            );
            db.append(
                &labels! {"__name__" => "mem_bytes", "instance" => "n1"},
                t,
                1000.0,
            );
            db.append(
                &labels! {"__name__" => "mem_bytes", "instance" => "n2"},
                t,
                3000.0,
            );
        }
        db
    }

    fn instant(db: &Tsdb, q: &str, t: i64) -> Value {
        instant_query(db, &parse_expr(q).unwrap(), t).unwrap()
    }

    fn vector_of(v: Value) -> Vec<(LabelSet, f64)> {
        match v {
            Value::Vector(v) => v,
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn instant_selector_takes_latest_in_lookback() {
        let db = db();
        let v = vector_of(instant(&db, "mem_bytes{instance=\"n1\"}", 600_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1000.0);
        // Past the lookback window the series disappears.
        let v = vector_of(instant(&db, "mem_bytes", 600_000 + DEFAULT_LOOKBACK_MS + 1));
        assert!(v.is_empty());
    }

    #[test]
    fn rate_recovers_watts() {
        let db = db();
        let v = vector_of(instant(&db, "rate(energy_joules_total[2m])", 600_000));
        assert_eq!(v.len(), 2);
        for (labels, rate) in v {
            let expect = if labels.get("instance") == Some("n1") { 10.0 } else { 20.0 };
            assert!((rate - expect).abs() < 1e-9, "rate={rate}");
            assert_eq!(labels.get(METRIC_NAME_LABEL), None);
        }
    }

    #[test]
    fn rate_handles_counter_reset() {
        let db = Tsdb::default();
        let ls = labels! {"__name__" => "wrap_total"};
        // 100/s counter that wraps at t=45s back to a small value.
        let vals = [0.0, 1500.0, 3000.0, 200.0, 1700.0];
        for (i, v) in vals.iter().enumerate() {
            db.append(&ls, i as i64 * 15_000, *v);
        }
        let v = vector_of(instant(&db, "rate(wrap_total[2m])", 60_000));
        // increase = 1700 + 3000 - 0 = 4700 over 60 s.
        assert!((v[0].1 - 4700.0 / 60.0).abs() < 1e-9, "got {}", v[0].1);
    }

    #[test]
    fn comparison_filters_and_keeps_labels() {
        let db = db();
        // Only n2 (3000 bytes) exceeds 2000; filter keeps labels and value,
        // including the metric name, like Prometheus.
        let v = vector_of(instant(&db, "mem_bytes > 2000", 600_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("instance"), Some("n2"));
        assert_eq!(v[0].0.get(METRIC_NAME_LABEL), Some("mem_bytes"));
        assert_eq!(v[0].1, 3000.0);

        // Nothing violates an impossible threshold: empty vector, no error.
        let v = vector_of(instant(&db, "mem_bytes > 1e9", 600_000));
        assert!(v.is_empty());

        // bool mode maps every element to 0/1 and drops the name.
        let v = vector_of(instant(&db, "mem_bytes > bool 2000", 600_000));
        assert_eq!(v.len(), 2);
        for (labels, x) in v {
            let expect = if labels.get("instance") == Some("n2") { 1.0 } else { 0.0 };
            assert_eq!(x, expect);
            assert_eq!(labels.get(METRIC_NAME_LABEL), None);
        }

        // Comparison binds looser than arithmetic.
        let v = vector_of(instant(&db, "mem_bytes / 1000 >= 3", 600_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 3.0);

        // Vector-vector: mem_bytes != mem_bytes is empty.
        let v = vector_of(instant(&db, "mem_bytes != mem_bytes", 600_000));
        assert!(v.is_empty());

        // Scalar-scalar without bool is an error.
        assert!(instant_query(&db, &parse_expr("1 > 2").unwrap(), 0).is_err());
        assert_eq!(instant(&db, "1 > bool 2", 0), Value::Scalar(0.0));
    }

    #[test]
    fn binary_vector_vector_matches_on_labels() {
        let db = db();
        let v = vector_of(instant(
            &db,
            "rate(energy_joules_total[2m]) * mem_bytes",
            600_000,
        ));
        assert_eq!(v.len(), 2);
        for (labels, x) in v {
            let expect = if labels.get("instance") == Some("n1") {
                10.0 * 1000.0
            } else {
                20.0 * 3000.0
            };
            assert!((x - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn binary_scalar_forms() {
        let db = db();
        assert_eq!(instant(&db, "1 + 2 * 3", 0), Value::Scalar(7.0));
        let v = vector_of(instant(&db, "mem_bytes / 1000", 600_000));
        assert_eq!(v.len(), 2);
        let v = vector_of(instant(&db, "0.9 * mem_bytes", 600_000));
        assert!(v.iter().any(|(_, x)| *x == 900.0));
        assert!(v.iter().any(|(_, x)| *x == 2700.0));
    }

    #[test]
    fn aggregations() {
        let db = db();
        let v = vector_of(instant(&db, "sum(mem_bytes)", 600_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 4000.0);
        assert!(v[0].0.is_empty());

        let v = vector_of(instant(&db, "avg(mem_bytes)", 600_000));
        assert_eq!(v[0].1, 2000.0);

        let v = vector_of(instant(&db, "sum by (instance) (mem_bytes)", 600_000));
        assert_eq!(v.len(), 2);

        let v = vector_of(instant(&db, "count(mem_bytes)", 600_000));
        assert_eq!(v[0].1, 2.0);

        let v = vector_of(instant(&db, "topk(1, mem_bytes)", 600_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 3000.0);

        let v = vector_of(instant(&db, "bottomk(1, mem_bytes)", 600_000));
        assert_eq!(v[0].1, 1000.0);

        let v = vector_of(instant(&db, "max(mem_bytes)", 600_000));
        assert_eq!(v[0].1, 3000.0);
        let v = vector_of(instant(&db, "min(mem_bytes)", 600_000));
        assert_eq!(v[0].1, 1000.0);
    }

    #[test]
    fn over_time_functions() {
        let db = db();
        let v = vector_of(instant(
            &db,
            "avg_over_time(mem_bytes{instance=\"n1\"}[2m])",
            600_000,
        ));
        assert_eq!(v[0].1, 1000.0);
        let v = vector_of(instant(
            &db,
            "count_over_time(mem_bytes{instance=\"n1\"}[1m])",
            600_000,
        ));
        assert_eq!(v[0].1, 5.0); // 60s window at 15s cadence: t=540..600
        let v = vector_of(instant(
            &db,
            "max_over_time(energy_joules_total{instance=\"n2\"}[2m])",
            600_000,
        ));
        assert_eq!(v[0].1, 12_000.0);
    }

    #[test]
    fn clamp_abs_scalar() {
        let db = db();
        let v = vector_of(instant(&db, "clamp_max(mem_bytes, 1500)", 600_000));
        assert!(v.iter().all(|(_, x)| *x <= 1500.0));
        let v = vector_of(instant(&db, "clamp_min(mem_bytes, 1500)", 600_000));
        assert!(v.iter().all(|(_, x)| *x >= 1500.0));
        assert_eq!(
            instant(&db, "scalar(sum(mem_bytes))", 600_000),
            Value::Scalar(4000.0)
        );
        let v = vector_of(instant(&db, "abs(0 - mem_bytes)", 600_000));
        assert!(v.iter().all(|(_, x)| *x > 0.0));
    }

    #[test]
    fn offset_shifts_evaluation() {
        let db = db();
        let v = vector_of(instant(
            &db,
            "energy_joules_total{instance=\"n1\"} offset 5m",
            600_000,
        ));
        // At t=300s the counter was 20*150=3000.
        assert_eq!(v[0].1, 3000.0);
    }

    #[test]
    fn range_query_produces_series() {
        let db = db();
        let expr = parse_expr("rate(energy_joules_total[2m])").unwrap();
        let series = range_query(&db, &expr, 200_000, 600_000, 100_000).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.samples.len(), 5);
            assert!(s.samples.windows(2).all(|w| w[0].t_ms < w[1].t_ms));
        }
        // Scalar expression over a range.
        let series = range_query(&db, &parse_expr("42").unwrap(), 0, 30_000, 10_000).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].samples.len(), 4);
        assert!(range_query(&db, &parse_expr("1").unwrap(), 0, 10, 0).is_err());
    }

    #[test]
    fn eq1_conservation_shape() {
        // A miniature Eq. (1): two jobs on a node split 0.9*P_ipmi by CPU
        // time share; per-job powers must sum to 0.9*P_ipmi.
        let db = Tsdb::default();
        for i in 0..41i64 {
            let t = i * 15_000;
            db.append(&labels! {"__name__" => "ipmi_watts", "instance" => "n1"}, t, 500.0);
            // job A: 3 cores busy; job B: 1 core busy; node total 4.
            db.append(
                &labels! {"__name__" => "job_cpu_seconds_total", "uuid" => "a", "instance" => "n1"},
                t,
                (i * 45) as f64,
            );
            db.append(
                &labels! {"__name__" => "job_cpu_seconds_total", "uuid" => "b", "instance" => "n1"},
                t,
                (i * 15) as f64,
            );
            db.append(
                &labels! {"__name__" => "node_cpu_seconds_total", "instance" => "n1"},
                t,
                (i * 60) as f64,
            );
        }
        let q = "0.9 * scalar(ipmi_watts) * rate(job_cpu_seconds_total[2m]) / scalar(rate(node_cpu_seconds_total[2m]))";
        let v = vector_of(instant(&db, q, 600_000));
        assert_eq!(v.len(), 2);
        let total: f64 = v.iter().map(|(_, x)| x).sum();
        assert!((total - 450.0).abs() < 1e-6, "total={total}");
        let a = v.iter().find(|(l, _)| l.get("uuid") == Some("a")).unwrap().1;
        assert!((a - 337.5).abs() < 1e-6);
    }

    #[test]
    fn error_cases() {
        let db = db();
        let e = instant_query(&db, &parse_expr("rate(mem_bytes)").unwrap(), 0);
        assert!(e.is_err()); // rate needs a range vector
        let e = instant_query(&db, &parse_expr("mem_bytes + mem_bytes[5m]").unwrap(), 0);
        assert!(e.is_err());
        let e = instant_query(&db, &parse_expr("sum(mem_bytes[5m])").unwrap(), 0);
        assert!(e.is_err());
    }

    #[test]
    fn on_ignoring_cross_metric_matching() {
        let db = Tsdb::default();
        db.append(&labels! {"__name__" => "a", "instance" => "n1", "mode" => "x"}, 0, 10.0);
        db.append(&labels! {"__name__" => "b", "instance" => "n1"}, 0, 5.0);
        // Without a modifier, signatures differ (mode label) → empty result.
        let v = vector_of(instant(&db, "a / b", 1000));
        assert!(v.is_empty());
        // on(instance) matches them.
        let v = vector_of(instant(&db, "a / on (instance) b", 1000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 2.0);
        // ignoring(mode) does too.
        let v = vector_of(instant(&db, "a / ignoring (mode) b", 1000));
        assert_eq!(v.len(), 1);
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;
    use ceems_metrics::labels;

    #[test]
    fn quantile_sorted_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert_eq!(quantile_sorted(&v, 0.5), 2.5);
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert_eq!(quantile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn histogram_quantile_end_to_end() {
        let db = crate::storage::Tsdb::default();
        // A request-latency histogram: buckets 0.1/0.5/1.0/+Inf with
        // cumulative counts 50/90/99/100.
        for (le, c) in [("0.1", 50.0), ("0.5", 90.0), ("1.0", 99.0), ("+Inf", 100.0)] {
            db.append(
                &labels! {"__name__" => "lat_bucket", "le" => le, "instance" => "n1"},
                1000,
                c,
            );
        }
        let expr = crate::promql::parse_expr("histogram_quantile(0.5, lat_bucket)").unwrap();
        let Value::Vector(v) = instant_query(&db, &expr, 2000).unwrap() else {
            panic!()
        };
        assert_eq!(v.len(), 1);
        // Median is inside the first bucket: 50/50 of the way to 0.1.
        assert!((v[0].1 - 0.1).abs() < 1e-9, "p50={}", v[0].1);

        let expr = crate::promql::parse_expr("histogram_quantile(0.95, lat_bucket)").unwrap();
        let Value::Vector(v) = instant_query(&db, &expr, 2000).unwrap() else {
            panic!()
        };
        // 95th: rank 95 lands in (0.5, 1.0] bucket: 0.5 + (95-90)/9 * 0.5.
        assert!((v[0].1 - (0.5 + 5.0 / 9.0 * 0.5)).abs() < 1e-9, "p95={}", v[0].1);

        // le label is consumed; instance remains.
        assert_eq!(v[0].0.get("le"), None);
        assert_eq!(v[0].0.get("instance"), Some("n1"));
    }

    #[test]
    fn quantile_over_time_on_series() {
        let db = crate::storage::Tsdb::default();
        let ls = labels! {"__name__" => "g"};
        for (i, v) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            db.append(&ls, i as i64 * 15_000, *v);
        }
        let expr = crate::promql::parse_expr("quantile_over_time(0.5, g[2m])").unwrap();
        let Value::Vector(v) = instant_query(&db, &expr, 60_000).unwrap() else {
            panic!()
        };
        assert_eq!(v[0].1, 3.0);
    }

    #[test]
    fn stddev_and_stdvar() {
        let db = crate::storage::Tsdb::default();
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            db.append(
                &labels! {"__name__" => "s", "i" => &format!("{i}")},
                1000,
                *v,
            );
        }
        let expr = crate::promql::parse_expr("stddev(s)").unwrap();
        let Value::Vector(v) = instant_query(&db, &expr, 2000).unwrap() else {
            panic!()
        };
        assert!((v[0].1 - 2.0).abs() < 1e-9); // classic example: σ = 2
        let expr = crate::promql::parse_expr("stdvar(s)").unwrap();
        let Value::Vector(v) = instant_query(&db, &expr, 2000).unwrap() else {
            panic!()
        };
        assert!((v[0].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_degenerate_inputs() {
        // Missing +Inf bucket → NaN; zero total → NaN.
        let out = histogram_quantile(
            0.9,
            vec![(labels! {"le" => "1.0"}, 5.0)],
        );
        assert!(out[0].1.is_nan());
        let out = histogram_quantile(
            0.9,
            vec![(labels! {"le" => "+Inf"}, 0.0)],
        );
        assert!(out[0].1.is_nan());
        // Non-numeric le skipped entirely.
        let out = histogram_quantile(0.9, vec![(labels! {"le" => "bogus"}, 5.0)]);
        assert!(out.is_empty());
        // No le label at all.
        let out = histogram_quantile(0.9, vec![(labels! {"x" => "1"}, 5.0)]);
        assert!(out.is_empty());
    }

    /// Parallel step evaluation must be bit-for-bit identical to the serial
    /// walk: same step order, same series ordering (first-seen), same float
    /// results, same error behaviour.
    #[test]
    fn parallel_range_query_matches_serial_exactly() {
        use crate::storage::{Tsdb, TsdbConfig};

        let fill = |db: &Tsdb| {
            for i in 0..80i64 {
                let t = i * 15_000;
                for n in 0..7 {
                    db.append(
                        &labels! {"__name__" => "energy_joules_total", "instance" => format!("n{n}")},
                        t,
                        (i * (100 + n)) as f64,
                    );
                }
                db.append(&labels! {"__name__" => "mem_bytes", "instance" => "n1"}, t, 0.1 * i as f64);
            }
            // A series that appears only late in the range: step results
            // differ in series membership, exercising the merge ordering.
            for i in 50..80i64 {
                db.append(&labels! {"__name__" => "mem_bytes", "instance" => "late"}, i * 15_000, 7.0);
            }
        };
        let serial = Tsdb::new(TsdbConfig {
            query_threads: 1,
            ..TsdbConfig::default()
        });
        let parallel = Tsdb::new(TsdbConfig {
            query_threads: 8,
            ..TsdbConfig::default()
        });
        fill(&serial);
        fill(&parallel);
        assert_eq!(serial.query_threads(), 1);
        assert_eq!(parallel.query_threads(), 8);

        for q in [
            "rate(energy_joules_total[2m])",
            "sum(rate(energy_joules_total[2m]))",
            "mem_bytes",
            "avg by (instance) (mem_bytes)",
            "sum(energy_joules_total) / sum(mem_bytes)",
            "42",
        ] {
            let expr = crate::promql::parse_expr(q).unwrap();
            // Cover the serial fallbacks too: few steps (< the parallel
            // threshold) and many steps (parallel on `parallel`).
            for (start, end, step) in [(0, 60_000, 15_000), (0, 1_200_000, 15_000)] {
                let a = range_query(&serial, &expr, start, end, step);
                let b = range_query(&parallel, &expr, start, end, step);
                // Bit-level float equality: NaN (e.g. 0/0 at the first
                // step) must match NaN, and nothing laxer than exact bits
                // counts as parity.
                match (&a, &b) {
                    (Ok(ma), Ok(mb)) => {
                        assert_eq!(ma.len(), mb.len(), "{q}: series count diverged");
                        for (sa, sb) in ma.iter().zip(mb) {
                            assert_eq!(sa.labels, sb.labels, "{q}: ordering diverged");
                            assert_eq!(sa.samples.len(), sb.samples.len());
                            for (pa, pb) in sa.samples.iter().zip(&sb.samples) {
                                assert_eq!(pa.t_ms, pb.t_ms);
                                assert_eq!(
                                    pa.v.to_bits(),
                                    pb.v.to_bits(),
                                    "{q} @ {}: float bits differ",
                                    pa.t_ms
                                );
                            }
                        }
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    _ => panic!("{q} over {start}..{end}/{step}: ok/err diverged"),
                }
            }
        }

        // Errors propagate identically.
        let bad = crate::promql::parse_expr("histogram_quantile(0.9, mem_bytes) + bogus{x=\"1\"}")
            .unwrap();
        assert_eq!(
            range_query(&serial, &bad, 0, 1_200_000, 15_000),
            range_query(&parallel, &bad, 0, 1_200_000, 15_000),
        );
    }
}
