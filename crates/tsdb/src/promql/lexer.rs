//! PromQL tokenizer.

/// A lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`rate`, `by`, metric names with `:`).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Quoted string (label value).
    Str(String),
    /// Duration literal, in milliseconds (`5m`, `1h30m` is not supported —
    /// single unit only, like `30s`, `5m`, `2h`, `7d`, `1w`, `1y`).
    Duration(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `=~`
    Re,
    /// `!~`
    Nre,
    /// `==`
    EqEq,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

/// Lexer error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Reason.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Converts a duration unit to milliseconds.
fn unit_ms(unit: &str) -> Option<i64> {
    Some(match unit {
        "ms" => 1,
        "s" => 1_000,
        "m" => 60_000,
        "h" => 3_600_000,
        "d" => 86_400_000,
        "w" => 7 * 86_400_000,
        "y" => 365 * 86_400_000,
        _ => return None,
    })
}

/// Tokenizes a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => match bytes.get(i + 1) {
                Some(b'~') => {
                    out.push(Token::Re);
                    i += 2;
                }
                Some(b'=') => {
                    out.push(Token::EqEq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Eq);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '!' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                Some(b'~') => {
                    out.push(Token::Nre);
                    i += 2;
                }
                _ => {
                    return Err(LexError {
                        at: i,
                        message: "dangling '!'".into(),
                    })
                }
            },
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    let Some(&b) = bytes.get(i) else {
                        return Err(LexError {
                            at: i,
                            message: "unterminated string".into(),
                        });
                    };
                    let ch = b as char;
                    if ch == quote {
                        i += 1;
                        break;
                    }
                    if ch == '\\' {
                        i += 1;
                        match bytes.get(i).map(|&b| b as char) {
                            Some('n') => s.push('\n'),
                            Some('\\') => s.push('\\'),
                            Some(q) if q == quote => s.push(q),
                            Some(other) => {
                                s.push('\\');
                                s.push(other);
                            }
                            None => {
                                return Err(LexError {
                                    at: i,
                                    message: "dangling escape".into(),
                                })
                            }
                        }
                        i += 1;
                    } else {
                        // Consume a full UTF-8 character.
                        let rest = &input[i..];
                        let ch = rest.chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || (bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e'))
                {
                    i += 1;
                }
                let num_str = &input[start..i];
                // Duration? A unit suffix follows the digits.
                let unit_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                if i > unit_start {
                    let unit = &input[unit_start..i];
                    let scale = unit_ms(unit).ok_or_else(|| LexError {
                        at: unit_start,
                        message: format!("unknown duration unit {unit:?}"),
                    })?;
                    let qty: f64 = num_str.parse().map_err(|_| LexError {
                        at: start,
                        message: format!("bad number {num_str:?}"),
                    })?;
                    out.push(Token::Duration((qty * scale as f64) as i64));
                } else {
                    let v: f64 = num_str.parse().map_err(|_| LexError {
                        at: start,
                        message: format!("bad number {num_str:?}"),
                    })?;
                    out.push(Token::Number(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == ':' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_selector() {
        let toks = lex("rate(node_cpu_seconds_total{mode!=\"idle\"}[5m])").unwrap();
        assert_eq!(toks[0], Token::Ident("rate".into()));
        assert_eq!(toks[1], Token::LParen);
        assert_eq!(toks[2], Token::Ident("node_cpu_seconds_total".into()));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Str("idle".into())));
        assert!(toks.contains(&Token::Duration(300_000)));
    }

    #[test]
    fn durations() {
        assert_eq!(lex("[30s]").unwrap()[1], Token::Duration(30_000));
        assert_eq!(lex("[2h]").unwrap()[1], Token::Duration(7_200_000));
        assert_eq!(lex("[7d]").unwrap()[1], Token::Duration(604_800_000));
        assert_eq!(lex("[1y]").unwrap()[1], Token::Duration(31_536_000_000));
        assert_eq!(lex("[1.5m]").unwrap()[1], Token::Duration(90_000));
        assert!(lex("[5x]").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("0.9").unwrap()[0], Token::Number(0.9));
        assert_eq!(lex("1e3").unwrap()[0], Token::Number(1000.0));
        assert_eq!(lex("2.5e-2").unwrap()[0], Token::Number(0.025));
    }

    #[test]
    fn recording_rule_names_with_colons() {
        let toks = lex("job:power_watts:rate5m").unwrap();
        assert_eq!(toks, vec![Token::Ident("job:power_watts:rate5m".into())]);
    }

    #[test]
    fn operators_and_regex_matchers() {
        let toks = lex("a =~ \"x|y\" !~ 'z'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Re,
                Token::Str("x|y".into()),
                Token::Nre,
                Token::Str("z".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a > 1 >= 2 < 3 <= 4 == 5 != 6").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Gt,
                Token::Number(1.0),
                Token::Ge,
                Token::Number(2.0),
                Token::Lt,
                Token::Number(3.0),
                Token::Le,
                Token::Number(4.0),
                Token::EqEq,
                Token::Number(5.0),
                Token::Ne,
                Token::Number(6.0),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a\"b\nc""#).unwrap();
        assert_eq!(toks[0], Token::Str("a\"b\nc".into()));
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn bad_chars_error_with_offset() {
        let e = lex("up @ 5").unwrap_err();
        assert_eq!(e.at, 3);
        assert!(lex("a ! b").is_err());
    }
}
