//! PromQL-subset query engine.
//!
//! Implements the slice of PromQL that CEEMS actually uses for its
//! dashboards and recording rules (the Eq. (1) rules in §III are plain
//! arithmetic over `rate()`s and instant vectors):
//!
//! * instant and range vector selectors with label matchers and `offset`
//! * `rate`, `irate`, `increase`, `delta`, `*_over_time`
//! * `abs`, `ceil`, `floor`, `clamp_min`, `clamp_max`, `scalar`
//! * binary arithmetic (`+ - * /`) with one-to-one label matching and
//!   `on(...)`/`ignoring(...)` modifiers
//! * aggregations `sum/avg/min/max/count/topk/bottomk` with
//!   `by(...)`/`without(...)`
//!
//! Deviation from Prometheus, documented for honesty: `rate`/`increase` do
//! not extrapolate to the window boundaries; they divide the
//! counter-reset-adjusted delta by the observed span. For the steady scrape
//! intervals of this system the difference is a constant factor ≤
//! `interval/range`.

pub mod analyze;
pub mod eval;
pub mod lexer;
pub mod parser;

use ceems_metrics::matcher::LabelMatcher;

pub use analyze::{max_selector_lookback_ms, normalize, split_safety, SplitSafety};
pub use eval::{instant_query, instant_query_with_lookback, range_query, EvalError, Queryable, Value};
pub use parser::parse_expr;

/// Binary arithmetic operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Applies the operator.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

/// Comparison operator (`> < >= <= == !=`), used by alert-rule expressions
/// to turn a signal into a set of violating series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Aggregation operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// `sum`
    Sum,
    /// `avg`
    Avg,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `count`
    Count,
    /// `topk(k, ...)`
    Topk,
    /// `bottomk(k, ...)`
    Bottomk,
    /// `stddev` (population standard deviation)
    Stddev,
    /// `stdvar` (population variance)
    Stdvar,
}

/// Aggregation / vector-matching label grouping.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Grouping {
    /// Collapse everything.
    #[default]
    None,
    /// Keep only these labels.
    By(Vec<String>),
    /// Drop these labels (and `__name__`).
    Without(Vec<String>),
}

/// A vector (or range-vector) selector.
#[derive(Clone, Debug)]
pub struct VectorSelector {
    /// Label matchers, including the `__name__` matcher when a metric name
    /// was written.
    pub matchers: Vec<LabelMatcher>,
    /// `[5m]` range in ms, when this is a range selector.
    pub range_ms: Option<i64>,
    /// `offset 1h` in ms.
    pub offset_ms: i64,
}

/// Parsed expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Literal scalar.
    Number(f64),
    /// Instant/range vector selector.
    Selector(VectorSelector),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// `on(...)`/`ignoring(...)` vector-matching modifier.
        matching: Grouping,
    },
    /// Aggregation.
    Agg {
        /// Operator.
        op: AggOp,
        /// `by`/`without` grouping.
        grouping: Grouping,
        /// `k` parameter for topk/bottomk.
        param: Option<Box<Expr>>,
        /// Aggregated expression.
        expr: Box<Expr>,
    },
    /// Function call.
    Func {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Comparison. Prometheus filter semantics by default: the result
    /// keeps the left-hand elements (labels and values untouched) for
    /// which the comparison holds — which is exactly the "violating
    /// series" set an alert rule needs. With the `bool` modifier the
    /// result maps every element to 0/1 instead of filtering.
    Compare {
        /// Operator.
        op: CmpOp,
        /// `bool` modifier: return 0/1 instead of filtering.
        bool_mode: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}
