//! Recursive-descent / Pratt parser for the PromQL subset.

use ceems_metrics::labels::METRIC_NAME_LABEL;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};

use super::lexer::{lex, LexError, Token};
use super::{AggOp, BinOp, CmpOp, Expr, Grouping, VectorSelector};

/// Parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "promql parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError(e.to_string())
    }
}

/// Parses a query string into an expression.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_binary(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError(format!(
            "trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn agg_op(name: &str) -> Option<AggOp> {
    Some(match name {
        "sum" => AggOp::Sum,
        "avg" => AggOp::Avg,
        "min" => AggOp::Min,
        "max" => AggOp::Max,
        "count" => AggOp::Count,
        "stddev" => AggOp::Stddev,
        "stdvar" => AggOp::Stdvar,
        "topk" => AggOp::Topk,
        "bottomk" => AggOp::Bottomk,
        _ => return None,
    })
}

const FUNCTIONS: &[&str] = &[
    "rate",
    "irate",
    "increase",
    "delta",
    "avg_over_time",
    "sum_over_time",
    "min_over_time",
    "max_over_time",
    "count_over_time",
    "last_over_time",
    "abs",
    "ceil",
    "floor",
    "clamp_min",
    "clamp_max",
    "scalar",
    "histogram_quantile",
    "quantile_over_time",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if &got == t => Ok(()),
            got => Err(ParseError(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        // Comparisons bind loosest (precedence 1), so `a + b > c * d`
        // parses as `(a + b) > (c * d)` like Prometheus.
        let mut lhs = self.parse_unary()?;
        loop {
            enum Op {
                Arith(BinOp),
                Cmp(CmpOp),
            }
            let (op, prec) = match self.peek() {
                Some(Token::Gt) => (Op::Cmp(CmpOp::Gt), 1),
                Some(Token::Ge) => (Op::Cmp(CmpOp::Ge), 1),
                Some(Token::Lt) => (Op::Cmp(CmpOp::Lt), 1),
                Some(Token::Le) => (Op::Cmp(CmpOp::Le), 1),
                Some(Token::EqEq) => (Op::Cmp(CmpOp::Eq), 1),
                Some(Token::Ne) => (Op::Cmp(CmpOp::Ne), 1),
                Some(Token::Plus) => (Op::Arith(BinOp::Add), 2),
                Some(Token::Minus) => (Op::Arith(BinOp::Sub), 2),
                Some(Token::Star) => (Op::Arith(BinOp::Mul), 3),
                Some(Token::Slash) => (Op::Arith(BinOp::Div), 3),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            match op {
                Op::Arith(op) => {
                    // Optional on(...)/ignoring(...) vector matching.
                    let matching = self.parse_matching_modifier()?;
                    let rhs = self.parse_binary(prec + 1)?;
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        matching,
                    };
                }
                Op::Cmp(op) => {
                    let mut bool_mode = false;
                    if let Some(Token::Ident(k)) = self.peek() {
                        if k == "bool" {
                            self.bump();
                            bool_mode = true;
                        }
                    }
                    let rhs = self.parse_binary(prec + 1)?;
                    lhs = Expr::Compare {
                        op,
                        bool_mode,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
            }
        }
        Ok(lhs)
    }

    fn parse_matching_modifier(&mut self) -> Result<Grouping, ParseError> {
        if let Some(Token::Ident(name)) = self.peek() {
            match name.as_str() {
                "on" => {
                    self.bump();
                    return Ok(Grouping::By(self.parse_label_list()?));
                }
                "ignoring" => {
                    self.bump();
                    return Ok(Grouping::Without(self.parse_label_list()?));
                }
                _ => {}
            }
        }
        Ok(Grouping::None)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.peek() == Some(&Token::Plus) {
            self.bump();
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(v)) => Ok(Expr::Number(v)),
            Some(Token::LParen) => {
                let inner = self.parse_binary(0)?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::LBrace) => {
                // Bare matcher selector: {job="x"}.
                let matchers = self.parse_matchers_body()?;
                self.finish_selector(matchers)
            }
            Some(Token::Ident(name)) => {
                // Aggregation?
                if let Some(op) = agg_op(&name) {
                    if matches!(self.peek(), Some(Token::LParen) | Some(Token::Ident(_))) {
                        return self.parse_agg(op);
                    }
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) && FUNCTIONS.contains(&name.as_str()) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_binary(0)?);
                            if self.peek() == Some(&Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Func { name, args });
                }
                // Metric selector.
                let mut matchers =
                    vec![LabelMatcher::eq(METRIC_NAME_LABEL, name)];
                if self.peek() == Some(&Token::LBrace) {
                    self.bump();
                    matchers.extend(self.parse_matchers_body()?);
                }
                self.finish_selector(matchers)
            }
            other => Err(ParseError(format!("unexpected token {other:?}"))),
        }
    }

    /// Parses `[range]` and `offset` suffixes after a selector.
    fn finish_selector(&mut self, matchers: Vec<LabelMatcher>) -> Result<Expr, ParseError> {
        let mut range_ms = None;
        if self.peek() == Some(&Token::LBracket) {
            self.bump();
            match self.bump() {
                Some(Token::Duration(ms)) => range_ms = Some(ms),
                other => return Err(ParseError(format!("expected duration, got {other:?}"))),
            }
            self.expect(&Token::RBracket)?;
        }
        let mut offset_ms = 0;
        if let Some(Token::Ident(k)) = self.peek() {
            if k == "offset" {
                self.bump();
                match self.bump() {
                    Some(Token::Duration(ms)) => offset_ms = ms,
                    other => {
                        return Err(ParseError(format!(
                            "expected duration after offset, got {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(Expr::Selector(VectorSelector {
            matchers,
            range_ms,
            offset_ms,
        }))
    }

    fn parse_matchers_body(&mut self) -> Result<Vec<LabelMatcher>, ParseError> {
        let mut matchers = Vec::new();
        loop {
            if self.peek() == Some(&Token::RBrace) {
                self.bump();
                break;
            }
            let name = match self.bump() {
                Some(Token::Ident(n)) => n,
                other => return Err(ParseError(format!("expected label name, got {other:?}"))),
            };
            let op = match self.bump() {
                Some(Token::Eq) => MatchOp::Eq,
                Some(Token::Ne) => MatchOp::Ne,
                Some(Token::Re) => MatchOp::Re,
                Some(Token::Nre) => MatchOp::Nre,
                other => return Err(ParseError(format!("expected matcher op, got {other:?}"))),
            };
            let value = match self.bump() {
                Some(Token::Str(s)) => s,
                other => return Err(ParseError(format!("expected string, got {other:?}"))),
            };
            matchers.push(
                LabelMatcher::new(name, op, value)
                    .map_err(|e| ParseError(format!("bad matcher pattern: {e}")))?,
            );
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                }
                Some(Token::RBrace) => {}
                other => return Err(ParseError(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
        Ok(matchers)
    }

    fn parse_agg(&mut self, op: AggOp) -> Result<Expr, ParseError> {
        // Grouping may appear before or after the parens:
        //   sum by (a) (expr)   or   sum(expr) by (a)
        let mut grouping = self.parse_grouping_clause()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        loop {
            args.push(self.parse_binary(0)?);
            if self.peek() == Some(&Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        if matches!(grouping, Grouping::None) {
            grouping = self.parse_grouping_clause()?;
        }
        let (param, expr) = match (op, args.len()) {
            (AggOp::Topk | AggOp::Bottomk, 2) => {
                let mut it = args.into_iter();
                (Some(Box::new(it.next().unwrap())), Box::new(it.next().unwrap()))
            }
            (AggOp::Topk | AggOp::Bottomk, n) => {
                return Err(ParseError(format!("topk/bottomk need 2 args, got {n}")))
            }
            (_, 1) => (None, Box::new(args.into_iter().next().unwrap())),
            (_, n) => return Err(ParseError(format!("aggregation needs 1 arg, got {n}"))),
        };
        Ok(Expr::Agg {
            op,
            grouping,
            param,
            expr,
        })
    }

    fn parse_grouping_clause(&mut self) -> Result<Grouping, ParseError> {
        if let Some(Token::Ident(k)) = self.peek() {
            match k.as_str() {
                "by" => {
                    self.bump();
                    return Ok(Grouping::By(self.parse_label_list()?));
                }
                "without" => {
                    self.bump();
                    return Ok(Grouping::Without(self.parse_label_list()?));
                }
                _ => {}
            }
        }
        Ok(Grouping::None)
    }

    fn parse_label_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut labels = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(n)) => labels.push(n),
                Some(Token::RParen) if labels.is_empty() => return Ok(labels),
                other => return Err(ParseError(format!("expected label, got {other:?}"))),
            }
            match self.bump() {
                Some(Token::Comma) => {}
                Some(Token::RParen) => break,
                other => return Err(ParseError(format!("expected ',' or ')', got {other:?}"))),
            }
        }
        Ok(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_selector() {
        let e = parse_expr("node_power_watts{instance=\"n1\",job!=\"x\"}").unwrap();
        let Expr::Selector(sel) = e else { panic!("not a selector") };
        assert_eq!(sel.matchers.len(), 3);
        assert_eq!(sel.matchers[0].value, "node_power_watts");
        assert!(sel.range_ms.is_none());
    }

    #[test]
    fn range_selector_with_offset() {
        let e = parse_expr("rapl_joules_total[5m] offset 1h").unwrap();
        let Expr::Selector(sel) = e else { panic!() };
        assert_eq!(sel.range_ms, Some(300_000));
        assert_eq!(sel.offset_ms, 3_600_000);
    }

    #[test]
    fn function_and_nesting() {
        let e = parse_expr("rate(cpu_seconds_total{mode!=\"idle\"}[5m])").unwrap();
        let Expr::Func { name, args } = e else { panic!() };
        assert_eq!(name, "rate");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2*3).
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary { op: BinOp::Add, rhs, .. } = e else { panic!() };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn aggregation_forms() {
        for q in [
            "sum by (user) (job_power_watts)",
            "sum(job_power_watts) by (user)",
            "sum without (instance) (job_power_watts)",
        ] {
            let e = parse_expr(q).unwrap();
            let Expr::Agg { op: AggOp::Sum, grouping, .. } = e else {
                panic!("{q} did not parse as agg")
            };
            assert!(!matches!(grouping, Grouping::None), "{q}");
        }
        let e = parse_expr("topk(3, job_energy_joules)").unwrap();
        let Expr::Agg { op: AggOp::Topk, param, .. } = e else { panic!() };
        assert!(param.is_some());
    }

    #[test]
    fn eq1_shaped_expression_parses() {
        // The §III power-attribution rule shape.
        let q = "0.9 * ipmi_watts * (rate(rapl_cpu_joules_total[2m]) / (rate(rapl_cpu_joules_total[2m]) + rate(rapl_dram_joules_total[2m]))) * (rate(job_cpu_seconds_total[2m]) / rate(node_cpu_seconds_total[2m])) + 0.1 * ipmi_watts / node_jobs_running";
        assert!(parse_expr(q).is_ok());
    }

    #[test]
    fn comparisons_bind_loosest() {
        // a + b > c * 2 parses as (a+b) > (c*2).
        let e = parse_expr("a + b > c * 2").unwrap();
        let Expr::Compare { op: CmpOp::Gt, bool_mode: false, lhs, rhs } = e else {
            panic!("not a comparison")
        };
        assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));

        let e = parse_expr("sum(up) == bool 3").unwrap();
        assert!(matches!(e, Expr::Compare { op: CmpOp::Eq, bool_mode: true, .. }));

        // `!=` outside braces is a comparison, inside braces a matcher.
        let e = parse_expr("up{job!=\"a\"} != 1").unwrap();
        assert!(matches!(e, Expr::Compare { op: CmpOp::Ne, .. }));
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-3 + 4").unwrap();
        let Expr::Binary { lhs, .. } = e else { panic!() };
        assert!(matches!(*lhs, Expr::Neg(_)));
        assert!(parse_expr("+5").is_ok());
    }

    #[test]
    fn on_ignoring_modifiers() {
        let e = parse_expr("a / on (instance) b").unwrap();
        let Expr::Binary { matching, .. } = e else { panic!() };
        assert_eq!(matching, Grouping::By(vec!["instance".into()]));
        let e = parse_expr("a * ignoring (mode) b").unwrap();
        let Expr::Binary { matching, .. } = e else { panic!() };
        assert_eq!(matching, Grouping::Without(vec!["mode".into()]));
    }

    #[test]
    fn errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("rate(").is_err());
        assert!(parse_expr("up{").is_err());
        assert!(parse_expr("up{a=}").is_err());
        assert!(parse_expr("up[5]").is_err());
        assert!(parse_expr("sum(a, b)").is_err());
        assert!(parse_expr("topk(a)").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("up{a=~\"(\"}").is_err());
    }

    #[test]
    fn bare_brace_selector() {
        let e = parse_expr("{uuid=\"slurm-123\"}").unwrap();
        let Expr::Selector(sel) = e else { panic!() };
        assert_eq!(sel.matchers.len(), 1);
    }

    #[test]
    fn empty_matchers_ok() {
        let e = parse_expr("up{}").unwrap();
        let Expr::Selector(sel) = e else { panic!() };
        assert_eq!(sel.matchers.len(), 1);
    }
}
