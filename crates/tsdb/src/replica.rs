//! Replica catch-up: a follower TSDB streams a leader's WAL over HTTP.
//!
//! The leader serves its log through the [`crate::httpapi`] WAL endpoints;
//! a [`WalFollower`] bootstraps from the newest checkpoint (when one
//! exists), then tails segment bytes from its position, applying decoded
//! records through [`crate::storage::Tsdb::apply_wal_records`] — so a
//! follower with its own WAL directory is itself durable. After every
//! apply the follower records the leader position it has reached; the
//! load balancer compares that against the leader's to demote stale
//! replicas.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceems_http::resilience::Backoff;
use ceems_http::{Client, Status};
use ceems_metrics::Counter;

use crate::storage::Tsdb;
use crate::wal::{decode_frames, EpochSpan, WalPosition};

/// HTTP status the leader answers with when a requested segment was
/// garbage-collected behind a checkpoint.
pub const STATUS_GONE: Status = Status(410);

/// Why following failed.
#[derive(Debug)]
pub enum FollowError {
    /// Transport-level failure talking to the leader.
    Http(String),
    /// The leader answered, but unusably (no WAL, bad payload).
    Leader(String),
    /// Local I/O failure applying the stream.
    Io(std::io::Error),
}

impl fmt::Display for FollowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FollowError::Http(e) => write!(f, "leader unreachable: {e}"),
            FollowError::Leader(e) => write!(f, "leader error: {e}"),
            FollowError::Io(e) => write!(f, "local apply failed: {e}"),
        }
    }
}

impl std::error::Error for FollowError {}

/// Longest single backoff a leader-supplied `Retry-After` can impose.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

static FOLLOWER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Streams a leader's WAL into a local TSDB.
pub struct WalFollower {
    client: Client,
    leader_base: String,
    db: Arc<Tsdb>,
    pos: WalPosition,
    resyncs: Counter,
    follower_id: String,
    backoff_until: Option<Instant>,
    rate_limited: Counter,
    transport_backoff_base: Duration,
    transport_backoff_max: Duration,
    backoff_seed: u64,
    transport_retries: Counter,
}

impl WalFollower {
    /// Creates a follower of the leader at `leader_base_url` (no trailing
    /// slash), starting from position zero. Call [`Self::bootstrap`] before
    /// tailing so a checkpointed leader's GC'd history is recovered.
    pub fn new(db: Arc<Tsdb>, leader_base_url: impl Into<String>) -> WalFollower {
        let n = FOLLOWER_SEQ.fetch_add(1, Ordering::Relaxed);
        let follower_id = format!("follower-{}-{n}", std::process::id());
        WalFollower {
            client: Client::new().with_header("x-wal-follower", follower_id.clone()),
            leader_base: leader_base_url.into(),
            db,
            pos: WalPosition::default(),
            resyncs: Counter::new(),
            follower_id,
            backoff_until: None,
            rate_limited: Counter::new(),
            transport_backoff_base: Duration::from_millis(5),
            transport_backoff_max: Duration::from_millis(250),
            backoff_seed: n,
            transport_retries: Counter::new(),
        }
    }

    /// Overrides the jittered backoff range used between retries when the
    /// leader is unreachable at the transport level.
    pub fn with_transport_backoff(mut self, base: Duration, max: Duration) -> WalFollower {
        self.transport_backoff_base = base;
        self.transport_backoff_max = max.max(base);
        self
    }

    /// Fixes the backoff jitter seed (deterministic tests).
    pub fn with_backoff_seed(mut self, seed: u64) -> WalFollower {
        self.backoff_seed = seed;
        self
    }

    /// How many transport-level failures were retried with backoff during
    /// [`Self::catch_up`] loops.
    pub fn transport_retries(&self) -> u64 {
        self.transport_retries.get() as u64
    }

    /// Overrides the `x-wal-follower` identity sent with every fetch (the
    /// leader's rate limiter buckets per identity).
    pub fn with_follower_id(mut self, id: impl Into<String>) -> WalFollower {
        self.follower_id = id.into();
        self.client = Client::new().with_header("x-wal-follower", self.follower_id.clone());
        self
    }

    /// How many fetches the leader has answered with `429 Too Many
    /// Requests`.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.get() as u64
    }

    /// Remaining leader-imposed backoff, when one is active.
    fn backoff_remaining(&self) -> Option<Duration> {
        let until = self.backoff_until?;
        let now = Instant::now();
        if now < until {
            Some(until - now)
        } else {
            None
        }
    }

    /// The leader position this follower has applied up to.
    pub fn position(&self) -> WalPosition {
        self.pos
    }

    /// How many times this follower fell behind the leader's GC horizon and
    /// re-bootstrapped from a checkpoint.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.get() as u64
    }

    /// A clone of the resync counter, for registering as
    /// `ceems_tsdb_follower_resyncs_total`.
    pub fn resync_counter(&self) -> Counter {
        self.resyncs.clone()
    }

    /// Asks the leader for its current position.
    pub fn leader_position(&self) -> Result<WalPosition, FollowError> {
        let url = format!("{}/api/v1/wal/position", self.leader_base);
        let resp = self
            .client
            .get(&url)
            .map_err(|e| FollowError::Http(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(FollowError::Leader(format!(
                "position probe returned {}",
                resp.status.0
            )));
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body)
            .map_err(|e| FollowError::Leader(e.to_string()))?;
        let data = &v["data"];
        if data["walEnabled"] != serde_json::Value::Bool(true) {
            return Err(FollowError::Leader("leader has no WAL attached".into()));
        }
        Ok(WalPosition {
            seq: data["seq"].as_u64().unwrap_or(0),
            offset: data["offset"].as_u64().unwrap_or(0),
            records: data["records"].as_u64().unwrap_or(0),
        })
    }

    /// Asks the leader for its epoch and epoch history
    /// (`/api/v1/wal/epochs`). A rejoining ex-leader compares this against
    /// its own WAL tail to find where the logs diverged.
    pub fn leader_epochs(&self) -> Result<(u64, Vec<EpochSpan>), FollowError> {
        let url = format!("{}/api/v1/wal/epochs", self.leader_base);
        let resp = self
            .client
            .get(&url)
            .map_err(|e| FollowError::Http(e.to_string()))?;
        if !resp.status.is_success() {
            return Err(FollowError::Leader(format!(
                "epochs probe returned {}",
                resp.status.0
            )));
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body)
            .map_err(|e| FollowError::Leader(e.to_string()))?;
        let data = &v["data"];
        let epoch = data["epoch"].as_u64().unwrap_or(0);
        let history = data["history"]
            .as_array()
            .map(|spans| {
                spans
                    .iter()
                    .map(|s| EpochSpan {
                        epoch: s["epoch"].as_u64().unwrap_or(0),
                        start_records: s["startRecords"].as_u64().unwrap_or(0),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok((epoch, history))
    }

    /// Maps a replicated record count onto the leader's own segment layout
    /// (`/api/v1/wal/locate`). `Ok(None)` means the leader has checkpointed
    /// past that count — the rejoiner must re-bootstrap instead.
    pub fn locate_on_leader(&self, records: u64) -> Result<Option<WalPosition>, FollowError> {
        let url = format!("{}/api/v1/wal/locate?records={records}", self.leader_base);
        let resp = self
            .client
            .get(&url)
            .map_err(|e| FollowError::Http(e.to_string()))?;
        if resp.status == STATUS_GONE {
            return Ok(None);
        }
        if !resp.status.is_success() {
            return Err(FollowError::Leader(format!(
                "locate returned {}",
                resp.status.0
            )));
        }
        let v: serde_json::Value = serde_json::from_slice(&resp.body)
            .map_err(|e| FollowError::Leader(e.to_string()))?;
        let data = &v["data"];
        Ok(Some(WalPosition {
            seq: data["seq"].as_u64().unwrap_or(0),
            offset: data["offset"].as_u64().unwrap_or(0),
            records: data["records"].as_u64().unwrap_or(records),
        }))
    }

    /// Resumes tailing at a known replicated record count: locates it on
    /// the leader (whose segment layout differs from any local one) and
    /// tails from there. Falls back to a full checkpoint re-bootstrap when
    /// the leader GC'd that far back — the divergence-safe rejoin path for
    /// a truncated ex-leader that kept its prefix.
    pub fn resume_from_records(&mut self, records: u64) -> Result<(), FollowError> {
        match self.locate_on_leader(records)? {
            Some(pos) => {
                self.pos = pos;
                self.db.set_upstream_wal_position(pos);
                Ok(())
            }
            None => {
                self.resyncs.inc();
                self.db.clear_for_resync();
                self.pos = WalPosition::default();
                self.bootstrap()
            }
        }
    }

    /// Initializes an empty follower: loads the leader's newest checkpoint
    /// if it has one (recovering history whose segments were GC'd), else
    /// starts tailing from the leader's oldest segment.
    pub fn bootstrap(&mut self) -> Result<(), FollowError> {
        let url = format!("{}/api/v1/wal/checkpoint", self.leader_base);
        let resp = self
            .client
            .get(&url)
            .map_err(|e| FollowError::Http(e.to_string()))?;
        if resp.status.is_success() {
            self.pos = self
                .db
                .load_checkpoint_bytes(&resp.body)
                .map_err(FollowError::Io)?;
        } else if resp.status == Status::NOT_FOUND {
            self.pos = WalPosition::default();
        } else {
            return Err(FollowError::Leader(format!(
                "checkpoint fetch returned {}",
                resp.status.0
            )));
        }
        self.db.set_upstream_wal_position(self.pos);
        Ok(())
    }

    /// Fetches and applies one chunk of WAL from the current position.
    /// Returns the number of records applied (0 when the follower is at the
    /// leader's tip, or when it raced a partially-written frame — retry).
    pub fn poll_once(&mut self) -> Result<u64, FollowError> {
        if self.backoff_remaining().is_some() {
            // Still inside a leader-imposed Retry-After window: stay off
            // the wire entirely.
            return Ok(0);
        }
        self.backoff_until = None;
        let url = format!(
            "{}/api/v1/wal/fetch?seq={}&offset={}",
            self.leader_base, self.pos.seq, self.pos.offset
        );
        let resp = self
            .client
            .get(&url)
            .map_err(|e| FollowError::Http(e.to_string()))?;
        if resp.status == Status::TOO_MANY_REQUESTS {
            // The leader is shedding us; honor its Retry-After (parsed as
            // delta-seconds by ceems-http) and report no progress.
            let wait = resp
                .retry_after_secs()
                .map(Duration::from_secs_f64)
                .unwrap_or(Duration::from_millis(50))
                .min(MAX_BACKOFF);
            self.backoff_until = Some(Instant::now() + wait);
            self.rate_limited.inc();
            return Ok(0);
        }
        if resp.status == STATUS_GONE {
            // The leader checkpointed past us; our partial state cannot be
            // reconciled record-by-record. Drop it and re-bootstrap from the
            // leader's checkpoint, exactly as a freshly-started follower
            // would. The next poll tails from the recovered position.
            self.resyncs.inc();
            self.db.clear_for_resync();
            self.pos = WalPosition::default();
            self.bootstrap()?;
            return Ok(0);
        }
        if !resp.status.is_success() {
            return Err(FollowError::Leader(format!(
                "fetch returned {}",
                resp.status.0
            )));
        }
        let last_seq: u64 = resp
            .header("x-wal-last-seq")
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.pos.seq);

        let (records, consumed) = decode_frames(&resp.body);
        let applied = records.len() as u64;
        if applied > 0 {
            self.db.apply_wal_records(&records);
            self.pos.offset += consumed as u64;
            self.pos.records += applied;
            self.db.set_upstream_wal_position(self.pos);
        } else if resp.body.is_empty() && last_seq > self.pos.seq {
            // Drained this segment and the leader has rotated: move on.
            self.pos.seq += 1;
            self.pos.offset = 0;
            self.db.set_upstream_wal_position(self.pos);
        }
        Ok(applied)
    }

    /// Polls until the follower has applied at least as many records as the
    /// leader had logged when the loop iteration asked. Returns the total
    /// records applied. Errors out after `max_stalls` consecutive polls
    /// with no progress while still behind.
    ///
    /// Transport-level failures (leader unreachable) do not kill the loop
    /// immediately: they are retried up to `max_stalls` times under capped
    /// exponential backoff with full jitter, so a follower whose leader is
    /// restarting neither tight-loops on a dead socket nor gives up on the
    /// first refused connection.
    pub fn catch_up(&mut self, max_stalls: u32) -> Result<u64, FollowError> {
        let backoff = Backoff::seeded(
            self.transport_backoff_base,
            self.transport_backoff_max,
            self.backoff_seed,
        );
        let mut total = 0u64;
        let mut stalls = 0u32;
        let mut transport_failures = 0u32;
        loop {
            let target = match self.leader_position() {
                Ok(t) => t,
                Err(e @ FollowError::Http(_)) => {
                    transport_failures += 1;
                    if transport_failures > max_stalls {
                        return Err(e);
                    }
                    self.transport_retries.inc();
                    std::thread::sleep(backoff.next_delay());
                    continue;
                }
                Err(e) => return Err(e),
            };
            if self.pos.records >= target.records {
                return Ok(total);
            }
            let pos_before = self.pos;
            let applied = match self.poll_once() {
                Ok(a) => a,
                Err(e @ FollowError::Http(_)) => {
                    transport_failures += 1;
                    if transport_failures > max_stalls {
                        return Err(e);
                    }
                    self.transport_retries.inc();
                    std::thread::sleep(backoff.next_delay());
                    continue;
                }
                Err(e) => return Err(e),
            };
            transport_failures = 0;
            backoff.reset();
            total += applied;
            if applied == 0 && self.pos == pos_before {
                stalls += 1;
                if stalls > max_stalls {
                    return Err(FollowError::Leader(format!(
                        "no progress after {max_stalls} polls at {:?} (leader at {:?})",
                        self.pos, target
                    )));
                }
                // Rate-limited polls wait out (a slice of) the leader's
                // Retry-After instead of hammering it every 2 ms.
                let wait = self
                    .backoff_remaining()
                    .unwrap_or(Duration::from_millis(2))
                    .min(Duration::from_millis(250));
                std::thread::sleep(wait);
            } else {
                stalls = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{Tsdb, TsdbConfig};

    #[test]
    fn unreachable_leader_backs_off_then_errors() {
        let db = Arc::new(Tsdb::new(TsdbConfig::default()));
        // Port 1 refuses connections immediately on any sane test host.
        let mut f = WalFollower::new(db, "http://127.0.0.1:1")
            .with_transport_backoff(Duration::from_millis(1), Duration::from_millis(4))
            .with_backoff_seed(7);
        let start = Instant::now();
        let err = f.catch_up(3).unwrap_err();
        assert!(
            matches!(err, FollowError::Http(_)),
            "expected transport error, got {err}"
        );
        // 3 retries happened under backoff before the 4th failure gave up.
        assert_eq!(f.transport_retries(), 3);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "backoff must stay capped"
        );
    }

    #[test]
    fn transport_backoff_is_deterministic() {
        let mk = || {
            Backoff::seeded(Duration::from_millis(1), Duration::from_millis(64), 42)
        };
        let a = mk();
        let b = mk();
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }
}
