//! Recording rules.
//!
//! The paper's §III energy-estimation formula is deployed as Prometheus
//! recording rules, with different rules per scrape-target group (Intel
//! with DRAM counters, AMD without, GPU servers of both IPMI wirings).
//! [`RuleEngine`] evaluates rule groups on their intervals and writes the
//! derived series back into the TSDB under the rule's `record` name.

use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};

use crate::promql::{instant_query_with_lookback, parse_expr, EvalError, Expr, Value};
use crate::storage::Tsdb;

/// One recording rule.
#[derive(Clone, Debug)]
pub struct RecordingRule {
    /// Name the derived series is recorded under (may contain `:`).
    pub record: String,
    /// The expression source (kept for display).
    pub expr_src: String,
    /// Parsed expression.
    pub expr: Expr,
    /// Extra static labels stamped on the output.
    pub static_labels: Vec<(String, String)>,
}

impl RecordingRule {
    /// Parses a rule.
    pub fn new(
        record: impl Into<String>,
        expr: &str,
        static_labels: &[(&str, &str)],
    ) -> Result<RecordingRule, String> {
        Ok(RecordingRule {
            record: record.into(),
            expr_src: expr.to_string(),
            expr: parse_expr(expr).map_err(|e| e.to_string())?,
            static_labels: static_labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }
}

/// A group of rules sharing an evaluation interval.
#[derive(Clone, Debug)]
pub struct RuleGroup {
    /// Group name (shown in metrics/logs).
    pub name: String,
    /// Evaluation interval (ms).
    pub interval_ms: i64,
    /// Rules evaluated in order (later rules can read earlier outputs on
    /// the *next* evaluation, like Prometheus).
    pub rules: Vec<RecordingRule>,
}

/// Evaluation statistics for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule evaluations performed.
    pub evaluations: u64,
    /// Series written.
    pub series_written: u64,
    /// Evaluations that errored.
    pub failures: u64,
}

/// Evaluates rule groups against a TSDB on simulated time.
pub struct RuleEngine {
    groups: Vec<RuleGroup>,
    last_eval_ms: Vec<i64>,
    stats: RuleStats,
    eval_threads: usize,
}

impl RuleEngine {
    /// Creates an engine (serial evaluation; see
    /// [`RuleEngine::with_eval_threads`]).
    pub fn new(groups: Vec<RuleGroup>) -> RuleEngine {
        let n = groups.len();
        RuleEngine {
            groups,
            last_eval_ms: vec![i64::MIN; n],
            stats: RuleStats::default(),
            eval_threads: 1,
        }
    }

    /// Evaluates rules *within* a due group on up to `threads` scoped
    /// workers. Groups still run in declaration order, and like Prometheus a
    /// rule only observes sibling outputs on the *next* evaluation round, so
    /// intra-group parallelism does not change results.
    pub fn with_eval_threads(mut self, threads: usize) -> RuleEngine {
        self.eval_threads = threads.max(1);
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> RuleStats {
        self.stats
    }

    /// Group names.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }

    /// Runs every group whose interval elapsed. Returns series written in
    /// this tick.
    pub fn tick(&mut self, db: &Tsdb, now_ms: i64) -> u64 {
        let mut written = 0;
        for (gi, group) in self.groups.iter().enumerate() {
            if now_ms.saturating_sub(self.last_eval_ms[gi]) < group.interval_ms {
                continue;
            }
            self.last_eval_ms[gi] = now_ms;
            // Tight lookback: a series that missed two evaluation rounds is
            // stale (its workload ended) and must not be re-recorded with a
            // fresh timestamp — that would keep dead jobs drawing power.
            let lookback_ms = group.interval_ms.saturating_mul(2).saturating_add(15_000);
            let results = Self::eval_group(db, group, now_ms, lookback_ms, self.eval_threads);
            for r in results {
                self.stats.evaluations += 1;
                match r {
                    Ok(n) => {
                        written += n;
                        self.stats.series_written += n;
                    }
                    Err(_) => self.stats.failures += 1,
                }
            }
        }
        written
    }

    /// Evaluates one group's rules, fanning out over scoped workers when
    /// parallelism is enabled. Results come back in rule order either way.
    fn eval_group(
        db: &Tsdb,
        group: &RuleGroup,
        now_ms: i64,
        lookback_ms: i64,
        threads: usize,
    ) -> Vec<Result<u64, EvalError>> {
        let workers = threads.min(group.rules.len());
        if workers <= 1 {
            return group
                .rules
                .iter()
                .map(|rule| Self::eval_rule(db, rule, now_ms, lookback_ms))
                .collect();
        }
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let rules = &group.rules;
                    scope.spawn(move |_| {
                        rules
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, rule)| (i, Self::eval_rule(db, rule, now_ms, lookback_ms)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, Result<u64, EvalError>)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("rule worker panicked"))
                .collect();
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, r)| r).collect()
        })
        .expect("rule scope")
    }

    /// Forces evaluation of every rule right now (used by tests/benches).
    pub fn force_eval(&mut self, db: &Tsdb, now_ms: i64) -> u64 {
        for t in self.last_eval_ms.iter_mut() {
            *t = i64::MIN;
        }
        self.tick(db, now_ms)
    }

    fn eval_rule(
        db: &Tsdb,
        rule: &RecordingRule,
        now_ms: i64,
        lookback_ms: i64,
    ) -> Result<u64, EvalError> {
        let value = instant_query_with_lookback(db, &rule.expr, now_ms, lookback_ms)?;
        let vec = match value {
            Value::Vector(v) => v,
            Value::Scalar(s) => vec![(ceems_metrics::labels::LabelSet::empty(), s)],
            Value::Matrix(_) => {
                return Err(EvalError("recording rule produced a range vector".into()))
            }
        };
        let mut written = 0;
        for (labels, v) in vec {
            if !v.is_finite() {
                continue; // division by a zero denominator etc.
            }
            let mut b = LabelSetBuilder::from(labels).label(METRIC_NAME_LABEL, &rule.record);
            for (k, val) in &rule.static_labels {
                b = b.label(k, val);
            }
            db.append(&b.build(), now_ms, v);
            written += 1;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::LabelMatcher;

    fn db() -> Tsdb {
        let db = Tsdb::default();
        for i in 0..41i64 {
            let t = i * 15_000;
            for (inst, rate) in [("n1", 150), ("n2", 300)] {
                db.append(
                    &labels! {"__name__" => "energy_joules_total", "instance" => inst},
                    t,
                    (i * rate) as f64,
                );
            }
        }
        db
    }

    #[test]
    fn rule_records_derived_series() {
        let db = db();
        let rule = RecordingRule::new(
            "instance:power_watts:rate2m",
            "rate(energy_joules_total[2m])",
            &[("source", "rapl")],
        )
        .unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "power".into(),
            interval_ms: 30_000,
            rules: vec![rule],
        }]);
        let n = engine.tick(&db, 600_000);
        assert_eq!(n, 2);

        let got = db.select(
            &[LabelMatcher::eq("__name__", "instance:power_watts:rate2m")],
            0,
            i64::MAX,
        );
        assert_eq!(got.len(), 2);
        for s in &got {
            assert_eq!(s.labels.get("source"), Some("rapl"));
            let expect = if s.labels.get("instance") == Some("n1") { 10.0 } else { 20.0 };
            assert!((s.samples[0].v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn interval_gating() {
        let db = db();
        let rule =
            RecordingRule::new("r", "rate(energy_joules_total[2m])", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 60_000,
            rules: vec![rule],
        }]);
        assert!(engine.tick(&db, 300_000) > 0);
        // 30s later: not due.
        assert_eq!(engine.tick(&db, 330_000), 0);
        // 60s later: due again.
        assert!(engine.tick(&db, 360_000) > 0);
        assert_eq!(engine.stats().failures, 0);
        assert_eq!(engine.group_names(), vec!["g"]);
    }

    #[test]
    fn non_finite_results_skipped() {
        let db = Tsdb::default();
        db.append(&labels! {"__name__" => "num"}, 0, 1.0);
        db.append(&labels! {"__name__" => "den"}, 0, 0.0);
        let rule = RecordingRule::new("bad", "num / on () den", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 1,
            rules: vec![rule],
        }]);
        let n = engine.tick(&db, 1000);
        assert_eq!(n, 0); // inf skipped
        assert_eq!(engine.stats().failures, 0);
    }

    #[test]
    fn bad_expression_rejected_at_parse() {
        assert!(RecordingRule::new("x", "rate(", &[]).is_err());
    }

    #[test]
    fn parallel_group_eval_matches_serial() {
        let mk_engine = |threads| {
            let rules: Vec<RecordingRule> = (1..=6)
                .map(|m| {
                    RecordingRule::new(
                        format!("r{m}"),
                        &format!("rate(energy_joules_total[2m]) * {m}"),
                        &[],
                    )
                    .unwrap()
                })
                .collect();
            RuleEngine::new(vec![RuleGroup {
                name: "g".into(),
                interval_ms: 30_000,
                rules,
            }])
            .with_eval_threads(threads)
        };
        let serial_db = db();
        let parallel_db = db();
        let mut serial = mk_engine(1);
        let mut parallel = mk_engine(4);
        assert_eq!(
            serial.tick(&serial_db, 600_000),
            parallel.tick(&parallel_db, 600_000)
        );
        assert_eq!(serial.stats(), parallel.stats());
        for m in 1..=6 {
            let matcher = [LabelMatcher::eq("__name__", format!("r{m}"))];
            let a = serial_db.select(&matcher, 0, i64::MAX);
            let b = parallel_db.select(&matcher, 0, i64::MAX);
            assert_eq!(a.len(), 2);
            let key = |s: &crate::types::SeriesData| s.labels.get("instance").unwrap().to_string();
            let mut a = a;
            let mut b = b;
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn force_eval_reruns_everything() {
        let db = db();
        let rule = RecordingRule::new("r", "rate(energy_joules_total[2m])", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: i64::MAX / 2,
            rules: vec![rule],
        }]);
        assert!(engine.tick(&db, 600_000) > 0);
        assert_eq!(engine.tick(&db, 600_001), 0);
        assert!(engine.force_eval(&db, 600_002) > 0);
    }
}
