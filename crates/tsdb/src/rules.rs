//! Recording rules.
//!
//! The paper's §III energy-estimation formula is deployed as Prometheus
//! recording rules, with different rules per scrape-target group (Intel
//! with DRAM counters, AMD without, GPU servers of both IPMI wirings).
//! [`RuleEngine`] evaluates rule groups on their intervals and writes the
//! derived series back into the TSDB under the rule's `record` name.

use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_metrics::matcher::MatchOp;
use ceems_metrics::{Histogram, HistogramVec};

use crate::promql::{instant_query_with_lookback, parse_expr, EvalError, Expr, Value};
use crate::storage::Tsdb;

/// One recording rule.
#[derive(Clone, Debug)]
pub struct RecordingRule {
    /// Name the derived series is recorded under (may contain `:`).
    pub record: String,
    /// The expression source (kept for display).
    pub expr_src: String,
    /// Parsed expression.
    pub expr: Expr,
    /// Extra static labels stamped on the output.
    pub static_labels: Vec<(String, String)>,
}

impl RecordingRule {
    /// Parses a rule.
    pub fn new(
        record: impl Into<String>,
        expr: &str,
        static_labels: &[(&str, &str)],
    ) -> Result<RecordingRule, String> {
        Ok(RecordingRule {
            record: record.into(),
            expr_src: expr.to_string(),
            expr: parse_expr(expr).map_err(|e| e.to_string())?,
            static_labels: static_labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }
}

/// A group of rules sharing an evaluation interval.
#[derive(Clone, Debug)]
pub struct RuleGroup {
    /// Group name (shown in metrics/logs).
    pub name: String,
    /// Evaluation interval (ms).
    pub interval_ms: i64,
    /// Rules evaluated in dependency order: a rule whose expression reads
    /// an earlier rule's `record` name observes the value written *this*
    /// round (the engine appends each level's outputs before the next level
    /// runs), which is what lets the attribution chains resolve in one
    /// evaluation. Rules with no dependency between them may run
    /// concurrently when parallelism is enabled.
    pub rules: Vec<RecordingRule>,
}

/// Evaluation statistics for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule evaluations performed.
    pub evaluations: u64,
    /// Series written.
    pub series_written: u64,
    /// Evaluations that errored.
    pub failures: u64,
}

/// Evaluates rule groups against a TSDB on simulated time.
pub struct RuleEngine {
    groups: Vec<RuleGroup>,
    last_eval_ms: Vec<i64>,
    stats: RuleStats,
    eval_threads: usize,
    group_eval_seconds: HistogramVec,
    /// Evaluations per record name, for asserting that incremental ticks
    /// touch only the affected sub-DAG (S23).
    eval_counts: std::collections::HashMap<String, u64>,
}

impl RuleEngine {
    /// Creates an engine (serial evaluation; see
    /// [`RuleEngine::with_eval_threads`]).
    pub fn new(groups: Vec<RuleGroup>) -> RuleEngine {
        let n = groups.len();
        RuleEngine {
            groups,
            last_eval_ms: vec![i64::MIN; n],
            stats: RuleStats::default(),
            eval_threads: 1,
            group_eval_seconds: HistogramVec::new(
                "ceems_tsdb_rule_group_eval_duration_seconds",
                "One rule-group evaluation round (all levels), by group.",
                &["group"],
                Histogram::duration_buckets(),
            ),
            eval_counts: std::collections::HashMap::new(),
        }
    }

    /// The per-group evaluation-latency histogram family (shared handle;
    /// register it in a metrics registry to expose it).
    pub fn eval_histogram(&self) -> HistogramVec {
        self.group_eval_seconds.clone()
    }

    /// Evaluates independent rules *within* a due group on up to `threads`
    /// scoped workers. Rules in this engine — unlike Prometheus, which
    /// evaluates a group strictly sequentially — may chain within a single
    /// round (the attribution groups feed RAPL intermediates into per-job
    /// components into totals), so blind fan-out would race a rule against
    /// its producer. Instead the engine levels each group by record-name
    /// dependencies: a rule that reads an earlier rule's `record` is placed
    /// in a later level, levels run in order with a barrier between them,
    /// and only rules in the same level run concurrently. This preserves
    /// serial semantics exactly; a selector whose metric name cannot be
    /// determined statically is conservatively ordered after every earlier
    /// rule.
    pub fn with_eval_threads(mut self, threads: usize) -> RuleEngine {
        self.eval_threads = threads.max(1);
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> RuleStats {
        self.stats
    }

    /// Group names.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }

    /// Runs every group whose interval elapsed. Returns series written in
    /// this tick.
    pub fn tick(&mut self, db: &Tsdb, now_ms: i64) -> u64 {
        let mut written = 0;
        for (gi, group) in self.groups.iter().enumerate() {
            if now_ms.saturating_sub(self.last_eval_ms[gi]) < group.interval_ms {
                continue;
            }
            self.last_eval_ms[gi] = now_ms;
            // Tight lookback: a series that missed two evaluation rounds is
            // stale (its workload ended) and must not be re-recorded with a
            // fresh timestamp — that would keep dead jobs drawing power.
            let lookback_ms = group.interval_ms.saturating_mul(2).saturating_add(15_000);
            let _timer = self
                .group_eval_seconds
                .with_label_values(&[&group.name])
                .start_timer();
            let results = Self::eval_group(db, group, now_ms, lookback_ms, self.eval_threads);
            for (rule, r) in group.rules.iter().zip(results) {
                self.stats.evaluations += 1;
                *self.eval_counts.entry(rule.record.clone()).or_insert(0) += 1;
                match r {
                    Ok(n) => {
                        written += n;
                        self.stats.series_written += n;
                    }
                    Err(_) => self.stats.failures += 1,
                }
            }
        }
        written
    }

    /// Incremental evaluation (S23): runs every due group, but inside each
    /// group evaluates only the sub-DAG reachable from the metric names in
    /// `arrived` — a rule is affected when its statically-known read set
    /// intersects the arrived names or the outputs of already-affected
    /// rules (a rule with an unknowable read set is conservatively always
    /// affected). Outputs of affected rules join the arrived set for later
    /// groups, so cross-group chains re-evaluate too. With `arrived`
    /// covering every input this degenerates to [`RuleEngine::tick`];
    /// series values and timestamps are identical either way, which is what
    /// keeps push-mode ingest byte-compatible with poll mode.
    pub fn tick_incremental(
        &mut self,
        db: &Tsdb,
        now_ms: i64,
        arrived: &std::collections::HashSet<String>,
    ) -> u64 {
        let mut written = 0;
        let mut live: std::collections::HashSet<String> = arrived.clone();
        for (gi, group) in self.groups.iter().enumerate() {
            if now_ms.saturating_sub(self.last_eval_ms[gi]) < group.interval_ms {
                continue;
            }
            // Rules are stored in dependency order (producers before
            // consumers), so one forward pass closes the affected set.
            let mut affected: Vec<RecordingRule> = Vec::new();
            for rule in &group.rules {
                let mut reads = Vec::new();
                let known = referenced_names(&rule.expr, &mut reads);
                if !known || reads.iter().any(|r| live.contains(r)) {
                    live.insert(rule.record.clone());
                    affected.push(rule.clone());
                }
            }
            if affected.is_empty() {
                continue; // nothing this group reads arrived; stay quiet
            }
            self.last_eval_ms[gi] = now_ms;
            let lookback_ms = group.interval_ms.saturating_mul(2).saturating_add(15_000);
            let _timer = self
                .group_eval_seconds
                .with_label_values(&[&group.name])
                .start_timer();
            let sub = RuleGroup {
                name: group.name.clone(),
                interval_ms: group.interval_ms,
                rules: affected,
            };
            let results = Self::eval_group(db, &sub, now_ms, lookback_ms, self.eval_threads);
            for (rule, r) in sub.rules.iter().zip(results) {
                self.stats.evaluations += 1;
                *self.eval_counts.entry(rule.record.clone()).or_insert(0) += 1;
                match r {
                    Ok(n) => {
                        written += n;
                        self.stats.series_written += n;
                    }
                    Err(_) => self.stats.failures += 1,
                }
            }
        }
        written
    }

    /// How many times the rule recording `record` has been evaluated.
    pub fn eval_count(&self, record: &str) -> u64 {
        self.eval_counts.get(record).copied().unwrap_or(0)
    }

    /// Total rule evaluations across all records (full and incremental).
    pub fn total_evals(&self) -> u64 {
        self.eval_counts.values().sum()
    }

    /// Evaluates one group's rules level by level: each dependency level is
    /// a barrier, and rules inside a level fan out over scoped workers when
    /// parallelism is enabled. Results come back in rule order either way.
    fn eval_group(
        db: &Tsdb,
        group: &RuleGroup,
        now_ms: i64,
        lookback_ms: i64,
        threads: usize,
    ) -> Vec<Result<u64, EvalError>> {
        if threads <= 1 || group.rules.len() <= 1 {
            return group
                .rules
                .iter()
                .map(|rule| Self::eval_rule(db, rule, now_ms, lookback_ms))
                .collect();
        }
        let mut results: Vec<Option<Result<u64, EvalError>>> =
            (0..group.rules.len()).map(|_| None).collect();
        for level in dependency_levels(&group.rules) {
            let workers = threads.min(level.len());
            if workers <= 1 {
                for i in level {
                    results[i] = Some(Self::eval_rule(db, &group.rules[i], now_ms, lookback_ms));
                }
                continue;
            }
            let filled: Vec<(usize, Result<u64, EvalError>)> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let rules = &group.rules;
                            let level = &level;
                            scope.spawn(move |_| {
                                // Selects issued from inside a rule worker
                                // stay serial — the fan-out budget is spent
                                // here, not multiplied per worker.
                                crate::storage::mark_nested_query_worker();
                                level
                                    .iter()
                                    .skip(w)
                                    .step_by(workers)
                                    .map(|&i| {
                                        (i, Self::eval_rule(db, &rules[i], now_ms, lookback_ms))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("rule worker panicked"))
                        .collect()
                })
                .expect("rule scope");
            for (i, r) in filled {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every rule evaluated"))
            .collect()
    }

    /// Forces evaluation of every rule right now (used by tests/benches).
    pub fn force_eval(&mut self, db: &Tsdb, now_ms: i64) -> u64 {
        for t in self.last_eval_ms.iter_mut() {
            *t = i64::MIN;
        }
        self.tick(db, now_ms)
    }

    fn eval_rule(
        db: &Tsdb,
        rule: &RecordingRule,
        now_ms: i64,
        lookback_ms: i64,
    ) -> Result<u64, EvalError> {
        let value = instant_query_with_lookback(db, &rule.expr, now_ms, lookback_ms)?;
        let vec = match value {
            Value::Vector(v) => v,
            Value::Scalar(s) => vec![(ceems_metrics::labels::LabelSet::empty(), s)],
            Value::Matrix(_) => {
                return Err(EvalError("recording rule produced a range vector".into()))
            }
        };
        let mut written = 0;
        for (labels, v) in vec {
            if !v.is_finite() {
                continue; // division by a zero denominator etc.
            }
            let mut b = LabelSetBuilder::from(labels).label(METRIC_NAME_LABEL, &rule.record);
            for (k, val) in &rule.static_labels {
                b = b.label(k, val);
            }
            db.append(&b.build(), now_ms, v);
            written += 1;
        }
        Ok(written)
    }
}

/// Collects the metric names an expression's selectors read into `out`.
/// Returns `false` when any selector lacks an exact `__name__` matcher
/// (regex or nameless selectors), meaning the read set is unknowable
/// statically and the rule must be ordered after every earlier rule.
///
/// Public because the alerting service levels its alert-rule DAGs with the
/// same static analysis (S3 → S21 reuse).
pub fn referenced_names(expr: &Expr, out: &mut Vec<String>) -> bool {
    match expr {
        Expr::Number(_) => true,
        Expr::Selector(sel) => {
            let name = sel
                .matchers
                .iter()
                .find(|m| m.name == METRIC_NAME_LABEL && m.op == MatchOp::Eq);
            match name {
                Some(m) => {
                    out.push(m.value.clone());
                    true
                }
                None => false,
            }
        }
        Expr::Neg(e) => referenced_names(e, out),
        Expr::Binary { lhs, rhs, .. } => {
            // Evaluate both sides so `out` is complete even when one side
            // is opaque (the caller still learns what the known side reads).
            let l = referenced_names(lhs, out);
            let r = referenced_names(rhs, out);
            l && r
        }
        Expr::Agg { param, expr, .. } => {
            let p = param
                .as_ref()
                .is_none_or(|p| referenced_names(p, out));
            referenced_names(expr, out) && p
        }
        Expr::Func { args, .. } => {
            let mut known = true;
            for a in args {
                known &= referenced_names(a, out);
            }
            known
        }
        Expr::Compare { lhs, rhs, .. } => {
            let l = referenced_names(lhs, out);
            let r = referenced_names(rhs, out);
            l && r
        }
    }
}

/// Topologically levels a group's rules by record-name dependencies.
///
/// Rule `i` depends on an earlier rule `j` when `i`'s expression reads
/// `j`'s `record` name (or when `i`'s read set is statically unknown, in
/// which case it depends on all earlier rules). `level(i)` is one past the
/// deepest producer it depends on, so evaluating levels in order with a
/// barrier between them reproduces serial evaluation exactly: every rule
/// sees the same-round outputs of everything it reads. Returns the rule
/// indices grouped by level, levels in ascending order.
fn dependency_levels(rules: &[RecordingRule]) -> Vec<Vec<usize>> {
    let produces: Vec<Option<&str>> = rules.iter().map(|r| Some(r.record.as_str())).collect();
    let reads: Vec<Option<Vec<String>>> = rules
        .iter()
        .map(|r| {
            let mut names = Vec::new();
            referenced_names(&r.expr, &mut names).then_some(names)
        })
        .collect();
    dependency_levels_by(&produces, &reads)
}

/// Generic form of the leveling: item `i` produces `produces[i]` (None for
/// items that record nothing, e.g. alert rules) and statically reads
/// `reads[i]` (None when unknowable). Item `i` depends on an earlier item
/// `j` when its read set is unknown or contains `j`'s produced name.
/// `produces` and `reads` must have equal length. This is the piece the
/// alerting service reuses to level alert DAGs.
pub fn dependency_levels_by(
    produces: &[Option<&str>],
    reads: &[Option<Vec<String>>],
) -> Vec<Vec<usize>> {
    assert_eq!(produces.len(), reads.len());
    let n = produces.len();
    let mut level = vec![0usize; n];
    let mut max_level = 0;
    for i in 0..n {
        for j in 0..i {
            let depends = match &reads[i] {
                None => true,
                Some(names) => produces[j].is_some_and(|p| names.iter().any(|n| n == p)),
            };
            if depends {
                level[i] = level[i].max(level[j] + 1);
            }
        }
        max_level = max_level.max(level[i]);
    }
    let mut levels: Vec<Vec<usize>> = (0..=max_level).map(|_| Vec::new()).collect();
    for (i, &lv) in level.iter().enumerate() {
        levels[lv].push(i);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::LabelMatcher;

    fn db() -> Tsdb {
        let db = Tsdb::default();
        for i in 0..41i64 {
            let t = i * 15_000;
            for (inst, rate) in [("n1", 150), ("n2", 300)] {
                db.append(
                    &labels! {"__name__" => "energy_joules_total", "instance" => inst},
                    t,
                    (i * rate) as f64,
                );
            }
        }
        db
    }

    #[test]
    fn rule_records_derived_series() {
        let db = db();
        let rule = RecordingRule::new(
            "instance:power_watts:rate2m",
            "rate(energy_joules_total[2m])",
            &[("source", "rapl")],
        )
        .unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "power".into(),
            interval_ms: 30_000,
            rules: vec![rule],
        }]);
        let n = engine.tick(&db, 600_000);
        assert_eq!(n, 2);

        let got = db.select(
            &[LabelMatcher::eq("__name__", "instance:power_watts:rate2m")],
            0,
            i64::MAX,
        );
        assert_eq!(got.len(), 2);
        for s in &got {
            assert_eq!(s.labels.get("source"), Some("rapl"));
            let expect = if s.labels.get("instance") == Some("n1") { 10.0 } else { 20.0 };
            assert!((s.samples[0].v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn interval_gating() {
        let db = db();
        let rule =
            RecordingRule::new("r", "rate(energy_joules_total[2m])", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 60_000,
            rules: vec![rule],
        }]);
        assert!(engine.tick(&db, 300_000) > 0);
        // 30s later: not due.
        assert_eq!(engine.tick(&db, 330_000), 0);
        // 60s later: due again.
        assert!(engine.tick(&db, 360_000) > 0);
        assert_eq!(engine.stats().failures, 0);
        assert_eq!(engine.group_names(), vec!["g"]);
    }

    #[test]
    fn non_finite_results_skipped() {
        let db = Tsdb::default();
        db.append(&labels! {"__name__" => "num"}, 0, 1.0);
        db.append(&labels! {"__name__" => "den"}, 0, 0.0);
        let rule = RecordingRule::new("bad", "num / on () den", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 1,
            rules: vec![rule],
        }]);
        let n = engine.tick(&db, 1000);
        assert_eq!(n, 0); // inf skipped
        assert_eq!(engine.stats().failures, 0);
    }

    #[test]
    fn bad_expression_rejected_at_parse() {
        assert!(RecordingRule::new("x", "rate(", &[]).is_err());
    }

    #[test]
    fn parallel_group_eval_matches_serial() {
        let mk_engine = |threads| {
            let rules: Vec<RecordingRule> = (1..=6)
                .map(|m| {
                    RecordingRule::new(
                        format!("r{m}"),
                        &format!("rate(energy_joules_total[2m]) * {m}"),
                        &[],
                    )
                    .unwrap()
                })
                .collect();
            RuleEngine::new(vec![RuleGroup {
                name: "g".into(),
                interval_ms: 30_000,
                rules,
            }])
            .with_eval_threads(threads)
        };
        let serial_db = db();
        let parallel_db = db();
        let mut serial = mk_engine(1);
        let mut parallel = mk_engine(4);
        assert_eq!(
            serial.tick(&serial_db, 600_000),
            parallel.tick(&parallel_db, 600_000)
        );
        assert_eq!(serial.stats(), parallel.stats());
        for m in 1..=6 {
            let matcher = [LabelMatcher::eq("__name__", format!("r{m}"))];
            let a = serial_db.select(&matcher, 0, i64::MAX);
            let b = parallel_db.select(&matcher, 0, i64::MAX);
            assert_eq!(a.len(), 2);
            let key = |s: &crate::types::SeriesData| s.labels.get("instance").unwrap().to_string();
            let mut a = a;
            let mut b = b;
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parallel_eval_preserves_dependent_chains() {
        // r_base feeds r_mid, which feeds r_top — the shape of the shipped
        // attribution groups (RAPL intermediates → components → totals).
        // Serial eval resolves the chain in one round; parallel eval must
        // produce identical results on the very first tick, not race a rule
        // against its producer.
        let mk_engine = |threads| {
            let rules = vec![
                RecordingRule::new("r_base", "rate(energy_joules_total[2m])", &[]).unwrap(),
                // Independent sibling that shares r_base's level.
                RecordingRule::new("r_side", "rate(energy_joules_total[2m]) * 7", &[]).unwrap(),
                RecordingRule::new("r_mid", "r_base * 2", &[]).unwrap(),
                RecordingRule::new("r_top", "r_mid + r_base", &[]).unwrap(),
            ];
            RuleEngine::new(vec![RuleGroup {
                name: "chain".into(),
                interval_ms: 30_000,
                rules,
            }])
            .with_eval_threads(threads)
        };
        let serial_db = db();
        let parallel_db = db();
        let mut serial = mk_engine(1);
        let mut parallel = mk_engine(4);
        assert_eq!(
            serial.tick(&serial_db, 600_000),
            parallel.tick(&parallel_db, 600_000)
        );
        assert_eq!(serial.stats(), parallel.stats());
        for name in ["r_base", "r_side", "r_mid", "r_top"] {
            let matcher = [LabelMatcher::eq("__name__", name)];
            let mut a = serial_db.select(&matcher, 0, i64::MAX);
            let mut b = parallel_db.select(&matcher, 0, i64::MAX);
            assert_eq!(a.len(), 2, "{name} must resolve on the first tick");
            let key = |s: &crate::types::SeriesData| s.labels.get("instance").unwrap().to_string();
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "{name} diverged under parallel eval");
        }
        // And the chain actually chained: r_top = r_base*2 + r_base.
        let top = parallel_db.select(&[LabelMatcher::eq("__name__", "r_top")], 0, i64::MAX);
        for s in &top {
            let expect = if s.labels.get("instance") == Some("n1") { 30.0 } else { 60.0 };
            assert!((s.samples[0].v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn dependency_levels_order_chains() {
        let rules = vec![
            RecordingRule::new("a", "rate(raw[2m])", &[]).unwrap(),
            RecordingRule::new("b", "rate(raw[2m]) * 2", &[]).unwrap(),
            RecordingRule::new("c", "a / b", &[]).unwrap(),
            RecordingRule::new("d", "c + a", &[]).unwrap(),
            RecordingRule::new("e", "rate(other[2m])", &[]).unwrap(),
        ];
        let levels = dependency_levels(&rules);
        // a, b, e are independent of earlier rules; c reads a+b; d reads c.
        assert_eq!(levels, vec![vec![0, 1, 4], vec![2], vec![3]]);
    }

    #[test]
    fn dependency_levels_match_attribution_chain_depth() {
        // The shipped IntelDram group chains rapl → cpufrac → component →
        // total; every level boundary the closed-form pipeline relies on
        // must survive the static analysis.
        let rules = vec![
            RecordingRule::new(
                "instance:rapl_cpu:watts",
                "sum by (instance) (rate(rapl_pkg_joules_total[2m]))",
                &[],
            )
            .unwrap(),
            RecordingRule::new(
                "instance:rapl_dram:watts",
                "sum by (instance) (rate(rapl_dram_joules_total[2m]))",
                &[],
            )
            .unwrap(),
            RecordingRule::new(
                "instance:cpufrac:ratio",
                "instance:rapl_cpu:watts / (instance:rapl_cpu:watts + instance:rapl_dram:watts)",
                &[],
            )
            .unwrap(),
            RecordingRule::new(
                "uuid:component:watts",
                "instance:cpufrac:ratio * 450",
                &[("component", "cpu")],
            )
            .unwrap(),
            RecordingRule::new(
                "uuid:power:watts",
                "sum by (uuid) (uuid:component:watts)",
                &[],
            )
            .unwrap(),
        ];
        let levels = dependency_levels(&rules);
        assert_eq!(levels, vec![vec![0, 1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn unknown_reads_are_conservatively_ordered_last() {
        let rules = vec![
            RecordingRule::new("a", "rate(raw[2m])", &[]).unwrap(),
            // Nameless selector: read set is unknowable, must follow a.
            RecordingRule::new("b", "sum by (x) ({job=\"j\"})", &[]).unwrap(),
        ];
        let levels = dependency_levels(&rules);
        assert_eq!(levels, vec![vec![0], vec![1]]);
    }

    #[test]
    fn incremental_tick_evaluates_only_affected_subdag() {
        let db = db();
        db.append(
            &labels! {"__name__" => "other_total", "instance" => "n1"},
            300_000,
            1.0,
        );
        db.append(
            &labels! {"__name__" => "other_total", "instance" => "n1"},
            585_000,
            40.0,
        );
        let rules = vec![
            RecordingRule::new("r_base", "rate(energy_joules_total[2m])", &[]).unwrap(),
            RecordingRule::new("r_mid", "r_base * 2", &[]).unwrap(),
            RecordingRule::new("r_other", "rate(other_total[10m])", &[]).unwrap(),
        ];
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 30_000,
            rules,
        }]);

        // Only energy_joules_total arrived: r_base and its dependent r_mid
        // evaluate; r_other does not.
        let arrived: std::collections::HashSet<String> =
            ["energy_joules_total".to_string()].into_iter().collect();
        let written = engine.tick_incremental(&db, 600_000, &arrived);
        assert!(written > 0);
        assert_eq!(engine.eval_count("r_base"), 1);
        assert_eq!(engine.eval_count("r_mid"), 1);
        assert_eq!(engine.eval_count("r_other"), 0, "untouched sub-DAG stays cold");
        assert!(db
            .select(&[LabelMatcher::eq("__name__", "r_other")], 0, i64::MAX)
            .is_empty());

        // Interval gating still applies to what did evaluate.
        assert_eq!(engine.tick_incremental(&db, 600_001, &arrived), 0);

        // The other input arriving later wakes only its own rule.
        let arrived2: std::collections::HashSet<String> =
            ["other_total".to_string()].into_iter().collect();
        // (group went quiet for r_other: last_eval advanced at 600_000, so
        // wait out the interval)
        let w2 = engine.tick_incremental(&db, 630_001, &arrived2);
        assert!(w2 > 0, "r_other evaluates once its input arrives");
        assert_eq!(engine.eval_count("r_other"), 1);
        assert_eq!(engine.eval_count("r_base"), 1, "r_base not re-evaluated");

        // Full-coverage arrived set matches a plain tick's behavior.
        let mut poll = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 30_000,
            rules: vec![
                RecordingRule::new("r_base", "rate(energy_joules_total[2m])", &[]).unwrap(),
                RecordingRule::new("r_mid", "r_base * 2", &[]).unwrap(),
            ],
        }]);
        let poll_db = super::tests::db();
        let n_poll = poll.tick(&poll_db, 600_000);
        let incr_db = super::tests::db();
        let mut incr = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: 30_000,
            rules: vec![
                RecordingRule::new("r_base", "rate(energy_joules_total[2m])", &[]).unwrap(),
                RecordingRule::new("r_mid", "r_base * 2", &[]).unwrap(),
            ],
        }]);
        let n_incr = incr.tick_incremental(&incr_db, 600_000, &arrived);
        assert_eq!(n_poll, n_incr);
        for name in ["r_base", "r_mid"] {
            let a = poll_db.select(&[LabelMatcher::eq("__name__", name)], 0, i64::MAX);
            let b = incr_db.select(&[LabelMatcher::eq("__name__", name)], 0, i64::MAX);
            assert_eq!(a, b, "{name} identical under incremental eval");
        }
    }

    #[test]
    fn force_eval_reruns_everything() {
        let db = db();
        let rule = RecordingRule::new("r", "rate(energy_joules_total[2m])", &[]).unwrap();
        let mut engine = RuleEngine::new(vec![RuleGroup {
            name: "g".into(),
            interval_ms: i64::MAX / 2,
            rules: vec![rule],
        }]);
        assert!(engine.tick(&db, 600_000) > 0);
        assert_eq!(engine.tick(&db, 600_001), 0);
        assert!(engine.force_eval(&db, 600_002) > 0);
    }
}
