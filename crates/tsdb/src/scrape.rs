//! The scrape manager.
//!
//! Pulls exporters on an interval and ingests their samples with target
//! labels (`instance`, `job`, plus per-group extra labels — the paper's
//! "scrape target groups" that let different node families get different
//! recording rules). Targets can be HTTP endpoints (the real path) or
//! in-process closures (used for the 1,400-node simulation, where spinning
//! up 1,400 OS sockets would measure the kernel, not CEEMS).

use std::sync::Arc;

use ceems_http::auth::BasicAuth;
use ceems_http::Client;
use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_metrics::parse::parse_text;

use crate::storage::Tsdb;

/// Where a target's exposition text comes from.
#[derive(Clone)]
pub enum TargetSource {
    /// Scrape over HTTP.
    Http {
        /// Full URL of the metrics endpoint.
        url: String,
        /// Optional basic auth.
        auth: Option<BasicAuth>,
    },
    /// Call a closure returning exposition text (in-process exporter).
    InProcess(Arc<dyn Fn() -> String + Send + Sync>),
}

/// One scrape target.
#[derive(Clone)]
pub struct ScrapeTarget {
    /// `instance` label value (hostname:port on real deployments).
    pub instance: String,
    /// `job` label value.
    pub job: String,
    /// Extra labels stamped on every sample (the target-group labels §III
    /// uses to pick recording rules, e.g. `nodegroup="intel-dram"`).
    pub extra_labels: Vec<(String, String)>,
    /// Text source.
    pub source: TargetSource,
}

/// Result of one scrape pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrapeStats {
    /// Targets scraped successfully.
    pub ok: u64,
    /// Targets that failed (down or parse error).
    pub failed: u64,
    /// Samples ingested.
    pub samples: u64,
}

/// Scrapes a set of targets into a TSDB.
pub struct ScrapeManager {
    targets: Vec<ScrapeTarget>,
    client: Client,
}

impl ScrapeManager {
    /// Creates a manager.
    pub fn new(targets: Vec<ScrapeTarget>) -> ScrapeManager {
        ScrapeManager {
            targets,
            client: Client::new(),
        }
    }

    /// Target count.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Adds a target.
    pub fn add_target(&mut self, t: ScrapeTarget) {
        self.targets.push(t);
    }

    /// Scrapes every target once at simulated time `now_ms`, fanning out
    /// over `threads` OS threads. Ingests an `up` gauge per target.
    pub fn scrape_once(&self, db: &Tsdb, now_ms: i64, threads: usize) -> ScrapeStats {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ok = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        let samples = AtomicU64::new(0);

        let threads = threads.max(1);
        let chunk = self.targets.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for targets in self.targets.chunks(chunk) {
                let (ok, failed, samples) = (&ok, &failed, &samples);
                let client = &self.client;
                s.spawn(move || {
                    for t in targets {
                        match scrape_target(client, t, db, now_ms) {
                            Ok(n) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                samples.fetch_add(n, Ordering::Relaxed);
                            }
                            Err(_) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                ingest_up(db, t, now_ms, 0.0);
                            }
                        }
                    }
                });
            }
        });
        ScrapeStats {
            ok: ok.load(Ordering::Relaxed),
            failed: failed.load(Ordering::Relaxed),
            samples: samples.load(Ordering::Relaxed),
        }
    }
}

fn ingest_up(db: &Tsdb, target: &ScrapeTarget, now_ms: i64, v: f64) {
    let mut b = LabelSetBuilder::new()
        .label(METRIC_NAME_LABEL, "up")
        .label("instance", &target.instance)
        .label("job", &target.job);
    for (k, val) in &target.extra_labels {
        b = b.label(k, val);
    }
    db.append(&b.build(), now_ms, v);
}

/// Parses exposition text into an ingestable batch with target labels
/// stamped — the exact transformation a scrape pass applies. Public so the
/// S23 push path (exporters publishing over the stream bus) produces
/// series byte-identical to poll-mode scraping of the same payload.
pub fn exposition_to_batch(
    body: &str,
    instance: &str,
    job: &str,
    extra_labels: &[(String, String)],
    now_ms: i64,
) -> Result<Vec<(ceems_metrics::labels::LabelSet, i64, f64)>, String> {
    let parsed = parse_text(body).map_err(|e| e.to_string())?;
    let mut batch = Vec::with_capacity(parsed.samples.len());
    for s in parsed.samples {
        let mut b = LabelSetBuilder::from(s.labels)
            .label(METRIC_NAME_LABEL, &s.name)
            .label("instance", instance)
            .label("job", job);
        for (k, v) in extra_labels {
            b = b.label(k, v);
        }
        batch.push((b.build(), s.timestamp_ms.unwrap_or(now_ms), s.value));
    }
    Ok(batch)
}

fn scrape_target(
    client: &Client,
    target: &ScrapeTarget,
    db: &Tsdb,
    now_ms: i64,
) -> Result<u64, String> {
    let body = match &target.source {
        TargetSource::InProcess(f) => f(),
        TargetSource::Http { url, auth } => {
            let c = match auth {
                Some(a) => client.clone().with_basic_auth(a.clone()),
                None => client.clone(),
            };
            let resp = c.get(url).map_err(|e| e.to_string())?;
            if !resp.status.is_success() {
                return Err(format!("scrape returned {}", resp.status.0));
            }
            resp.body_string()
        }
    };
    // One target pass becomes one batch: with a WAL attached this is one
    // group commit (one writer lock + one flush) instead of one per sample.
    let batch = exposition_to_batch(
        &body,
        &target.instance,
        &target.job,
        &target.extra_labels,
        now_ms,
    )?;
    let n = batch.len() as u64;
    db.append_batch(&batch);
    ingest_up(db, target, now_ms, 1.0);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{HttpServer, Response, Router, ServerConfig};
    use ceems_metrics::matcher::LabelMatcher;

    fn in_process_target(instance: &str, body: &'static str) -> ScrapeTarget {
        ScrapeTarget {
            instance: instance.to_string(),
            job: "ceems".to_string(),
            extra_labels: vec![("nodegroup".to_string(), "intel-dram".to_string())],
            source: TargetSource::InProcess(Arc::new(move || body.to_string())),
        }
    }

    #[test]
    fn in_process_scrape_ingests_with_target_labels() {
        let db = Tsdb::default();
        let mgr = ScrapeManager::new(vec![
            in_process_target("n1", "power_watts 250\nmem_bytes 1024\n"),
            in_process_target("n2", "power_watts 300\n"),
        ]);
        let stats = mgr.scrape_once(&db, 15_000, 2);
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.samples, 3);

        let got = db.select(&[LabelMatcher::eq("__name__", "power_watts")], 0, i64::MAX);
        assert_eq!(got.len(), 2);
        for s in &got {
            assert_eq!(s.labels.get("job"), Some("ceems"));
            assert_eq!(s.labels.get("nodegroup"), Some("intel-dram"));
            assert_eq!(s.samples[0].t_ms, 15_000);
        }
        // up series written.
        let up = db.select(&[LabelMatcher::eq("__name__", "up")], 0, i64::MAX);
        assert_eq!(up.len(), 2);
        assert!(up.iter().all(|s| s.samples[0].v == 1.0));
    }

    #[test]
    fn http_scrape_end_to_end() {
        let mut router = Router::new();
        router.get("/metrics", |_| {
            Response::text("# TYPE rapl_joules_total counter\nrapl_joules_total{package=\"0\"} 12345.5\n")
        });
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        let db = Tsdb::default();
        let mgr = ScrapeManager::new(vec![ScrapeTarget {
            instance: "n1".into(),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: format!("{}/metrics", server.base_url()),
                auth: None,
            },
        }]);
        let stats = mgr.scrape_once(&db, 1000, 1);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.samples, 1);
        let got = db.select(&[LabelMatcher::eq("__name__", "rapl_joules_total")], 0, i64::MAX);
        assert_eq!(got[0].labels.get("package"), Some("0"));
        server.shutdown();
    }

    #[test]
    fn failed_target_marks_up_zero() {
        let db = Tsdb::default();
        let mgr = ScrapeManager::new(vec![ScrapeTarget {
            instance: "dead".into(),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: "http://127.0.0.1:1/metrics".into(),
                auth: None,
            },
        }]);
        let stats = mgr.scrape_once(&db, 1000, 1);
        assert_eq!(stats.failed, 1);
        let up = db.select(&[LabelMatcher::eq("__name__", "up")], 0, i64::MAX);
        assert_eq!(up[0].samples[0].v, 0.0);
    }

    #[test]
    fn authenticated_scrape() {
        let auth = BasicAuth::new("prom", "pw");
        let mut router = Router::new();
        router.get("/metrics", |_| Response::text("m 1\n"));
        let server = HttpServer::serve(
            ServerConfig::ephemeral().with_basic_auth(auth.clone()),
            router,
        )
        .unwrap();
        let db = Tsdb::default();
        // Without credentials: fail.
        let mgr = ScrapeManager::new(vec![ScrapeTarget {
            instance: "n1".into(),
            job: "j".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: format!("{}/metrics", server.base_url()),
                auth: None,
            },
        }]);
        assert_eq!(mgr.scrape_once(&db, 0, 1).failed, 1);
        // With credentials: succeed.
        let mgr = ScrapeManager::new(vec![ScrapeTarget {
            instance: "n1".into(),
            job: "j".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: format!("{}/metrics", server.base_url()),
                auth: Some(auth),
            },
        }]);
        assert_eq!(mgr.scrape_once(&db, 0, 1).ok, 1);
        server.shutdown();
    }

    #[test]
    fn malformed_body_counts_as_failure() {
        let db = Tsdb::default();
        let mgr = ScrapeManager::new(vec![in_process_target("n1", "{{{ not metrics")]);
        let stats = mgr.scrape_once(&db, 0, 1);
        assert_eq!(stats.failed, 1);
    }
}
