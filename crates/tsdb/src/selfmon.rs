//! TSDB self-monitoring collector: the database's own counters, cache
//! statistics, WAL state, and latency histograms as metric families, rendered
//! through the stack's own exposition encoder so a CEEMS instance can scrape
//! its CEEMS TSDB.

use std::sync::Arc;

use ceems_metrics::{Collector, MetricFamily, Registry};
use ceems_obs::{counter_value_family, gauge_value_family, histogram_family};

use crate::storage::Tsdb;

/// Collects `ceems_tsdb_*` families from a [`Tsdb`].
pub struct TsdbCollector {
    db: Arc<Tsdb>,
}

impl TsdbCollector {
    /// Creates the collector.
    pub fn new(db: Arc<Tsdb>) -> TsdbCollector {
        TsdbCollector { db }
    }
}

impl Collector for TsdbCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let db = &self.db;
        let cache = db.posting_cache_stats();
        let ins = db.instruments();
        let (wal_syncs, wal_sync_secs) = db.wal_sync_stats();
        let wal_records = db.wal_position().map_or(0, |p| p.records);
        vec![
            gauge_value_family(
                "ceems_tsdb_head_series",
                "Live series in the head.",
                db.series_count() as f64,
            ),
            gauge_value_family(
                "ceems_tsdb_head_storage_bytes",
                "Approximate compressed bytes held in the head.",
                db.storage_bytes() as f64,
            ),
            counter_value_family(
                "ceems_tsdb_samples_appended_total",
                "Samples successfully appended.",
                db.samples_appended() as f64,
            ),
            counter_value_family(
                "ceems_tsdb_out_of_order_total",
                "Out-of-order samples dropped at ingest.",
                db.out_of_order_dropped() as f64,
            ),
            counter_value_family(
                "ceems_tsdb_posting_cache_hits_total",
                "Posting-cache lookups served from cache.",
                cache.hits as f64,
            ),
            counter_value_family(
                "ceems_tsdb_posting_cache_misses_total",
                "Posting-cache lookups that fell through to the index.",
                cache.misses as f64,
            ),
            gauge_value_family(
                "ceems_tsdb_posting_cache_entries",
                "Posting-cache entries currently resident.",
                cache.len as f64,
            ),
            gauge_value_family(
                "ceems_tsdb_wal_enabled",
                "1 when a WAL is attached, else 0.",
                if db.wal_enabled() { 1.0 } else { 0.0 },
            ),
            counter_value_family(
                "ceems_tsdb_wal_errors_total",
                "WAL write failures (ingest kept serving; durability degraded).",
                db.wal_errors() as f64,
            ),
            counter_value_family(
                "ceems_tsdb_wal_records_total",
                "Records written to the local WAL.",
                wal_records as f64,
            ),
            counter_value_family(
                "ceems_tsdb_wal_fsync_total",
                "fsync calls issued by the WAL writer.",
                wal_syncs as f64,
            ),
            counter_value_family(
                "ceems_tsdb_wal_fsync_seconds_total",
                "Cumulative seconds spent in WAL fsync calls.",
                wal_sync_secs,
            ),
            histogram_family(
                "ceems_tsdb_ingest_duration_seconds",
                "append_batch wall time (one group commit per scrape batch).",
                &ins.ingest_seconds,
            ),
            histogram_family(
                "ceems_tsdb_select_duration_seconds",
                "Two-phase select wall time (resolve + materialize).",
                &ins.select_seconds,
            ),
            histogram_family(
                "ceems_tsdb_select_resolve_duration_seconds",
                "Select phase-1 resolve wall time (index lock + posting cache).",
                &ins.select_resolve_seconds,
            ),
            histogram_family(
                "ceems_tsdb_wal_append_duration_seconds",
                "One WAL group commit (encode + write + fsync policy).",
                &ins.wal_append_seconds,
            ),
            histogram_family(
                "ceems_tsdb_checkpoint_duration_seconds",
                "Stop-the-world checkpoint wall time.",
                &ins.checkpoint_seconds,
            ),
        ]
    }
}

/// Builds the default TSDB metrics registry: the [`TsdbCollector`] alone.
/// Callers (the stack, tests) register extra collectors — rule-evaluation
/// histograms, HTTP request instruments — into the same registry before
/// serving it at `/metrics`.
pub fn default_registry(db: Arc<Tsdb>) -> Registry {
    let registry = Registry::new();
    registry.register("tsdb", Arc::new(TsdbCollector::new(db)));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::LabelMatcher;
    use ceems_metrics::{encode_families, parse_text};

    #[test]
    fn collector_families_parse_and_track_activity() {
        let db = Arc::new(Tsdb::default());
        let batch: Vec<_> = (0..40)
            .map(|i| (labels! {"__name__" => "m", "i" => format!("{i}")}, 0i64, 1.0))
            .collect();
        db.append_batch(&batch);
        db.select(&[LabelMatcher::eq("__name__", "m")], 0, i64::MAX);

        let registry = default_registry(db.clone());
        let text = encode_families(&registry.gather());
        let parsed = parse_text(&text).expect("self-exposition must parse");
        let get = |n: &str| parsed.samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("ceems_tsdb_head_series"), Some(40.0));
        assert_eq!(get("ceems_tsdb_samples_appended_total"), Some(40.0));
        assert_eq!(get("ceems_tsdb_ingest_duration_seconds_count"), Some(1.0));
        assert_eq!(get("ceems_tsdb_select_duration_seconds_count"), Some(1.0));
        assert_eq!(get("ceems_tsdb_wal_enabled"), Some(0.0));
    }
}
