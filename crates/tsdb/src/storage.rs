//! The TSDB facade: append, select, delete, retention.
//!
//! The read path is two-phase. **Resolve** runs under the index read lock
//! just long enough to turn matchers into `(SeriesId, Arc<LabelSet>)` pairs
//! (consulting the generation-checked posting cache for scan-heavy matcher
//! shapes). **Materialize** then reads chunk data without any index lock,
//! fanning out over [`TsdbConfig::query_threads`] scoped workers grouped by
//! head stripe so parallel readers never contend on the same shard mutex.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;

use crate::cache::{cache_key, CacheStats, ShardedPostingCache};
use crate::head::Head;
use crate::index::LabelIndex;
use crate::types::{Sample, SeriesData, SeriesId};

/// Below this many resolved series the thread fan-out costs more than it
/// saves; materialization stays on the calling thread.
const PARALLEL_SELECT_MIN: usize = 32;

thread_local! {
    /// Set on threads that are themselves one arm of a query fan-out (rule
    /// evaluation workers). Selects issued from such a thread materialize
    /// serially, so one rule-group tick never multiplies into
    /// `query_threads²` transient threads.
    static NESTED_QUERY_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a nested query worker for its lifetime
/// (called at the top of scoped fan-out workers, which exit with the scope).
pub(crate) fn mark_nested_query_worker() {
    NESTED_QUERY_WORKER.with(|f| f.set(true));
}

fn is_nested_query_worker() -> bool {
    NESTED_QUERY_WORKER.with(|f| f.get())
}

/// TSDB configuration.
#[derive(Clone, Debug)]
pub struct TsdbConfig {
    /// Lock stripes for the head.
    pub shards: usize,
    /// Retention window in ms (samples older than `now - retention` are
    /// dropped by [`Tsdb::enforce_retention`]).
    pub retention_ms: i64,
    /// Worker threads for select materialization. `1` keeps the whole read
    /// path on the calling thread and reproduces serial output exactly.
    pub query_threads: usize,
    /// Capacity of the matcher-result posting cache (entries). `0` disables
    /// caching entirely.
    pub posting_cache_size: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            shards: 16,
            retention_ms: 30 * 24 * 3_600_000,
            query_threads: 4,
            posting_cache_size: 128,
        }
    }
}

/// Generation-invalidated cache of label-introspection results, so hot
/// dashboard endpoints (`/api/v1/labels`, `/api/v1/label/:name/values`)
/// stop re-collecting the whole posting key space per request.
#[derive(Debug, Default)]
struct LabelsCache {
    generation: u64,
    names: Option<Arc<Vec<String>>>,
    values: HashMap<String, Arc<Vec<String>>>,
}

impl LabelsCache {
    /// Drops cached results when the index generation moved.
    fn sync(&mut self, generation: u64) {
        if self.generation != generation {
            self.names = None;
            self.values.clear();
            self.generation = generation;
        }
    }
}

/// The time series database.
pub struct Tsdb {
    index: RwLock<LabelIndex>,
    head: Head,
    config: TsdbConfig,
    posting_cache: ShardedPostingCache,
    labels_cache: RwLock<LabelsCache>,
    appended: AtomicU64,
    out_of_order: AtomicU64,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// Creates an empty TSDB.
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            index: RwLock::new(LabelIndex::new()),
            head: Head::new(config.shards),
            posting_cache: ShardedPostingCache::new(config.posting_cache_size),
            labels_cache: RwLock::new(LabelsCache::default()),
            config,
            appended: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
        }
    }

    /// Appends one sample for a label set (the set must include
    /// `__name__`). Out-of-order samples are counted and dropped.
    pub fn append(&self, labels: &LabelSet, t_ms: i64, v: f64) {
        // Hash the label set once; both the read-path lookup and the
        // slow-path create reuse the fingerprint.
        let fp = labels.fingerprint();
        let id = {
            // Fast path: read lock for existing series.
            let idx = self.index.read();
            idx.lookup_with_fingerprint(labels, fp)
        };
        let id = match id {
            Some(id) => id,
            None => self
                .index
                .write()
                .get_or_create_with_fingerprint(labels, fp),
        };
        match self.head.append(id, Sample::new(t_ms, v)) {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.out_of_order.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Phase 1 of the read path: matchers → `(id, labels)` pairs, holding
    /// the index read lock only for id resolution. Label sets are `Arc`
    /// clones of the registry's, never deep copies.
    fn resolve(&self, matchers: &[LabelMatcher]) -> Vec<(SeriesId, Arc<LabelSet>)> {
        let idx = self.index.read();
        let ids: Arc<Vec<SeriesId>> = match cache_key(matchers) {
            Some(key) if self.config.posting_cache_size > 0 => {
                // The generation is read under the same index read lock the
                // ids are resolved under, so a cached entry is exactly the
                // resolution the live index would produce.
                let generation = idx.generation();
                match self.posting_cache.get(&key, generation) {
                    Some(ids) => ids,
                    None => {
                        let ids = Arc::new(idx.select(matchers));
                        self.posting_cache.insert(key, generation, Arc::clone(&ids));
                        ids
                    }
                }
            }
            _ => Arc::new(idx.select(matchers)),
        };
        ids.iter()
            .filter_map(|&id| idx.labels(id).map(|l| (id, Arc::clone(l))))
            .collect()
    }

    /// Phase 2 of the read path: chunk reads, lock-free with respect to the
    /// index. Output order and contents are identical for the serial and
    /// parallel paths — results land in per-position slots.
    fn materialize(
        &self,
        resolved: Vec<(SeriesId, Arc<LabelSet>)>,
        tmin: i64,
        tmax: i64,
    ) -> Vec<SeriesData> {
        if self.config.query_threads <= 1
            || resolved.len() < PARALLEL_SELECT_MIN
            || is_nested_query_worker()
        {
            return resolved
                .into_iter()
                .filter_map(|(id, labels)| {
                    let samples = self.head.read(id, tmin, tmax);
                    (!samples.is_empty()).then_some(SeriesData { labels, samples })
                })
                .collect();
        }

        // Group result positions by head stripe: each worker drains whole
        // stripes under one lock acquisition apiece, and no two workers
        // ever touch the same shard mutex.
        let mut by_shard: Vec<(Vec<SeriesId>, Vec<usize>)> = (0..self.head.shard_count())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (pos, (id, _)) in resolved.iter().enumerate() {
            let s = self.head.shard_of(*id);
            by_shard[s].0.push(*id);
            by_shard[s].1.push(pos);
        }
        let stripes: Vec<(Vec<SeriesId>, Vec<usize>)> = by_shard
            .into_iter()
            .filter(|(ids, _)| !ids.is_empty())
            .collect();
        let workers = self.config.query_threads.min(stripes.len()).max(1);

        let mut slots: Vec<Option<Vec<Sample>>> = (0..resolved.len()).map(|_| None).collect();
        let filled: Vec<(usize, Vec<Sample>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    // Round-robin stripes over workers.
                    let mine: Vec<&(Vec<SeriesId>, Vec<usize>)> =
                        stripes.iter().skip(w).step_by(workers).collect();
                    let head = &self.head;
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for (ids, positions) in mine {
                            let shard = head.shard_of(ids[0]);
                            let read = head.read_shard(shard, ids, tmin, tmax);
                            out.extend(positions.iter().copied().zip(read));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("select worker panicked"))
                .collect()
        })
        .expect("select scope");
        for (pos, samples) in filled {
            slots[pos] = Some(samples);
        }

        resolved
            .into_iter()
            .zip(slots)
            .filter_map(|((_, labels), samples)| {
                let samples = samples.unwrap_or_default();
                (!samples.is_empty()).then_some(SeriesData { labels, samples })
            })
            .collect()
    }

    /// Selects series matching `matchers` with samples in `[tmin, tmax]`.
    /// Series with no samples in range are omitted.
    pub fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        let resolved = self.resolve(matchers);
        self.materialize(resolved, tmin, tmax)
    }

    /// Latest sample per matching series (used by instant queries without a
    /// lookback window and by dashboards).
    pub fn select_latest(&self, matchers: &[LabelMatcher]) -> Vec<(Arc<LabelSet>, Sample)> {
        self.resolve(matchers)
            .into_iter()
            .filter_map(|(id, labels)| self.head.last_sample(id).map(|s| (labels, s)))
            .collect()
    }

    /// Deletes matching series outright (the §II.C cardinality cleanup:
    /// CEEMS removes metrics of workloads shorter than a cutoff).
    /// Returns how many series were deleted.
    pub fn delete_series(&self, matchers: &[LabelMatcher]) -> usize {
        let mut idx = self.index.write();
        let ids = idx.select(matchers);
        for &id in &ids {
            self.head.remove(id);
            idx.remove(id);
        }
        ids.len()
    }

    /// Drops data older than `now_ms - retention`; unregisters series left
    /// empty. Returns the number of series removed.
    pub fn enforce_retention(&self, now_ms: i64) -> usize {
        let cutoff = now_ms - self.config.retention_ms;
        let emptied = self.head.drop_before(cutoff);
        let mut idx = self.index.write();
        for &id in &emptied {
            idx.remove(id);
        }
        emptied.len()
    }

    /// Live series count (the cardinality the paper worries about).
    pub fn series_count(&self) -> usize {
        self.index.read().series_count()
    }

    /// Total samples successfully appended.
    pub fn samples_appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Out-of-order samples dropped.
    pub fn out_of_order_dropped(&self) -> u64 {
        self.out_of_order.load(Ordering::Relaxed)
    }

    /// All label names, shared from a generation-invalidated cache. The
    /// cached path takes only shared locks, so concurrent introspection
    /// requests never serialize on each other.
    pub fn label_names(&self) -> Arc<Vec<String>> {
        let idx = self.index.read();
        let generation = idx.generation();
        {
            let cache = self.labels_cache.read();
            if cache.generation == generation {
                if let Some(names) = &cache.names {
                    return Arc::clone(names);
                }
            }
        }
        let names = Arc::new(idx.label_names());
        let mut cache = self.labels_cache.write();
        cache.sync(generation);
        cache.names = Some(Arc::clone(&names));
        names
    }

    /// All values of a label, shared from a generation-invalidated cache.
    /// Only names that exist in the index are cached: arbitrary client
    /// queries for bogus label names must not grow the map unboundedly
    /// between generation bumps.
    pub fn label_values(&self, name: &str) -> Arc<Vec<String>> {
        let idx = self.index.read();
        let generation = idx.generation();
        {
            let cache = self.labels_cache.read();
            if cache.generation == generation {
                if let Some(values) = cache.values.get(name) {
                    return Arc::clone(values);
                }
            }
        }
        let values = Arc::new(idx.label_values(name));
        if !values.is_empty() {
            let mut cache = self.labels_cache.write();
            cache.sync(generation);
            cache.values.insert(name.to_string(), Arc::clone(&values));
        }
        values
    }

    /// Number of label-value result sets currently cached (test hook for
    /// the bogus-name bound).
    #[cfg(test)]
    fn cached_label_value_sets(&self) -> usize {
        self.labels_cache.read().values.len()
    }

    /// Posting-cache hit/miss counters (aggregated over shards).
    pub fn posting_cache_stats(&self) -> CacheStats {
        self.posting_cache.stats()
    }

    /// Approximate compressed bytes held in the head.
    pub fn storage_bytes(&self) -> usize {
        self.head.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::MatchOp;

    fn db_with_data() -> Tsdb {
        let db = Tsdb::default();
        for i in 0..100i64 {
            db.append(
                &labels! {"__name__" => "power", "instance" => "n1"},
                i * 1000,
                100.0 + i as f64,
            );
            db.append(
                &labels! {"__name__" => "power", "instance" => "n2"},
                i * 1000,
                200.0,
            );
        }
        db
    }

    #[test]
    fn append_select_roundtrip() {
        let db = db_with_data();
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.samples_appended(), 200);

        let got = db.select(&[LabelMatcher::eq("__name__", "power")], 0, i64::MAX);
        assert_eq!(got.len(), 2);
        let n1 = got
            .iter()
            .find(|s| s.labels.get("instance") == Some("n1"))
            .unwrap();
        assert_eq!(n1.samples.len(), 100);
        assert_eq!(n1.samples[10].v, 110.0);

        let ranged = db.select(&[LabelMatcher::eq("instance", "n1")], 5_000, 9_000);
        assert_eq!(ranged[0].samples.len(), 5);
    }

    #[test]
    fn out_of_order_counted_not_stored() {
        let db = Tsdb::default();
        let ls = labels! {"__name__" => "m"};
        db.append(&ls, 1000, 1.0);
        db.append(&ls, 500, 2.0);
        assert_eq!(db.out_of_order_dropped(), 1);
        assert_eq!(db.samples_appended(), 1);
        let got = db.select(&[LabelMatcher::eq("__name__", "m")], 0, i64::MAX);
        assert_eq!(got[0].samples.len(), 1);
    }

    #[test]
    fn select_latest() {
        let db = db_with_data();
        let latest = db.select_latest(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].1.t_ms, 99_000);
        assert_eq!(latest[0].1.v, 199.0);
    }

    #[test]
    fn delete_series_purges() {
        let db = db_with_data();
        let n = db.delete_series(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(n, 1);
        assert_eq!(db.series_count(), 1);
        assert!(db
            .select(&[LabelMatcher::eq("instance", "n1")], 0, i64::MAX)
            .is_empty());
        // n2 untouched.
        assert_eq!(
            db.select(&[LabelMatcher::eq("instance", "n2")], 0, i64::MAX)[0]
                .samples
                .len(),
            100
        );
    }

    #[test]
    fn retention_enforcement() {
        let db = Tsdb::new(TsdbConfig {
            shards: 4,
            retention_ms: 10_000,
            ..TsdbConfig::default()
        });
        let ls = labels! {"__name__" => "old"};
        for i in 0..500i64 {
            db.append(&ls, i * 100, 0.0); // 0..50s
        }
        // At t=70s with 10s retention, cutoff=60s: all chunks end <=50s.
        let removed = db.enforce_retention(70_000);
        assert_eq!(removed, 1);
        assert_eq!(db.series_count(), 0);
    }

    #[test]
    fn label_introspection() {
        let db = db_with_data();
        assert!(db.label_names().contains(&"instance".to_string()));
        assert_eq!(*db.label_values("instance"), vec!["n1", "n2"]);
        assert!(db.storage_bytes() > 0);
        // Cached results are shared, then invalidated on membership change.
        let before = db.label_values("instance");
        assert!(Arc::ptr_eq(&before, &db.label_values("instance")));
        db.append(&labels! {"__name__" => "power", "instance" => "n3"}, 0, 1.0);
        assert_eq!(*db.label_values("instance"), vec!["n1", "n2", "n3"]);
    }

    #[test]
    fn bogus_label_names_do_not_grow_cache() {
        let db = db_with_data();
        // Warm the cache with a real name.
        assert!(!db.label_values("instance").is_empty());
        assert_eq!(db.cached_label_value_sets(), 1);
        // A client spraying arbitrary names at /api/v1/label/:name/values
        // must not grow memory on a quiescent database.
        for i in 0..1000 {
            assert!(db.label_values(&format!("no_such_label_{i}")).is_empty());
        }
        assert_eq!(db.cached_label_value_sets(), 1);
        // The real name is still served from cache.
        let a = db.label_values("instance");
        assert!(Arc::ptr_eq(&a, &db.label_values("instance")));
    }

    fn wide_db(series: usize) -> Tsdb {
        let db = Tsdb::default();
        for i in 0..series {
            let ls = labels! {"__name__" => "wide", "instance" => format!("n{i:04}")};
            for t in 0..20i64 {
                db.append(&ls, t * 1000, (i as f64) + t as f64);
            }
        }
        db
    }

    #[test]
    fn parallel_select_matches_serial_exactly() {
        let series = 200;
        let serial_db = Tsdb::new(TsdbConfig {
            query_threads: 1,
            ..TsdbConfig::default()
        });
        let parallel_db = Tsdb::new(TsdbConfig {
            query_threads: 8,
            ..TsdbConfig::default()
        });
        for db in [&serial_db, &parallel_db] {
            for i in 0..series {
                let ls = labels! {"__name__" => "wide", "instance" => format!("n{i:04}")};
                for t in 0..20i64 {
                    db.append(&ls, t * 1000, (i as f64) + t as f64);
                }
            }
        }
        let m = [LabelMatcher::eq("__name__", "wide")];
        let serial = serial_db.select(&m, 2_000, 15_000);
        let parallel = parallel_db.select(&m, 2_000, 15_000);
        assert_eq!(serial.len(), series);
        assert_eq!(serial, parallel, "parallel select must be bit-for-bit serial");
    }

    #[test]
    fn nested_query_worker_selects_serially_with_identical_results() {
        let db = wide_db(100);
        let m = [LabelMatcher::eq("__name__", "wide")];
        let parallel = db.select(&m, 0, i64::MAX);
        let nested = crossbeam::thread::scope(|scope| {
            scope
                .spawn(|_| {
                    super::mark_nested_query_worker();
                    db.select(&m, 0, i64::MAX)
                })
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(parallel, nested);
    }

    #[test]
    fn parallel_select_skips_series_out_of_range() {
        let db = wide_db(100);
        // Append one series whose samples all fall outside the queried range.
        db.append(&labels! {"__name__" => "wide", "instance" => "late"}, 900_000, 1.0);
        let got = db.select(&[LabelMatcher::eq("__name__", "wide")], 0, 19_000);
        assert_eq!(got.len(), 100);
        assert!(got.iter().all(|s| s.labels.get("instance") != Some("late")));
    }

    #[test]
    fn posting_cache_serves_and_invalidates() {
        let db = wide_db(50);
        let re = LabelMatcher::new("instance", MatchOp::Re, "n00.*").unwrap();
        let m = [LabelMatcher::eq("__name__", "wide"), re];

        let first = db.select(&m, 0, i64::MAX);
        let miss_stats = db.posting_cache_stats();
        assert_eq!(miss_stats.hits, 0);
        assert!(miss_stats.misses >= 1);

        let second = db.select(&m, 0, i64::MAX);
        assert_eq!(first, second);
        assert!(db.posting_cache_stats().hits >= 1, "repeat query must hit");

        // A new series matching the selector must appear despite the cache.
        let ls = labels! {"__name__" => "wide", "instance" => "n0099"};
        db.append(&ls, 0, 7.0);
        let third = db.select(&m, 0, i64::MAX);
        assert_eq!(third.len(), first.len() + 1);

        // Deletion must propagate too.
        db.delete_series(&[LabelMatcher::eq("instance", "n0001")]);
        let fourth = db.select(&m, 0, i64::MAX);
        assert_eq!(fourth.len(), first.len());
        assert!(fourth.iter().all(|s| s.labels.get("instance") != Some("n0001")));
    }

    #[test]
    fn exact_selectors_bypass_posting_cache() {
        let db = wide_db(10);
        db.select(&[LabelMatcher::eq("__name__", "wide")], 0, i64::MAX);
        db.select(&[LabelMatcher::eq("__name__", "wide")], 0, i64::MAX);
        let stats = db.posting_cache_stats();
        assert_eq!(stats.hits + stats.misses, 0, "exact-only sets never touch the cache");
    }

    #[test]
    fn zero_cache_size_disables_posting_cache() {
        let db = Tsdb::new(TsdbConfig {
            posting_cache_size: 0,
            ..TsdbConfig::default()
        });
        db.append(&labels! {"__name__" => "m", "x" => "1"}, 0, 1.0);
        let re = LabelMatcher::new("x", MatchOp::Re, ".+").unwrap();
        db.select(&[re.clone()], 0, i64::MAX);
        db.select(&[re], 0, i64::MAX);
        assert_eq!(db.posting_cache_stats().hits, 0);
    }
}
