//! The TSDB facade: append, select, delete, retention.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;

use crate::head::Head;
use crate::index::LabelIndex;
use crate::types::{Sample, SeriesData};

/// TSDB configuration.
#[derive(Clone, Debug)]
pub struct TsdbConfig {
    /// Lock stripes for the head.
    pub shards: usize,
    /// Retention window in ms (samples older than `now - retention` are
    /// dropped by [`Tsdb::enforce_retention`]).
    pub retention_ms: i64,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            shards: 16,
            retention_ms: 30 * 24 * 3_600_000,
        }
    }
}

/// The time series database.
pub struct Tsdb {
    index: RwLock<LabelIndex>,
    head: Head,
    config: TsdbConfig,
    appended: AtomicU64,
    out_of_order: AtomicU64,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// Creates an empty TSDB.
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            index: RwLock::new(LabelIndex::new()),
            head: Head::new(config.shards),
            config,
            appended: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
        }
    }

    /// Appends one sample for a label set (the set must include
    /// `__name__`). Out-of-order samples are counted and dropped.
    pub fn append(&self, labels: &LabelSet, t_ms: i64, v: f64) {
        let id = {
            // Fast path: read lock for existing series.
            let idx = self.index.read();
            idx.lookup(labels)
        };
        let id = match id {
            Some(id) => id,
            None => self.index.write().get_or_create(labels),
        };
        match self.head.append(id, Sample::new(t_ms, v)) {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.out_of_order.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Selects series matching `matchers` with samples in `[tmin, tmax]`.
    /// Series with no samples in range are omitted.
    pub fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        let idx = self.index.read();
        let ids = idx.select(matchers);
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let samples = self.head.read(id, tmin, tmax);
            if samples.is_empty() {
                continue;
            }
            out.push(SeriesData {
                labels: idx.labels(id).expect("selected id has labels").clone(),
                samples,
            });
        }
        out
    }

    /// Latest sample per matching series (used by instant queries without a
    /// lookback window and by dashboards).
    pub fn select_latest(&self, matchers: &[LabelMatcher]) -> Vec<(LabelSet, Sample)> {
        let idx = self.index.read();
        idx.select(matchers)
            .into_iter()
            .filter_map(|id| {
                self.head
                    .last_sample(id)
                    .map(|s| (idx.labels(id).unwrap().clone(), s))
            })
            .collect()
    }

    /// Deletes matching series outright (the §II.C cardinality cleanup:
    /// CEEMS removes metrics of workloads shorter than a cutoff).
    /// Returns how many series were deleted.
    pub fn delete_series(&self, matchers: &[LabelMatcher]) -> usize {
        let mut idx = self.index.write();
        let ids = idx.select(matchers);
        for &id in &ids {
            self.head.remove(id);
            idx.remove(id);
        }
        ids.len()
    }

    /// Drops data older than `now_ms - retention`; unregisters series left
    /// empty. Returns the number of series removed.
    pub fn enforce_retention(&self, now_ms: i64) -> usize {
        let cutoff = now_ms - self.config.retention_ms;
        let emptied = self.head.drop_before(cutoff);
        let mut idx = self.index.write();
        for &id in &emptied {
            idx.remove(id);
        }
        emptied.len()
    }

    /// Live series count (the cardinality the paper worries about).
    pub fn series_count(&self) -> usize {
        self.index.read().series_count()
    }

    /// Total samples successfully appended.
    pub fn samples_appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Out-of-order samples dropped.
    pub fn out_of_order_dropped(&self) -> u64 {
        self.out_of_order.load(Ordering::Relaxed)
    }

    /// All label names.
    pub fn label_names(&self) -> Vec<String> {
        self.index.read().label_names()
    }

    /// All values of a label.
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.index.read().label_values(name)
    }

    /// Approximate compressed bytes held in the head.
    pub fn storage_bytes(&self) -> usize {
        self.head.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn db_with_data() -> Tsdb {
        let db = Tsdb::default();
        for i in 0..100i64 {
            db.append(
                &labels! {"__name__" => "power", "instance" => "n1"},
                i * 1000,
                100.0 + i as f64,
            );
            db.append(
                &labels! {"__name__" => "power", "instance" => "n2"},
                i * 1000,
                200.0,
            );
        }
        db
    }

    #[test]
    fn append_select_roundtrip() {
        let db = db_with_data();
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.samples_appended(), 200);

        let got = db.select(&[LabelMatcher::eq("__name__", "power")], 0, i64::MAX);
        assert_eq!(got.len(), 2);
        let n1 = got
            .iter()
            .find(|s| s.labels.get("instance") == Some("n1"))
            .unwrap();
        assert_eq!(n1.samples.len(), 100);
        assert_eq!(n1.samples[10].v, 110.0);

        let ranged = db.select(&[LabelMatcher::eq("instance", "n1")], 5_000, 9_000);
        assert_eq!(ranged[0].samples.len(), 5);
    }

    #[test]
    fn out_of_order_counted_not_stored() {
        let db = Tsdb::default();
        let ls = labels! {"__name__" => "m"};
        db.append(&ls, 1000, 1.0);
        db.append(&ls, 500, 2.0);
        assert_eq!(db.out_of_order_dropped(), 1);
        assert_eq!(db.samples_appended(), 1);
        let got = db.select(&[LabelMatcher::eq("__name__", "m")], 0, i64::MAX);
        assert_eq!(got[0].samples.len(), 1);
    }

    #[test]
    fn select_latest() {
        let db = db_with_data();
        let latest = db.select_latest(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].1.t_ms, 99_000);
        assert_eq!(latest[0].1.v, 199.0);
    }

    #[test]
    fn delete_series_purges() {
        let db = db_with_data();
        let n = db.delete_series(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(n, 1);
        assert_eq!(db.series_count(), 1);
        assert!(db
            .select(&[LabelMatcher::eq("instance", "n1")], 0, i64::MAX)
            .is_empty());
        // n2 untouched.
        assert_eq!(
            db.select(&[LabelMatcher::eq("instance", "n2")], 0, i64::MAX)[0]
                .samples
                .len(),
            100
        );
    }

    #[test]
    fn retention_enforcement() {
        let db = Tsdb::new(TsdbConfig {
            shards: 4,
            retention_ms: 10_000,
        });
        let ls = labels! {"__name__" => "old"};
        for i in 0..500i64 {
            db.append(&ls, i * 100, 0.0); // 0..50s
        }
        // At t=70s with 10s retention, cutoff=60s: all chunks end <=50s.
        let removed = db.enforce_retention(70_000);
        assert_eq!(removed, 1);
        assert_eq!(db.series_count(), 0);
    }

    #[test]
    fn label_introspection() {
        let db = db_with_data();
        assert!(db.label_names().contains(&"instance".to_string()));
        assert_eq!(db.label_values("instance"), vec!["n1", "n2"]);
        assert!(db.storage_bytes() > 0);
    }
}
