//! The TSDB facade: append, select, delete, retention.
//!
//! The read path is two-phase. **Resolve** runs under the index read lock
//! just long enough to turn matchers into `(SeriesId, Arc<LabelSet>)` pairs
//! (consulting the generation-checked posting cache for scan-heavy matcher
//! shapes). **Materialize** then reads chunk data without any index lock,
//! fanning out over [`TsdbConfig::query_threads`] scoped workers grouped by
//! head stripe so parallel readers never contend on the same shard mutex.

use std::cell::Cell;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;
use ceems_metrics::Histogram;
use ceems_obs::trace;

use crate::cache::{cache_key, CacheStats, ShardedPostingCache};
use crate::head::Head;
use crate::index::LabelIndex;
use crate::types::{Sample, SeriesData, SeriesId};
use crate::wal::{self, Checkpoint, EpochSpan, Wal, WalOptions, WalPosition, WalRecord};

/// Below this many resolved series the thread fan-out costs more than it
/// saves; materialization stays on the calling thread.
const PARALLEL_SELECT_MIN: usize = 32;

thread_local! {
    /// Set on threads that are themselves one arm of a query fan-out (rule
    /// evaluation workers). Selects issued from such a thread materialize
    /// serially, so one rule-group tick never multiplies into
    /// `query_threads²` transient threads.
    static NESTED_QUERY_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a nested query worker for its lifetime
/// (called at the top of scoped fan-out workers, which exit with the scope).
pub(crate) fn mark_nested_query_worker() {
    NESTED_QUERY_WORKER.with(|f| f.set(true));
}

pub(crate) fn is_nested_query_worker() -> bool {
    NESTED_QUERY_WORKER.with(|f| f.get())
}

/// TSDB configuration.
#[derive(Clone, Debug)]
pub struct TsdbConfig {
    /// Lock stripes for the head.
    pub shards: usize,
    /// Retention window in ms (samples older than `now - retention` are
    /// dropped by [`Tsdb::enforce_retention`]).
    pub retention_ms: i64,
    /// Worker threads for select materialization. `1` keeps the whole read
    /// path on the calling thread and reproduces serial output exactly.
    pub query_threads: usize,
    /// Capacity of the matcher-result posting cache (entries). `0` disables
    /// caching entirely.
    pub posting_cache_size: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            shards: 16,
            retention_ms: 30 * 24 * 3_600_000,
            query_threads: 4,
            posting_cache_size: 128,
        }
    }
}

/// Generation-invalidated cache of label-introspection results, so hot
/// dashboard endpoints (`/api/v1/labels`, `/api/v1/label/:name/values`)
/// stop re-collecting the whole posting key space per request.
#[derive(Debug, Default)]
struct LabelsCache {
    generation: u64,
    names: Option<Arc<Vec<String>>>,
    values: HashMap<String, Arc<Vec<String>>>,
}

impl LabelsCache {
    /// Drops cached results when the index generation moved.
    fn sync(&mut self, generation: u64) {
        if self.generation != generation {
            self.names = None;
            self.values.clear();
            self.generation = generation;
        }
    }
}

/// Latency instruments for the storage hot paths. Always present and
/// lock-free to record; a `/metrics` registry renders them via
/// [`crate::selfmon::TsdbCollector`]. Observation sites are chosen so the
/// per-sample ingest path pays nothing: ingest is timed per *batch* (one
/// observation per scrape pass), selects per call.
#[derive(Clone)]
pub struct TsdbInstruments {
    /// `append_batch` wall time (one group commit: WAL log + head apply).
    pub ingest_seconds: Histogram,
    /// Whole two-phase select wall time (resolve + materialize).
    pub select_seconds: Histogram,
    /// Phase-1 resolve wall time (index lock + posting cache).
    pub select_resolve_seconds: Histogram,
    /// One WAL group commit (`Wal::log`: encode + write + fsync policy).
    pub wal_append_seconds: Histogram,
    /// Stop-the-world checkpoint wall time.
    pub checkpoint_seconds: Histogram,
}

impl Default for TsdbInstruments {
    fn default() -> Self {
        TsdbInstruments {
            ingest_seconds: Histogram::new(Histogram::duration_buckets()),
            select_seconds: Histogram::new(Histogram::duration_buckets()),
            select_resolve_seconds: Histogram::new(Histogram::duration_buckets()),
            wal_append_seconds: Histogram::new(Histogram::duration_buckets()),
            checkpoint_seconds: Histogram::new(Histogram::duration_buckets()),
        }
    }
}

/// WAL attachment of a durable TSDB: the writer, its directory, and the
/// checkpoint gate.
struct WalState {
    dir: PathBuf,
    /// The segmented writer. One [`Wal::log`] call under this lock is one
    /// group commit.
    wal: Mutex<Wal>,
    /// Appenders hold `read` across (log record → apply to head) so the
    /// checkpointer, holding `write`, can never snapshot a state where a
    /// record is logged but not yet applied (or vice versa).
    gate: RwLock<()>,
    /// WAL write failures (the database keeps serving; durability is
    /// degraded and the counter surfaces it).
    errors: AtomicU64,
}

/// Leadership-epoch state (S24): the current epoch plus the history of
/// `(epoch, start_records)` spans, durable via `EpochBump` WAL records and
/// checkpoint fields.
#[derive(Debug, Clone)]
struct EpochState {
    epoch: u64,
    history: Vec<EpochSpan>,
}

impl Default for EpochState {
    fn default() -> Self {
        EpochState {
            epoch: 0,
            history: vec![EpochSpan { epoch: 0, start_records: 0 }],
        }
    }
}

/// An append was rejected because it carried a stale leadership epoch —
/// the writer was fenced by a newer leader's durable epoch bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleEpoch {
    /// The epoch the write carried.
    pub write_epoch: u64,
    /// The database's current epoch.
    pub current_epoch: u64,
}

impl std::fmt::Display for StaleEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale-epoch: write at epoch {} fenced by epoch {}",
            self.write_epoch, self.current_epoch
        )
    }
}

/// The time series database.
pub struct Tsdb {
    index: RwLock<LabelIndex>,
    head: Head,
    config: TsdbConfig,
    posting_cache: ShardedPostingCache,
    labels_cache: RwLock<LabelsCache>,
    appended: AtomicU64,
    out_of_order: AtomicU64,
    /// Durability attachment; `None` for the in-memory-only database.
    wal: Option<WalState>,
    /// A follower's view of the leader position it has applied up to;
    /// reported to the LB in place of the local WAL position.
    upstream_pos: Mutex<Option<WalPosition>>,
    /// Leadership epoch + history (S24).
    epoch_state: Mutex<EpochState>,
    /// Whether this node currently serves writes. A standalone database is
    /// its own leader; the failover coordinator flips this on promotion and
    /// demotion.
    leader: std::sync::atomic::AtomicBool,
    /// Appends rejected for carrying a stale epoch.
    fenced_writes: AtomicU64,
    instruments: TsdbInstruments,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// Creates an empty in-memory TSDB (no WAL).
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            index: RwLock::new(LabelIndex::new()),
            head: Head::new(config.shards),
            posting_cache: ShardedPostingCache::new(config.posting_cache_size),
            labels_cache: RwLock::new(LabelsCache::default()),
            config,
            appended: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
            wal: None,
            upstream_pos: Mutex::new(None),
            epoch_state: Mutex::new(EpochState::default()),
            leader: std::sync::atomic::AtomicBool::new(true),
            fenced_writes: AtomicU64::new(0),
            instruments: TsdbInstruments::default(),
        }
    }

    /// The storage latency instruments (shared handles; clone freely).
    pub fn instruments(&self) -> &TsdbInstruments {
        &self.instruments
    }

    /// Opens (or creates) a durable TSDB backed by a WAL directory.
    ///
    /// Recovery loads the newest valid checkpoint, replays every segment at
    /// or after the sequence it covers, truncates a torn tail if the last
    /// write was interrupted, and attaches the writer at the replay end —
    /// head, index (including ids, generation, and tombstone effects), and
    /// counters come back exactly as they were.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions, config: TsdbConfig) -> io::Result<Tsdb> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut db = Tsdb::new(config);

        let mut start_seq = 0u64;
        let mut records = 0u64;
        if let Some(ckpt) = wal::load_latest_checkpoint(dir)? {
            start_seq = ckpt.covers_seq;
            records = ckpt.records;
            let mut idx = db.index.write();
            for (id, labels, samples) in &ckpt.series {
                idx.insert_replayed(*id, labels);
                for s in samples {
                    let _ = db.head.append(*id, *s);
                }
            }
            idx.set_next_id(ckpt.next_id);
            idx.set_generation(ckpt.generation);
            drop(idx);
            db.appended.store(ckpt.appended, Ordering::Relaxed);
            db.out_of_order.store(ckpt.out_of_order, Ordering::Relaxed);
            let mut es = db.epoch_state.lock();
            es.epoch = ckpt.epoch;
            if !ckpt.epoch_history.is_empty() {
                es.history = ckpt.epoch_history.clone();
            }
        }

        // Replay tail segments. A torn frame stops replay: the segment is
        // truncated to its valid prefix and anything after it discarded, so
        // the writer resumes on a clean frame boundary.
        let segments = wal::list_segments(dir)?;
        let mut end = (start_seq, 0u64);
        let mut torn: Option<u64> = None;
        for (seq, path) in &segments {
            if *seq < start_seq {
                continue;
            }
            let data = fs::read(path)?;
            let (recs, consumed) = wal::decode_frames(&data);
            for (i, rec) in recs.iter().enumerate() {
                // Epoch bumps replay with their exact log position so the
                // restored history matches what the leader wrote.
                if let WalRecord::EpochBump { epoch } = rec {
                    db.observe_epoch(*epoch, records + i as u64);
                } else {
                    db.apply_record(rec);
                }
            }
            records += recs.len() as u64;
            end = (*seq, consumed as u64);
            if consumed < data.len() {
                torn = Some(*seq);
                break;
            }
        }
        if let Some(torn_seq) = torn {
            for (seq, path) in &segments {
                if *seq > torn_seq {
                    fs::remove_file(path)?;
                }
            }
        }

        let writer = Wal::open_at(dir, opts, end.0, end.1, records)?;
        db.wal = Some(WalState {
            dir: dir.to_path_buf(),
            wal: Mutex::new(writer),
            gate: RwLock::new(()),
            errors: AtomicU64::new(0),
        });
        Ok(db)
    }

    /// Holds appenders and the checkpointer apart; `None` when no WAL is
    /// attached (nothing to coordinate with).
    fn wal_gate_read(&self) -> Option<RwLockReadGuard<'_, ()>> {
        self.wal.as_ref().map(|w| w.gate.read())
    }

    /// Exclusive gate hold: used by structural mutations (delete, retention)
    /// and the checkpointer so no append is mid-flight while they run —
    /// WAL log order then equals head apply order exactly.
    fn wal_gate_write(&self) -> Option<parking_lot::RwLockWriteGuard<'_, ()>> {
        self.wal.as_ref().map(|w| w.gate.write())
    }

    /// Logs records to the WAL if one is attached. Write errors are counted
    /// and swallowed: ingest availability beats durability here, and the
    /// error counter lets operators alarm on it.
    fn log_wal(&self, recs: &[WalRecord]) {
        if let Some(ws) = &self.wal {
            let start = Instant::now();
            if ws.wal.lock().log(recs).is_err() {
                ws.errors.fetch_add(1, Ordering::Relaxed);
            }
            self.instruments
                .wal_append_seconds
                .observe(start.elapsed().as_secs_f64());
        }
    }

    /// Resolves a label set to its series id, creating (and WAL-logging the
    /// creation of) the series on first sight. The create record is logged
    /// *inside* the index write-lock critical section so no concurrent
    /// appender can log samples for an id before its create record.
    fn resolve_or_create_id(&self, labels: &LabelSet) -> SeriesId {
        // Hash the label set once; both the read-path lookup and the
        // slow-path create reuse the fingerprint.
        let fp = labels.fingerprint();
        if let Some(id) = self.index.read().lookup_with_fingerprint(labels, fp) {
            return id;
        }
        let mut idx = self.index.write();
        if let Some(id) = idx.lookup_with_fingerprint(labels, fp) {
            return id; // lost the create race; the winner logged it
        }
        let id = idx.get_or_create_with_fingerprint(labels, fp);
        self.log_wal(&[WalRecord::SeriesCreate {
            id,
            labels: labels.clone(),
        }]);
        id
    }

    /// Applies resolved samples to the head, maintaining the counters.
    fn apply_samples(&self, samples: &[(SeriesId, i64, f64)]) {
        for &(id, t_ms, v) in samples {
            match self.head.append(id, Sample::new(t_ms, v)) {
                Ok(()) => {
                    self.appended.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.out_of_order.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Appends one sample for a label set (the set must include
    /// `__name__`). Out-of-order samples are counted and dropped.
    pub fn append(&self, labels: &LabelSet, t_ms: i64, v: f64) {
        let _gate = self.wal_gate_read();
        let id = self.resolve_or_create_id(labels);
        if self.wal.is_some() {
            self.log_wal(&[WalRecord::Samples(vec![(id, t_ms, v)])]);
        }
        self.apply_samples(&[(id, t_ms, v)]);
    }

    /// Appends a batch of samples as one group commit: every series id is
    /// resolved, then the whole batch becomes a single WAL record — one
    /// writer lock, one `write`, at most one fsync — before being applied
    /// to the head. The scrape path logs one batch per target pass.
    pub fn append_batch(&self, batch: &[(LabelSet, i64, f64)]) {
        if batch.is_empty() {
            return;
        }
        let start = Instant::now();
        let _gate = self.wal_gate_read();
        let samples: Vec<(SeriesId, i64, f64)> = batch
            .iter()
            .map(|(labels, t_ms, v)| (self.resolve_or_create_id(labels), *t_ms, *v))
            .collect();
        let rec = WalRecord::Samples(samples);
        self.log_wal(std::slice::from_ref(&rec));
        let WalRecord::Samples(samples) = rec else {
            unreachable!()
        };
        self.apply_samples(&samples);
        self.instruments
            .ingest_seconds
            .observe(start.elapsed().as_secs_f64());
    }

    /// Appends a batch stamped with the writer's believed leadership epoch
    /// (S24). Rejected — and counted — when the stamp does not match the
    /// database's current epoch, so a deposed leader (or traffic still
    /// routed through one) can never land writes past the fence.
    pub fn append_batch_fenced(
        &self,
        epoch: u64,
        batch: &[(LabelSet, i64, f64)],
    ) -> Result<(), StaleEpoch> {
        let current = self.current_epoch();
        if epoch != current || !self.is_leader() {
            self.fenced_writes.fetch_add(1, Ordering::Relaxed);
            return Err(StaleEpoch {
                write_epoch: epoch,
                current_epoch: current,
            });
        }
        self.append_batch(batch);
        Ok(())
    }

    /// Applies one replayed/streamed record without logging it (recovery).
    fn apply_record(&self, rec: &WalRecord) {
        match rec {
            WalRecord::SeriesCreate { id, labels } => {
                self.index.write().insert_replayed(*id, labels);
            }
            WalRecord::Samples(samples) => self.apply_samples(samples),
            WalRecord::Tombstone(ids) => {
                let mut idx = self.index.write();
                for &id in ids {
                    self.head.remove(id);
                    idx.remove(id);
                }
            }
            WalRecord::Retention { cutoff_ms } => {
                let emptied = self.head.drop_before(*cutoff_ms);
                let mut idx = self.index.write();
                for &id in &emptied {
                    idx.remove(id);
                }
            }
            WalRecord::EpochBump { epoch } => {
                // Streamed from a leader: adopt the epoch at the position
                // this follower has applied up to (leader record units).
                let at = self.reported_wal_position().records;
                self.observe_epoch(*epoch, at);
            }
        }
    }

    /// Applies records streamed from a leader (replica catch-up). They are
    /// logged to the local WAL first when one is attached, so a follower is
    /// itself durable and can serve further followers.
    pub fn apply_wal_records(&self, recs: &[WalRecord]) {
        if recs.is_empty() {
            return;
        }
        let _gate = self.wal_gate_read();
        // Streamed epoch bumps are pinned to their exact position in leader
        // record units (record `i` of this batch is leader record `base+i`)
        // so a promoted follower's epoch history is byte-accurate for
        // rejoin truncation.
        let base = self.reported_wal_position().records;
        self.log_wal(recs);
        for (i, rec) in recs.iter().enumerate() {
            if let WalRecord::EpochBump { epoch } = rec {
                self.observe_epoch(*epoch, base + i as u64);
            } else {
                self.apply_record(rec);
            }
        }
    }

    /// Phase 1 of the read path: matchers → `(id, labels)` pairs, holding
    /// the index read lock only for id resolution. Label sets are `Arc`
    /// clones of the registry's, never deep copies.
    fn resolve(&self, matchers: &[LabelMatcher]) -> Vec<(SeriesId, Arc<LabelSet>)> {
        let idx = self.index.read();
        let ids: Arc<Vec<SeriesId>> = match cache_key(matchers) {
            Some(key) if self.config.posting_cache_size > 0 => {
                // The generation is read under the same index read lock the
                // ids are resolved under, so a cached entry is exactly the
                // resolution the live index would produce.
                let generation = idx.generation();
                match self.posting_cache.get(&key, generation) {
                    Some(ids) => ids,
                    None => {
                        let ids = Arc::new(idx.select(matchers));
                        self.posting_cache.insert(key, generation, Arc::clone(&ids));
                        ids
                    }
                }
            }
            _ => Arc::new(idx.select(matchers)),
        };
        ids.iter()
            .filter_map(|&id| idx.labels(id).map(|l| (id, Arc::clone(l))))
            .collect()
    }

    /// Phase 2 of the read path: chunk reads, lock-free with respect to the
    /// index. Output order and contents are identical for the serial and
    /// parallel paths — results land in per-position slots.
    fn materialize(
        &self,
        resolved: Vec<(SeriesId, Arc<LabelSet>)>,
        tmin: i64,
        tmax: i64,
    ) -> Vec<SeriesData> {
        if self.config.query_threads <= 1
            || resolved.len() < PARALLEL_SELECT_MIN
            || is_nested_query_worker()
        {
            return resolved
                .into_iter()
                .filter_map(|(id, labels)| {
                    let samples = self.head.read(id, tmin, tmax);
                    (!samples.is_empty()).then_some(SeriesData { labels, samples })
                })
                .collect();
        }

        // Group result positions by head stripe: each worker drains whole
        // stripes under one lock acquisition apiece, and no two workers
        // ever touch the same shard mutex.
        let mut by_shard: Vec<(Vec<SeriesId>, Vec<usize>)> = (0..self.head.shard_count())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        for (pos, (id, _)) in resolved.iter().enumerate() {
            let s = self.head.shard_of(*id);
            by_shard[s].0.push(*id);
            by_shard[s].1.push(pos);
        }
        let stripes: Vec<(Vec<SeriesId>, Vec<usize>)> = by_shard
            .into_iter()
            .filter(|(ids, _)| !ids.is_empty())
            .collect();
        let workers = self.config.query_threads.min(stripes.len()).max(1);

        let mut slots: Vec<Option<Vec<Sample>>> = (0..resolved.len()).map(|_| None).collect();
        let filled: Vec<(usize, Vec<Sample>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    // Round-robin stripes over workers.
                    let mine: Vec<&(Vec<SeriesId>, Vec<usize>)> =
                        stripes.iter().skip(w).step_by(workers).collect();
                    let head = &self.head;
                    scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for (ids, positions) in mine {
                            let shard = head.shard_of(ids[0]);
                            let read = head.read_shard(shard, ids, tmin, tmax);
                            out.extend(positions.iter().copied().zip(read));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("select worker panicked"))
                .collect()
        })
        .expect("select scope");
        for (pos, samples) in filled {
            slots[pos] = Some(samples);
        }

        resolved
            .into_iter()
            .zip(slots)
            .filter_map(|((_, labels), samples)| {
                let samples = samples.unwrap_or_default();
                (!samples.is_empty()).then_some(SeriesData { labels, samples })
            })
            .collect()
    }

    /// Selects series matching `matchers` with samples in `[tmin, tmax]`.
    /// Series with no samples in range are omitted.
    pub fn select(&self, matchers: &[LabelMatcher], tmin: i64, tmax: i64) -> Vec<SeriesData> {
        let t0 = Instant::now();
        let resolved = self.resolve(matchers);
        let t1 = Instant::now();
        let out = self.materialize(resolved, tmin, tmax);
        let t2 = Instant::now();
        self.instruments
            .select_resolve_seconds
            .observe((t1 - t0).as_secs_f64());
        self.instruments.select_seconds.observe((t2 - t0).as_secs_f64());
        if let Some(t) = trace::current() {
            t.add_count("selects", 1);
            t.add_count("series", out.len() as u64);
            t.add_count("samples", out.iter().map(|s| s.samples.len() as u64).sum());
        }
        out
    }

    /// Latest sample per matching series (used by instant queries without a
    /// lookback window and by dashboards).
    pub fn select_latest(&self, matchers: &[LabelMatcher]) -> Vec<(Arc<LabelSet>, Sample)> {
        let out: Vec<(Arc<LabelSet>, Sample)> = self
            .resolve(matchers)
            .into_iter()
            .filter_map(|(id, labels)| self.head.last_sample(id).map(|s| (labels, s)))
            .collect();
        if let Some(t) = trace::current() {
            t.add_count("selects", 1);
            t.add_count("series", out.len() as u64);
            t.add_count("samples", out.len() as u64);
        }
        out
    }

    /// Deletes matching series outright (the §II.C cardinality cleanup:
    /// CEEMS removes metrics of workloads shorter than a cutoff).
    /// Returns how many series were deleted.
    pub fn delete_series(&self, matchers: &[LabelMatcher]) -> usize {
        let _gate = self.wal_gate_write();
        let mut idx = self.index.write();
        let ids = idx.select(matchers);
        if !ids.is_empty() && self.wal.is_some() {
            // Logged under the index write lock: no appender can interleave
            // a create/sample record for these ids before the tombstone.
            self.log_wal(&[WalRecord::Tombstone(ids.clone())]);
        }
        for &id in &ids {
            self.head.remove(id);
            idx.remove(id);
        }
        ids.len()
    }

    /// Drops data older than `now_ms - retention`; unregisters series left
    /// empty. Returns the number of series removed.
    pub fn enforce_retention(&self, now_ms: i64) -> usize {
        let cutoff = now_ms - self.config.retention_ms;
        let _gate = self.wal_gate_write();
        if self.wal.is_some() {
            self.log_wal(&[WalRecord::Retention { cutoff_ms: cutoff }]);
        }
        let emptied = self.head.drop_before(cutoff);
        let mut idx = self.index.write();
        for &id in &emptied {
            idx.remove(id);
        }
        emptied.len()
    }

    /// Live series count (the cardinality the paper worries about).
    pub fn series_count(&self) -> usize {
        self.index.read().series_count()
    }

    /// Total samples successfully appended.
    pub fn samples_appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Out-of-order samples dropped.
    pub fn out_of_order_dropped(&self) -> u64 {
        self.out_of_order.load(Ordering::Relaxed)
    }

    /// All label names, shared from a generation-invalidated cache. The
    /// cached path takes only shared locks, so concurrent introspection
    /// requests never serialize on each other.
    pub fn label_names(&self) -> Arc<Vec<String>> {
        let idx = self.index.read();
        let generation = idx.generation();
        {
            let cache = self.labels_cache.read();
            if cache.generation == generation {
                if let Some(names) = &cache.names {
                    return Arc::clone(names);
                }
            }
        }
        let names = Arc::new(idx.label_names());
        let mut cache = self.labels_cache.write();
        cache.sync(generation);
        cache.names = Some(Arc::clone(&names));
        names
    }

    /// All values of a label, shared from a generation-invalidated cache.
    /// Only names that exist in the index are cached: arbitrary client
    /// queries for bogus label names must not grow the map unboundedly
    /// between generation bumps.
    pub fn label_values(&self, name: &str) -> Arc<Vec<String>> {
        let idx = self.index.read();
        let generation = idx.generation();
        {
            let cache = self.labels_cache.read();
            if cache.generation == generation {
                if let Some(values) = cache.values.get(name) {
                    return Arc::clone(values);
                }
            }
        }
        let values = Arc::new(idx.label_values(name));
        if !values.is_empty() {
            let mut cache = self.labels_cache.write();
            cache.sync(generation);
            cache.values.insert(name.to_string(), Arc::clone(&values));
        }
        values
    }

    /// Number of label-value result sets currently cached (test hook for
    /// the bogus-name bound).
    #[cfg(test)]
    fn cached_label_value_sets(&self) -> usize {
        self.labels_cache.read().values.len()
    }

    /// Posting-cache hit/miss counters (aggregated over shards).
    pub fn posting_cache_stats(&self) -> CacheStats {
        self.posting_cache.stats()
    }

    /// Approximate compressed bytes held in the head.
    pub fn storage_bytes(&self) -> usize {
        self.head.byte_len()
    }

    /// Configured select/eval worker count (the PromQL engine fans range
    /// steps out over the same budget).
    pub fn query_threads(&self) -> usize {
        self.config.query_threads
    }

    // -- Leadership epochs / failover (S24) ---------------------------------

    /// The current leadership epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_state.lock().epoch
    }

    /// The epoch history: each epoch and the monotone record count at which
    /// it began. A rejoining old leader truncates its WAL to the successor
    /// epoch's `start_records` — everything past it was never replicated
    /// (never acknowledged) and is divergent.
    pub fn epoch_history(&self) -> Vec<EpochSpan> {
        self.epoch_state.lock().history.clone()
    }

    /// Whether this node currently serves writes.
    pub fn is_leader(&self) -> bool {
        self.leader.load(Ordering::Relaxed)
    }

    /// Flips the leader flag (failover coordinator only).
    pub fn set_leader(&self, leader: bool) {
        self.leader.store(leader, Ordering::Relaxed);
    }

    /// Appends rejected for carrying a stale epoch.
    pub fn fenced_writes(&self) -> u64 {
        self.fenced_writes.load(Ordering::Relaxed)
    }

    /// Adopts a newer epoch observed in the record stream (replay or
    /// follower catch-up). Older or equal epochs are ignored.
    fn observe_epoch(&self, epoch: u64, start_records: u64) {
        let mut es = self.epoch_state.lock();
        if epoch > es.epoch {
            es.epoch = epoch;
            es.history.push(EpochSpan {
                epoch,
                start_records,
            });
        }
    }

    /// Durably advances the leadership epoch (promotion). The bump record
    /// is logged and fsynced *before* the state flips, so the fence
    /// survives a crash: a rejoining deposed leader always finds the bump
    /// in the successor's history. `start_records` is the replicated
    /// record count the new epoch begins at (the promoted follower's
    /// caught-up position). Errors if `new_epoch` does not advance.
    pub fn bump_epoch(&self, new_epoch: u64, start_records: u64) -> io::Result<u64> {
        let _gate = self.wal_gate_write();
        {
            let es = self.epoch_state.lock();
            if new_epoch <= es.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("epoch must advance: {} -> {new_epoch}", es.epoch),
                ));
            }
        }
        if let Some(ws) = &self.wal {
            let mut w = ws.wal.lock();
            w.log(&[WalRecord::EpochBump { epoch: new_epoch }])?;
            w.sync()?;
        }
        let mut es = self.epoch_state.lock();
        es.epoch = new_epoch;
        es.history.push(EpochSpan {
            epoch: new_epoch,
            start_records,
        });
        Ok(new_epoch)
    }

    /// Maps a monotone record count to this node's on-disk WAL position
    /// (S24 rejoin: a truncated old leader resumes catch-up at the record
    /// count it kept, but the new leader's segment layout differs). `None`
    /// when the count predates the newest checkpoint (segments GC'd — the
    /// rejoiner must re-bootstrap) or lies past the log end.
    pub fn locate_records(&self, target: u64) -> io::Result<Option<WalPosition>> {
        let ws = self
            .wal
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::Unsupported, "no WAL attached"))?;
        let _gate = ws.gate.write();
        let base = wal::load_latest_checkpoint(&ws.dir)?;
        let (mut count, start_seq) = base.map_or((0, 0), |c| (c.records, c.covers_seq));
        if count > target {
            return Ok(None);
        }
        let mut at: Option<(u64, u64)> = None;
        for (seq, path) in wal::list_segments(&ws.dir)? {
            if seq < start_seq {
                continue;
            }
            let data = fs::read(&path)?;
            let mut pos = 0usize;
            loop {
                if count == target {
                    at = Some((seq, pos as u64));
                    break;
                }
                if data.len() - pos < 8 {
                    break;
                }
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                let end = pos + 8 + len as usize;
                if len > (1 << 30) || end > data.len() {
                    break;
                }
                pos = end;
                count += 1;
            }
            if at.is_some() {
                break;
            }
        }
        Ok(at.map(|(seq, offset)| WalPosition {
            seq,
            offset,
            records: target,
        }))
    }

    // -- WAL / durability ---------------------------------------------------

    /// Whether a WAL is attached.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// WAL write failures since open (0 when no WAL).
    pub fn wal_errors(&self) -> u64 {
        self.wal
            .as_ref()
            .map_or(0, |w| w.errors.load(Ordering::Relaxed))
    }

    /// Installs a disk-fault injector on the attached WAL (chaos testing).
    /// No-op when the database runs without a WAL.
    pub fn set_wal_disk_faults(&self, faults: std::sync::Arc<dyn crate::wal::DiskFaults>) {
        if let Some(ws) = &self.wal {
            ws.wal.lock().set_disk_faults(faults);
        }
    }

    /// Fsync telemetry since open: `(calls, cumulative_seconds)`; zeros when
    /// no WAL is attached.
    pub fn wal_sync_stats(&self) -> (u64, f64) {
        match &self.wal {
            Some(ws) => {
                let (calls, ns) = ws.wal.lock().sync_stats();
                (calls, ns as f64 / 1e9)
            }
            None => (0, 0.0),
        }
    }

    /// Drops every live series (tombstoning them in the local WAL when one
    /// is attached), returning how many were dropped. Used by a follower
    /// re-bootstrapping after its catch-up segment was garbage-collected on
    /// the leader: checkpoint bootstrap requires an empty database.
    pub fn clear_for_resync(&self) -> usize {
        let _gate = self.wal_gate_write();
        let mut idx = self.index.write();
        let ids: Vec<SeriesId> = idx.all_series().into_iter().map(|(id, _)| id).collect();
        if ids.is_empty() {
            return 0;
        }
        if self.wal.is_some() {
            self.log_wal(&[WalRecord::Tombstone(ids.clone())]);
        }
        for &id in &ids {
            self.head.remove(id);
            idx.remove(id);
        }
        ids.len()
    }

    /// The local writer's position, if a WAL is attached.
    pub fn wal_position(&self) -> Option<WalPosition> {
        self.wal.as_ref().map(|w| w.wal.lock().position())
    }

    /// Records the leader position this follower has applied up to; from
    /// then on [`Self::reported_wal_position`] reports it instead of the
    /// local writer's position (whose segment layout differs).
    pub fn set_upstream_wal_position(&self, pos: WalPosition) {
        *self.upstream_pos.lock() = Some(pos);
    }

    /// Clears the recorded upstream position: a follower promoted to leader
    /// reports its own WAL position from here on.
    pub fn clear_upstream_wal_position(&self) {
        *self.upstream_pos.lock() = None;
    }

    /// The position health checks compare across replicas: the upstream
    /// position a follower has applied up to, else the local WAL position,
    /// else zeros.
    pub fn reported_wal_position(&self) -> WalPosition {
        if let Some(pos) = *self.upstream_pos.lock() {
            return pos;
        }
        self.wal_position().unwrap_or_default()
    }

    /// Takes a checkpoint: rotates the log, snapshots every live series
    /// plus the index clocks under the gate (no append can be mid-flight),
    /// writes the checkpoint durably, and garbage-collects covered segments
    /// and older checkpoints. Returns the covered sequence number.
    pub fn checkpoint(&self) -> io::Result<u64> {
        let ws = self.wal.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::Unsupported, "checkpoint requires a WAL")
        })?;
        let _timer = self.instruments.checkpoint_seconds.start_timer();
        let _gate = ws.gate.write();
        let (covers_seq, records) = {
            let mut w = ws.wal.lock();
            (w.rotate()?, w.position().records)
        };

        let idx = self.index.read();
        let mut by_id: HashMap<SeriesId, Vec<Sample>> = self.head.snapshot().into_iter().collect();
        // Drive off the index: a registered series with no head store yet
        // still checkpoints (with no samples), and orphan head entries for
        // unregistered ids are skipped — queries can't see either state
        // differently, and the restored index matches exactly.
        let series: Vec<(SeriesId, LabelSet, Vec<Sample>)> = idx
            .all_series()
            .into_iter()
            .map(|(id, labels)| (id, (*labels).clone(), by_id.remove(&id).unwrap_or_default()))
            .collect();
        let (epoch, epoch_history) = {
            let es = self.epoch_state.lock();
            (es.epoch, es.history.clone())
        };
        let ckpt = Checkpoint {
            covers_seq,
            generation: idx.generation(),
            next_id: idx.next_id(),
            appended: self.appended.load(Ordering::Relaxed),
            out_of_order: self.out_of_order.load(Ordering::Relaxed),
            records,
            epoch,
            epoch_history,
            series,
        };
        drop(idx);

        wal::write_checkpoint(&ws.dir, &ckpt)?;
        wal::gc_covered(&ws.dir, covers_seq)?;
        Ok(covers_seq)
    }

    /// On-disk WAL segments as `(seq, bytes)`, oldest first.
    pub fn wal_segments(&self) -> io::Result<Vec<(u64, u64)>> {
        let ws = self
            .wal
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::Unsupported, "no WAL attached"))?;
        let mut out = Vec::new();
        for (seq, path) in wal::list_segments(&ws.dir)? {
            out.push((seq, fs::metadata(&path)?.len()));
        }
        Ok(out)
    }

    /// Reads segment `seq` from byte `offset` for a catching-up follower.
    /// `Ok(None)` means the segment no longer exists (garbage-collected
    /// behind a checkpoint — the follower must re-bootstrap). The bytes may
    /// end mid-frame if the writer is racing; [`wal::decode_frames`]
    /// handles that.
    pub fn read_wal_segment(&self, seq: u64, offset: u64) -> io::Result<Option<Vec<u8>>> {
        let ws = self
            .wal
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::Unsupported, "no WAL attached"))?;
        let path = ws.dir.join(wal::segment_file_name(seq));
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(Some(
            data.get(offset as usize..).map(<[u8]>::to_vec).unwrap_or_default(),
        ))
    }

    /// The newest checkpoint file as raw bytes plus the sequence it covers
    /// (follower bootstrap payload). `Ok(None)` when none was taken yet.
    pub fn wal_checkpoint_bytes(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        let ws = self
            .wal
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::Unsupported, "no WAL attached"))?;
        for (seq, path) in wal::list_checkpoints(&ws.dir)?.into_iter().rev() {
            let bytes = fs::read(&path)?;
            if wal::decode_checkpoint(&bytes).is_some() {
                return Ok(Some((seq, bytes)));
            }
        }
        Ok(None)
    }

    /// Loads a leader's checkpoint into this (empty) database by converting
    /// it into a record stream — a follower bootstrapping this way is
    /// itself durable when it has its own WAL. Returns the position the
    /// checkpoint corresponds to in the leader's log.
    pub fn load_checkpoint_bytes(&self, bytes: &[u8]) -> io::Result<WalPosition> {
        let ckpt = wal::decode_checkpoint(bytes)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt checkpoint"))?;
        if self.series_count() > 0 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "checkpoint bootstrap requires an empty database",
            ));
        }
        for (id, labels, samples) in &ckpt.series {
            let mut recs = vec![WalRecord::SeriesCreate {
                id: *id,
                labels: labels.clone(),
            }];
            for chunk in samples.chunks(wal::BOOTSTRAP_BATCH) {
                recs.push(WalRecord::Samples(
                    chunk.iter().map(|s| (*id, s.t_ms, s.v)).collect(),
                ));
            }
            self.apply_wal_records(&recs);
        }
        {
            let mut es = self.epoch_state.lock();
            if ckpt.epoch > es.epoch {
                es.epoch = ckpt.epoch;
                if !ckpt.epoch_history.is_empty() {
                    es.history = ckpt.epoch_history.clone();
                }
            }
        }
        Ok(WalPosition {
            seq: ckpt.covers_seq,
            offset: 0,
            records: ckpt.records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::MatchOp;

    fn db_with_data() -> Tsdb {
        let db = Tsdb::default();
        for i in 0..100i64 {
            db.append(
                &labels! {"__name__" => "power", "instance" => "n1"},
                i * 1000,
                100.0 + i as f64,
            );
            db.append(
                &labels! {"__name__" => "power", "instance" => "n2"},
                i * 1000,
                200.0,
            );
        }
        db
    }

    #[test]
    fn append_select_roundtrip() {
        let db = db_with_data();
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.samples_appended(), 200);

        let got = db.select(&[LabelMatcher::eq("__name__", "power")], 0, i64::MAX);
        assert_eq!(got.len(), 2);
        let n1 = got
            .iter()
            .find(|s| s.labels.get("instance") == Some("n1"))
            .unwrap();
        assert_eq!(n1.samples.len(), 100);
        assert_eq!(n1.samples[10].v, 110.0);

        let ranged = db.select(&[LabelMatcher::eq("instance", "n1")], 5_000, 9_000);
        assert_eq!(ranged[0].samples.len(), 5);
    }

    #[test]
    fn out_of_order_counted_not_stored() {
        let db = Tsdb::default();
        let ls = labels! {"__name__" => "m"};
        db.append(&ls, 1000, 1.0);
        db.append(&ls, 500, 2.0);
        assert_eq!(db.out_of_order_dropped(), 1);
        assert_eq!(db.samples_appended(), 1);
        let got = db.select(&[LabelMatcher::eq("__name__", "m")], 0, i64::MAX);
        assert_eq!(got[0].samples.len(), 1);
    }

    #[test]
    fn select_latest() {
        let db = db_with_data();
        let latest = db.select_latest(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].1.t_ms, 99_000);
        assert_eq!(latest[0].1.v, 199.0);
    }

    #[test]
    fn delete_series_purges() {
        let db = db_with_data();
        let n = db.delete_series(&[LabelMatcher::eq("instance", "n1")]);
        assert_eq!(n, 1);
        assert_eq!(db.series_count(), 1);
        assert!(db
            .select(&[LabelMatcher::eq("instance", "n1")], 0, i64::MAX)
            .is_empty());
        // n2 untouched.
        assert_eq!(
            db.select(&[LabelMatcher::eq("instance", "n2")], 0, i64::MAX)[0]
                .samples
                .len(),
            100
        );
    }

    #[test]
    fn retention_enforcement() {
        let db = Tsdb::new(TsdbConfig {
            shards: 4,
            retention_ms: 10_000,
            ..TsdbConfig::default()
        });
        let ls = labels! {"__name__" => "old"};
        for i in 0..500i64 {
            db.append(&ls, i * 100, 0.0); // 0..50s
        }
        // At t=70s with 10s retention, cutoff=60s: all chunks end <=50s.
        let removed = db.enforce_retention(70_000);
        assert_eq!(removed, 1);
        assert_eq!(db.series_count(), 0);
    }

    #[test]
    fn label_introspection() {
        let db = db_with_data();
        assert!(db.label_names().contains(&"instance".to_string()));
        assert_eq!(*db.label_values("instance"), vec!["n1", "n2"]);
        assert!(db.storage_bytes() > 0);
        // Cached results are shared, then invalidated on membership change.
        let before = db.label_values("instance");
        assert!(Arc::ptr_eq(&before, &db.label_values("instance")));
        db.append(&labels! {"__name__" => "power", "instance" => "n3"}, 0, 1.0);
        assert_eq!(*db.label_values("instance"), vec!["n1", "n2", "n3"]);
    }

    #[test]
    fn bogus_label_names_do_not_grow_cache() {
        let db = db_with_data();
        // Warm the cache with a real name.
        assert!(!db.label_values("instance").is_empty());
        assert_eq!(db.cached_label_value_sets(), 1);
        // A client spraying arbitrary names at /api/v1/label/:name/values
        // must not grow memory on a quiescent database.
        for i in 0..1000 {
            assert!(db.label_values(&format!("no_such_label_{i}")).is_empty());
        }
        assert_eq!(db.cached_label_value_sets(), 1);
        // The real name is still served from cache.
        let a = db.label_values("instance");
        assert!(Arc::ptr_eq(&a, &db.label_values("instance")));
    }

    fn wide_db(series: usize) -> Tsdb {
        let db = Tsdb::default();
        for i in 0..series {
            let ls = labels! {"__name__" => "wide", "instance" => format!("n{i:04}")};
            for t in 0..20i64 {
                db.append(&ls, t * 1000, (i as f64) + t as f64);
            }
        }
        db
    }

    #[test]
    fn parallel_select_matches_serial_exactly() {
        let series = 200;
        let serial_db = Tsdb::new(TsdbConfig {
            query_threads: 1,
            ..TsdbConfig::default()
        });
        let parallel_db = Tsdb::new(TsdbConfig {
            query_threads: 8,
            ..TsdbConfig::default()
        });
        for db in [&serial_db, &parallel_db] {
            for i in 0..series {
                let ls = labels! {"__name__" => "wide", "instance" => format!("n{i:04}")};
                for t in 0..20i64 {
                    db.append(&ls, t * 1000, (i as f64) + t as f64);
                }
            }
        }
        let m = [LabelMatcher::eq("__name__", "wide")];
        let serial = serial_db.select(&m, 2_000, 15_000);
        let parallel = parallel_db.select(&m, 2_000, 15_000);
        assert_eq!(serial.len(), series);
        assert_eq!(serial, parallel, "parallel select must be bit-for-bit serial");
    }

    #[test]
    fn nested_query_worker_selects_serially_with_identical_results() {
        let db = wide_db(100);
        let m = [LabelMatcher::eq("__name__", "wide")];
        let parallel = db.select(&m, 0, i64::MAX);
        let nested = crossbeam::thread::scope(|scope| {
            scope
                .spawn(|_| {
                    super::mark_nested_query_worker();
                    db.select(&m, 0, i64::MAX)
                })
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(parallel, nested);
    }

    #[test]
    fn parallel_select_skips_series_out_of_range() {
        let db = wide_db(100);
        // Append one series whose samples all fall outside the queried range.
        db.append(&labels! {"__name__" => "wide", "instance" => "late"}, 900_000, 1.0);
        let got = db.select(&[LabelMatcher::eq("__name__", "wide")], 0, 19_000);
        assert_eq!(got.len(), 100);
        assert!(got.iter().all(|s| s.labels.get("instance") != Some("late")));
    }

    #[test]
    fn posting_cache_serves_and_invalidates() {
        let db = wide_db(50);
        let re = LabelMatcher::new("instance", MatchOp::Re, "n00.*").unwrap();
        let m = [LabelMatcher::eq("__name__", "wide"), re];

        let first = db.select(&m, 0, i64::MAX);
        let miss_stats = db.posting_cache_stats();
        assert_eq!(miss_stats.hits, 0);
        assert!(miss_stats.misses >= 1);

        let second = db.select(&m, 0, i64::MAX);
        assert_eq!(first, second);
        assert!(db.posting_cache_stats().hits >= 1, "repeat query must hit");

        // A new series matching the selector must appear despite the cache.
        let ls = labels! {"__name__" => "wide", "instance" => "n0099"};
        db.append(&ls, 0, 7.0);
        let third = db.select(&m, 0, i64::MAX);
        assert_eq!(third.len(), first.len() + 1);

        // Deletion must propagate too.
        db.delete_series(&[LabelMatcher::eq("instance", "n0001")]);
        let fourth = db.select(&m, 0, i64::MAX);
        assert_eq!(fourth.len(), first.len());
        assert!(fourth.iter().all(|s| s.labels.get("instance") != Some("n0001")));
    }

    #[test]
    fn exact_selectors_bypass_posting_cache() {
        let db = wide_db(10);
        db.select(&[LabelMatcher::eq("__name__", "wide")], 0, i64::MAX);
        db.select(&[LabelMatcher::eq("__name__", "wide")], 0, i64::MAX);
        let stats = db.posting_cache_stats();
        assert_eq!(stats.hits + stats.misses, 0, "exact-only sets never touch the cache");
    }

    #[test]
    fn zero_cache_size_disables_posting_cache() {
        let db = Tsdb::new(TsdbConfig {
            posting_cache_size: 0,
            ..TsdbConfig::default()
        });
        db.append(&labels! {"__name__" => "m", "x" => "1"}, 0, 1.0);
        let re = LabelMatcher::new("x", MatchOp::Re, ".+").unwrap();
        db.select(std::slice::from_ref(&re), 0, i64::MAX);
        db.select(&[re], 0, i64::MAX);
        assert_eq!(db.posting_cache_stats().hits, 0);
    }
}
