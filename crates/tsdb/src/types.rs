//! Shared TSDB types.

use std::sync::Arc;

use ceems_metrics::labels::LabelSet;

/// One timestamped value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Milliseconds since the epoch.
    pub t_ms: i64,
    /// Value.
    pub v: f64,
}

impl Sample {
    /// Shorthand constructor.
    pub fn new(t_ms: i64, v: f64) -> Sample {
        Sample { t_ms, v }
    }
}

/// A selected series: its labels and samples in time order.
///
/// Labels are behind an `Arc` shared with the index, so selecting a series
/// never deep-copies its label strings.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesData {
    /// Full label set (including `__name__`).
    pub labels: Arc<LabelSet>,
    /// Samples sorted by timestamp.
    pub samples: Vec<Sample>,
}

impl SeriesData {
    /// Builds series data from owned or shared labels.
    pub fn new(labels: impl Into<Arc<LabelSet>>, samples: Vec<Sample>) -> SeriesData {
        SeriesData {
            labels: labels.into(),
            samples,
        }
    }
}

/// Internal series identifier.
pub type SeriesId = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    #[test]
    fn constructors() {
        let s = Sample::new(5, 1.5);
        assert_eq!(s.t_ms, 5);
        let sd = SeriesData::new(labels! {"__name__" => "up"}, vec![s]);
        assert_eq!(sd.samples.len(), 1);
        assert_eq!(sd.labels.metric_name(), Some("up"));
    }
}
