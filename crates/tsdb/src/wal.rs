//! Segmented write-ahead log + checkpoints (S16 in `DESIGN.md`).
//!
//! The hot TSDB head is purely in-memory; this module gives it a durability
//! and replication substrate, the same shape Prometheus' own WAL has:
//!
//! * **Records** ([`WalRecord`]) — series creations, sample batches,
//!   tombstones, retention cutoffs — encoded compactly (varints, zigzag
//!   deltas) and framed with a length + CRC32 header so a torn tail is
//!   detected, never misread.
//! * **Segments** — append-only `wal-<seq>.seg` files rotated by size. A
//!   scrape batch is logged as *one* record through a group-commit buffer:
//!   one lock, one `write`, at most one fsync per batch.
//! * **Checkpoints** — `checkpoint-<seq>.ckpt` files summarizing all live
//!   series at a rotation boundary, written tmp+rename. Recovery loads the
//!   newest valid checkpoint and replays only the segments after it;
//!   covered segments and older checkpoints are garbage-collected.
//! * **Positions** ([`WalPosition`]) — `(segment, byte offset, record
//!   count)` triples; followers stream segment bytes from a position, and
//!   the load balancer compares record counts as a staleness signal.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ceems_metrics::labels::LabelSet;

use crate::types::{Sample, SeriesId};

// ---------------------------------------------------------------------------
// Disk fault injection
// ---------------------------------------------------------------------------

/// Injectable disk faults behind the WAL's file operations, used by the
/// chaos harness to model short writes, `fsync` EIO and torn tails without
/// touching a real flaky disk. The default implementation of every hook is
/// "no fault", and a `Wal` without an injector pays one `Option` check per
/// group commit.
pub trait DiskFaults: Send + Sync {
    /// Called before a group-commit write of `len` bytes. Return `Some(n)`
    /// to write only the first `n` bytes and fail with `EIO`.
    fn before_write(&self, len: usize) -> Option<usize> {
        let _ = len;
        None
    }

    /// Return true to fail the next `fsync` with `EIO`.
    fn fail_fsync(&self) -> bool {
        false
    }

    /// After an injected short write: return true (the default) to repair
    /// the tail (truncate back to the last commit boundary, as the writer
    /// does on a real write error), or false to leave the torn bytes on
    /// disk so recovery has to truncate them.
    fn repair_after_short_write(&self) -> bool {
        true
    }
}

/// A scripted [`DiskFaults`] implementation: pop-from-front schedules of
/// short writes and fsync failures, deterministic by construction.
#[derive(Debug)]
pub struct ScriptedDiskFaults {
    short_writes: parking_lot::Mutex<Vec<ScriptedShortWrite>>,
    fsync_failures: std::sync::atomic::AtomicU64,
    repair: std::sync::atomic::AtomicBool,
}

impl Default for ScriptedDiskFaults {
    fn default() -> Self {
        ScriptedDiskFaults::new()
    }
}

/// One scheduled short write.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedShortWrite {
    /// Group commits to let through before this fault fires.
    pub after_writes: u64,
    /// Fraction of the buffer to write before failing, in `[0, 1)`.
    pub keep_fraction: f64,
}

impl ScriptedDiskFaults {
    /// No faults scheduled; add some with the builder methods.
    pub fn new() -> ScriptedDiskFaults {
        ScriptedDiskFaults {
            short_writes: parking_lot::Mutex::new(Vec::new()),
            fsync_failures: std::sync::atomic::AtomicU64::new(0),
            repair: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Schedules a short write after `after_writes` successful commits.
    pub fn with_short_write(self, after_writes: u64, keep_fraction: f64) -> ScriptedDiskFaults {
        self.short_writes.lock().push(ScriptedShortWrite {
            after_writes,
            keep_fraction: keep_fraction.clamp(0.0, 0.999),
        });
        self
    }

    /// Makes the next `n` fsyncs fail with `EIO`.
    pub fn with_fsync_failures(self, n: u64) -> ScriptedDiskFaults {
        self.fsync_failures
            .store(n, std::sync::atomic::Ordering::Relaxed);
        self
    }

    /// Leaves torn bytes on disk after short writes (models a crash before
    /// the writer could repair the tail).
    pub fn leaving_torn_tails(self) -> ScriptedDiskFaults {
        self.repair.store(false, std::sync::atomic::Ordering::Relaxed);
        self
    }
}

impl DiskFaults for ScriptedDiskFaults {
    fn before_write(&self, len: usize) -> Option<usize> {
        let mut sw = self.short_writes.lock();
        if let Some(first) = sw.first_mut() {
            if first.after_writes == 0 {
                let keep = (len as f64 * first.keep_fraction) as usize;
                sw.remove(0);
                return Some(keep.min(len.saturating_sub(1)));
            }
            first.after_writes -= 1;
        }
        None
    }

    fn fail_fsync(&self) -> bool {
        let n = self.fsync_failures.load(std::sync::atomic::Ordering::Relaxed);
        if n > 0 {
            self.fsync_failures
                .store(n - 1, std::sync::atomic::Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn repair_after_short_write(&self) -> bool {
        self.repair.load(std::sync::atomic::Ordering::Relaxed)
    }
}

fn injected_eio(what: &str) -> io::Error {
    io::Error::other(format!("injected disk fault: {what}"))
}

/// Largest frame payload [`decode_frames`] accepts; anything bigger is
/// treated as corruption (a real record is a few MB at most).
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Samples per synthetic `Samples` record when a checkpoint is converted
/// into a record stream for follower bootstrap.
pub const BOOTSTRAP_BATCH: usize = 8_192;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives
// ---------------------------------------------------------------------------

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Bounds-checked reader over an encoded payload. Every accessor returns
/// `None` past the end instead of panicking — decoding corrupt bytes must
/// degrade to "torn record", never crash recovery.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn uvarint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return None;
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    fn ivarint(&mut self) -> Option<i64> {
        let u = self.uvarint()?;
        Some(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    fn f64(&mut self) -> Option<f64> {
        let end = self.pos.checked_add(8)?;
        let bytes: [u8; 8] = self.buf.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(f64::from_le_bytes(bytes))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.uvarint()? as usize;
        let end = self.pos.checked_add(len)?;
        let b = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(b)
    }

    fn string(&mut self) -> Option<String> {
        std::str::from_utf8(self.bytes()?).ok().map(str::to_string)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

const TAG_SERIES_CREATE: u8 = 1;
const TAG_SAMPLES: u8 = 2;
const TAG_TOMBSTONE: u8 = 3;
const TAG_RETENTION: u8 = 4;
const TAG_EPOCH_BUMP: u8 = 5;

/// One durable event in the WAL. Replaying the record stream from an empty
/// database reconstructs the head and index exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A new series was registered under `id`. Always logged before any
    /// `Samples` record referencing the id (enforced by logging inside the
    /// index write-lock critical section).
    SeriesCreate {
        /// The id the index assigned.
        id: SeriesId,
        /// The full label set of the series.
        labels: LabelSet,
    },
    /// A batch of samples, `(series id, timestamp ms, value)`. One scrape
    /// pass over a target becomes one record (the group commit).
    Samples(Vec<(SeriesId, i64, f64)>),
    /// Series deleted by the §II.C cardinality cleanup.
    Tombstone(Vec<SeriesId>),
    /// A retention sweep dropped chunks ending before `cutoff_ms`.
    Retention {
        /// The cutoff the sweep ran with.
        cutoff_ms: i64,
    },
    /// The leadership epoch advanced (S24). Every record after this bump
    /// (until the next one) belongs to `epoch` — the Raft-style "term
    /// marker in the log" shape. A durable bump fences the previous
    /// leader: appends carrying an older epoch are rejected.
    EpochBump {
        /// The new epoch.
        epoch: u64,
    },
}

/// Appends one length+CRC framed record to `out`.
///
/// Frame layout: `[payload len: u32 LE][crc32(payload): u32 LE][payload]`.
pub fn encode_record(out: &mut Vec<u8>, rec: &WalRecord) {
    let mut payload = Vec::with_capacity(64);
    match rec {
        WalRecord::SeriesCreate { id, labels } => {
            payload.push(TAG_SERIES_CREATE);
            put_uvarint(&mut payload, *id);
            put_uvarint(&mut payload, labels.len() as u64);
            for (k, v) in labels.iter() {
                put_bytes(&mut payload, k.as_bytes());
                put_bytes(&mut payload, v.as_bytes());
            }
        }
        WalRecord::Samples(samples) => {
            payload.push(TAG_SAMPLES);
            put_uvarint(&mut payload, samples.len() as u64);
            // Ids and timestamps are delta-encoded against the previous
            // sample: a scrape batch shares one timestamp and ascends in
            // id, so both deltas are tiny.
            let (mut prev_id, mut prev_t) = (0i64, 0i64);
            for &(id, t, v) in samples {
                put_ivarint(&mut payload, id as i64 - prev_id);
                put_ivarint(&mut payload, t - prev_t);
                payload.extend_from_slice(&v.to_le_bytes());
                prev_id = id as i64;
                prev_t = t;
            }
        }
        WalRecord::Tombstone(ids) => {
            payload.push(TAG_TOMBSTONE);
            put_uvarint(&mut payload, ids.len() as u64);
            let mut prev = 0i64;
            for &id in ids {
                put_ivarint(&mut payload, id as i64 - prev);
                prev = id as i64;
            }
        }
        WalRecord::Retention { cutoff_ms } => {
            payload.push(TAG_RETENTION);
            put_ivarint(&mut payload, *cutoff_ms);
        }
        WalRecord::EpochBump { epoch } => {
            payload.push(TAG_EPOCH_BUMP);
            put_uvarint(&mut payload, *epoch);
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_SERIES_CREATE => {
            let id = r.uvarint()?;
            let n = r.uvarint()? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.string()?;
                let v = r.string()?;
                pairs.push((k, v));
            }
            WalRecord::SeriesCreate {
                id,
                labels: LabelSet::from_pairs(pairs),
            }
        }
        TAG_SAMPLES => {
            let n = r.uvarint()? as usize;
            let mut samples = Vec::with_capacity(n.min(1 << 20));
            let (mut prev_id, mut prev_t) = (0i64, 0i64);
            for _ in 0..n {
                let id = prev_id.checked_add(r.ivarint()?)?;
                let t = prev_t.checked_add(r.ivarint()?)?;
                let v = r.f64()?;
                if id < 0 {
                    return None;
                }
                samples.push((id as SeriesId, t, v));
                prev_id = id;
                prev_t = t;
            }
            WalRecord::Samples(samples)
        }
        TAG_TOMBSTONE => {
            let n = r.uvarint()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 20));
            let mut prev = 0i64;
            for _ in 0..n {
                let id = prev.checked_add(r.ivarint()?)?;
                if id < 0 {
                    return None;
                }
                ids.push(id as SeriesId);
                prev = id;
            }
            WalRecord::Tombstone(ids)
        }
        TAG_RETENTION => WalRecord::Retention {
            cutoff_ms: r.ivarint()?,
        },
        TAG_EPOCH_BUMP => WalRecord::EpochBump { epoch: r.uvarint()? },
        _ => return None,
    };
    r.done().then_some(rec)
}

/// Decodes consecutive frames from `buf`, stopping at the first incomplete
/// or corrupt frame (the torn tail a crash leaves). Returns the decoded
/// records and how many bytes of `buf` they cleanly consumed — the caller
/// truncates (recovery) or retries from there (a follower racing the
/// leader's writer).
pub fn decode_frames(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            break;
        }
        let (start, end) = (pos + 8, pos + 8 + len as usize);
        if end > buf.len() {
            break;
        }
        let payload = &buf[start..end];
        if crc32(payload) != crc {
            break;
        }
        match decode_payload(payload) {
            Some(rec) => out.push(rec),
            None => break,
        }
        pos = end;
    }
    (out, pos)
}

// ---------------------------------------------------------------------------
// Positions, options
// ---------------------------------------------------------------------------

/// A durable position in the log: segment sequence number, byte offset
/// within that segment, and the monotone count of records written so far.
/// `records` is what the load balancer compares across replicas — it is
/// comparable even when a follower's segment layout differs from the
/// leader's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Segment sequence number.
    pub seq: u64,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Total records logged since the log was created.
    pub records: u64,
}

/// When the WAL writer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// Sync after every group commit. Maximum durability, pays a sync per
    /// scrape batch.
    Always,
    /// Sync at segment rotation and checkpoint boundaries only; a crash can
    /// lose the OS-buffered tail of the current segment but never corrupts
    /// what recovery reads (frames are CRC-checked).
    #[default]
    Batch,
    /// Never sync explicitly (tests / throwaway stores).
    Never,
}

impl FsyncMode {
    /// Parses the YAML `wal_fsync` value.
    pub fn parse(s: &str) -> Option<FsyncMode> {
        match s {
            "always" => Some(FsyncMode::Always),
            "batch" => Some(FsyncMode::Batch),
            "never" => Some(FsyncMode::Never),
            _ => None,
        }
    }
}

/// WAL tuning knobs (the YAML `tsdb:` keys).
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Fsync policy.
    pub fsync: FsyncMode,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncMode::Batch,
        }
    }
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// File name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:012}.seg")
}

/// File name of the checkpoint covering segments `< seq`.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("checkpoint-{seq:012}.ckpt")
}

fn numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix(suffix))
        {
            if let Ok(seq) = num.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Segment files in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    numbered(dir, "wal-", ".seg")
}

/// Checkpoint files in `dir`, sorted by covered sequence number.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    numbered(dir, "checkpoint-", ".ckpt")
}

/// Best-effort directory sync so renames/creates survive a crash.
fn sync_dir(dir: &Path) {
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
}

/// The segmented log writer. Callers serialize access (the TSDB wraps it in
/// a mutex); one [`Wal::log`] call is one group commit.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    seq: u64,
    file: File,
    offset: u64,
    records: u64,
    /// Fsync telemetry: calls and cumulative nanoseconds across log/rotate/
    /// sync, read by the TSDB metrics collector under the writer mutex.
    syncs: u64,
    sync_ns: u64,
    /// Injected disk faults (chaos testing); `None` in production.
    faults: Option<Arc<dyn DiskFaults>>,
}

impl Wal {
    /// Opens the writer positioned at `(seq, offset)` with `records` already
    /// logged (recovery passes the replay end; a fresh directory passes
    /// zeros). Bytes past `offset` in the segment — a torn tail — are
    /// truncated away so new appends start on a clean frame boundary.
    pub fn open_at(
        dir: &Path,
        opts: WalOptions,
        seq: u64,
        offset: u64,
        records: u64,
    ) -> io::Result<Wal> {
        let path = dir.join(segment_file_name(seq));
        // Keep existing bytes: the valid prefix up to `offset` is replayed
        // history; only the torn tail past it is cut below.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        let offset = offset.min(len);
        if len > offset {
            file.set_len(offset)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        sync_dir(dir);
        Ok(Wal {
            dir: dir.to_path_buf(),
            opts,
            seq,
            file,
            offset,
            records,
            syncs: 0,
            sync_ns: 0,
            faults: None,
        })
    }

    /// Installs a disk-fault injector (chaos testing).
    pub fn set_disk_faults(&mut self, faults: Arc<dyn DiskFaults>) {
        self.faults = Some(faults);
    }

    /// Current position.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            seq: self.seq,
            offset: self.offset,
            records: self.records,
        }
    }

    /// Fsync telemetry since open: `(calls, cumulative_nanoseconds)`.
    pub fn sync_stats(&self) -> (u64, u64) {
        (self.syncs, self.sync_ns)
    }

    /// Syncs the active segment's data, accounting the call.
    fn timed_sync_data(&mut self) -> io::Result<()> {
        if let Some(f) = &self.faults {
            if f.fail_fsync() {
                self.syncs += 1;
                return Err(injected_eio("fsync EIO"));
            }
        }
        let start = std::time::Instant::now();
        let res = self.file.sync_data();
        self.syncs += 1;
        self.sync_ns += start.elapsed().as_nanos() as u64;
        res
    }

    /// Group commit: encodes all `recs` into one buffer and writes it with
    /// one syscall (plus at most one fsync, per [`FsyncMode`]). Rotates
    /// first when the segment would exceed its size budget.
    pub fn log(&mut self, recs: &[WalRecord]) -> io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(256);
        for r in recs {
            encode_record(&mut buf, r);
        }
        if self.offset > 0 && self.offset + buf.len() as u64 > self.opts.segment_bytes {
            self.rotate()?;
        }
        if let Some(faults) = self.faults.clone() {
            if let Some(keep) = faults.before_write(buf.len()) {
                // Short write: part of the commit lands on disk, then EIO.
                let keep = keep.min(buf.len());
                self.file.write_all(&buf[..keep])?;
                if faults.repair_after_short_write() {
                    // What a real writer does on a write error: truncate the
                    // torn bytes back to the last commit boundary so the next
                    // append starts on a clean frame.
                    self.file.set_len(self.offset)?;
                    self.file.seek(SeekFrom::End(0))?;
                } else {
                    // Leave the torn tail for recovery to cut away.
                    let _ = self.file.flush();
                }
                return Err(injected_eio("short write"));
            }
        }
        self.file.write_all(&buf)?;
        self.offset += buf.len() as u64;
        self.records += recs.len() as u64;
        if self.opts.fsync == FsyncMode::Always {
            self.timed_sync_data()?;
        }
        Ok(())
    }

    /// Seals the active segment (syncing it unless `fsync = never`) and
    /// starts the next one. Returns the new segment's sequence number.
    pub fn rotate(&mut self) -> io::Result<u64> {
        if self.opts.fsync != FsyncMode::Never {
            self.timed_sync_data()?;
        }
        self.seq += 1;
        self.offset = 0;
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(segment_file_name(self.seq)))?;
        sync_dir(&self.dir);
        Ok(self.seq)
    }

    /// Forces the active segment to disk (unless `fsync = never`).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.opts.fsync != FsyncMode::Never {
            self.timed_sync_data()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

const CKPT_MAGIC: &[u8; 5] = b"CKPT1";

/// One entry of the leadership-epoch history (S24): `epoch` began once
/// `start_records` records had been logged. The history is what a
/// rejoining old leader compares its WAL tail against — everything it
/// logged at or past the successor epoch's start is a divergent (never
/// acknowledged) suffix and must be truncated before re-entering as a
/// follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSpan {
    /// The epoch number.
    pub epoch: u64,
    /// Monotone record count at which this epoch began.
    pub start_records: u64,
}

/// A full summary of the live database at a segment rotation boundary.
/// Recovery = load newest checkpoint + replay segments `>= covers_seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Segments with `seq < covers_seq` are fully contained in this
    /// checkpoint and can be garbage-collected.
    pub covers_seq: u64,
    /// Index generation at snapshot time, restored exactly so posting-cache
    /// invalidation survives a restart.
    pub generation: u64,
    /// Next series id the index would assign (ids of tombstoned series must
    /// not be reused differently after recovery).
    pub next_id: SeriesId,
    /// Lifetime appended-samples counter.
    pub appended: u64,
    /// Lifetime out-of-order-dropped counter.
    pub out_of_order: u64,
    /// Total WAL records logged up to `covers_seq` (seeds the position's
    /// record count on recovery).
    pub records: u64,
    /// Leadership epoch at snapshot time (S24).
    pub epoch: u64,
    /// Epoch history up to the snapshot; survives segment GC so rejoin
    /// divergence checks work long after the bump records are collected.
    pub epoch_history: Vec<EpochSpan>,
    /// Every live series: id, labels, all samples in time order.
    pub series: Vec<(SeriesId, LabelSet, Vec<Sample>)>,
}

/// Serializes a checkpoint: magic, varint-packed header + series, and a
/// trailing CRC32 over everything before it.
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(CKPT_MAGIC);
    put_uvarint(&mut out, ckpt.covers_seq);
    put_uvarint(&mut out, ckpt.generation);
    put_uvarint(&mut out, ckpt.next_id);
    put_uvarint(&mut out, ckpt.appended);
    put_uvarint(&mut out, ckpt.out_of_order);
    put_uvarint(&mut out, ckpt.records);
    put_uvarint(&mut out, ckpt.epoch);
    put_uvarint(&mut out, ckpt.epoch_history.len() as u64);
    for span in &ckpt.epoch_history {
        put_uvarint(&mut out, span.epoch);
        put_uvarint(&mut out, span.start_records);
    }
    put_uvarint(&mut out, ckpt.series.len() as u64);
    for (id, labels, samples) in &ckpt.series {
        put_uvarint(&mut out, *id);
        put_uvarint(&mut out, labels.len() as u64);
        for (k, v) in labels.iter() {
            put_bytes(&mut out, k.as_bytes());
            put_bytes(&mut out, v.as_bytes());
        }
        put_uvarint(&mut out, samples.len() as u64);
        let mut prev_t = 0i64;
        for s in samples {
            put_ivarint(&mut out, s.t_ms - prev_t);
            out.extend_from_slice(&s.v.to_le_bytes());
            prev_t = s.t_ms;
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses checkpoint bytes, validating magic and CRC. `None` means the file
/// is corrupt or truncated (the loader falls back to an older checkpoint).
pub fn decode_checkpoint(bytes: &[u8]) -> Option<Checkpoint> {
    if bytes.len() < CKPT_MAGIC.len() + 4 || !bytes.starts_with(CKPT_MAGIC) {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    let mut r = Reader::new(&body[CKPT_MAGIC.len()..]);
    let covers_seq = r.uvarint()?;
    let generation = r.uvarint()?;
    let next_id = r.uvarint()?;
    let appended = r.uvarint()?;
    let out_of_order = r.uvarint()?;
    let records = r.uvarint()?;
    let epoch = r.uvarint()?;
    let n_spans = r.uvarint()? as usize;
    let mut epoch_history = Vec::with_capacity(n_spans.min(1 << 16));
    for _ in 0..n_spans {
        epoch_history.push(EpochSpan {
            epoch: r.uvarint()?,
            start_records: r.uvarint()?,
        });
    }
    let n_series = r.uvarint()? as usize;
    let mut series = Vec::with_capacity(n_series.min(1 << 20));
    for _ in 0..n_series {
        let id = r.uvarint()?;
        let n_labels = r.uvarint()? as usize;
        let mut pairs = Vec::with_capacity(n_labels.min(64));
        for _ in 0..n_labels {
            let k = r.string()?;
            let v = r.string()?;
            pairs.push((k, v));
        }
        let n_samples = r.uvarint()? as usize;
        let mut samples = Vec::with_capacity(n_samples.min(1 << 20));
        let mut prev_t = 0i64;
        for _ in 0..n_samples {
            let t = prev_t.checked_add(r.ivarint()?)?;
            let v = r.f64()?;
            samples.push(Sample::new(t, v));
            prev_t = t;
        }
        series.push((id, LabelSet::from_pairs(pairs), samples));
    }
    r.done().then_some(Checkpoint {
        covers_seq,
        generation,
        next_id,
        appended,
        out_of_order,
        records,
        epoch,
        epoch_history,
        series,
    })
}

/// Writes a checkpoint durably: temp file, fsync, atomic rename, directory
/// sync. A crash at any point leaves either the old state or the new one.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    let bytes = encode_checkpoint(ckpt);
    let tmp = dir.join(format!("{}.tmp", checkpoint_file_name(ckpt.covers_seq)));
    let path = dir.join(checkpoint_file_name(ckpt.covers_seq));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(path)
}

/// Loads the newest checkpoint that validates, skipping corrupt or
/// truncated ones (a crash mid-checkpoint leaves a `.tmp` that is never
/// considered, but defense in depth costs nothing).
pub fn load_latest_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    for (_, path) in list_checkpoints(dir)?.into_iter().rev() {
        if let Some(ckpt) = decode_checkpoint(&fs::read(&path)?) {
            return Ok(Some(ckpt));
        }
    }
    Ok(None)
}

/// Outcome of [`truncate_to_records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncateOutcome {
    /// The log held no records past the target — nothing was cut.
    AlreadyShort,
    /// The divergent suffix was cut: this many records were dropped.
    Truncated {
        /// Records removed from the tail.
        dropped_records: u64,
    },
    /// The newest checkpoint already covers records past the target, so a
    /// surgical cut is impossible — the caller must clear and re-bootstrap
    /// from the leader instead.
    NeedsResync,
}

/// Truncates the WAL in `dir` so it holds exactly `target` records (S24
/// rejoin): an old leader cutting the unacknowledged suffix it wrote past
/// the successor epoch's start. Walks frames without decoding payloads,
/// truncates the segment holding record `target`, and deletes every later
/// segment. Must only be called with no live writer on the directory.
pub fn truncate_to_records(dir: &Path, target: u64) -> io::Result<TruncateOutcome> {
    let base = load_latest_checkpoint(dir)?;
    let (mut count, start_seq) = base.map_or((0, 0), |c| (c.records, c.covers_seq));
    if count > target {
        return Ok(TruncateOutcome::NeedsResync);
    }
    let mut cut = false;
    let mut dropped = 0u64;
    for (seq, path) in list_segments(dir)? {
        if seq < start_seq {
            continue;
        }
        if cut {
            // Count the records in the doomed segment before removing it.
            let data = fs::read(&path)?;
            let (recs, _) = decode_frames(&data);
            dropped += recs.len() as u64;
            fs::remove_file(&path)?;
            continue;
        }
        let data = fs::read(&path)?;
        let mut pos = 0usize;
        while data.len() - pos >= 8 {
            if count == target {
                break;
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            if len > MAX_FRAME_LEN {
                break; // torn/corrupt tail: nothing real past here
            }
            let end = pos + 8 + len as usize;
            if end > data.len() {
                break;
            }
            pos = end;
            count += 1;
        }
        if count == target && (pos as u64) < data.len() as u64 {
            let (tail, _) = decode_frames(&data[pos..]);
            dropped += tail.len() as u64;
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(pos as u64)?;
            f.sync_data()?;
            cut = true;
        }
    }
    sync_dir(dir);
    if dropped == 0 {
        return Ok(TruncateOutcome::AlreadyShort);
    }
    Ok(TruncateOutcome::Truncated {
        dropped_records: dropped,
    })
}

/// Garbage-collects everything a fresh checkpoint covers: segments with
/// `seq < covers_seq`, older checkpoints, and stray `.tmp` files. Returns
/// how many files were removed.
pub fn gc_covered(dir: &Path, covers_seq: u64) -> io::Result<usize> {
    let mut removed = 0;
    for (seq, path) in list_segments(dir)? {
        if seq < covers_seq {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    for (seq, path) in list_checkpoints(dir)? {
        if seq < covers_seq {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    sync_dir(dir);
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::SeriesCreate {
                id: 0,
                labels: labels! {"__name__" => "power", "instance" => "n1"},
            },
            WalRecord::Samples(vec![(0, 15_000, 215.5), (0, 30_000, 220.0)]),
            WalRecord::Tombstone(vec![0]),
            WalRecord::Retention { cutoff_ms: -5_000 },
            WalRecord::EpochBump { epoch: 3 },
        ]
    }

    #[test]
    fn record_roundtrip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(&mut buf, r);
        }
        let (got, consumed) = decode_frames(&buf);
        assert_eq!(consumed, buf.len());
        assert_eq!(got, recs);
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(&mut buf, r);
        }
        let mut whole = Vec::new();
        encode_record(&mut whole, &recs[0]);
        let keep = whole.len();
        // Truncate into the second record: only the first decodes.
        let (got, consumed) = decode_frames(&buf[..keep + 5]);
        assert_eq!(got.len(), 1);
        assert_eq!(consumed, keep);
        // Corrupt a payload byte of the second record: same stop point.
        let mut bad = buf.clone();
        bad[keep + 9] ^= 0xFF;
        let (got, consumed) = decode_frames(&bad);
        assert_eq!(got.len(), 1);
        assert_eq!(consumed, keep);
    }

    #[test]
    fn short_write_fault_repairs_and_recovers() {
        let dir = std::env::temp_dir().join(format!("ceems-wal-shortw-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut wal = Wal::open_at(&dir, WalOptions::default(), 0, 0, 0).unwrap();
        wal.set_disk_faults(Arc::new(
            ScriptedDiskFaults::new().with_short_write(1, 0.5),
        ));
        wal.log(&[WalRecord::Samples(vec![(1, 1_000, 1.0)])]).unwrap();
        let pos_before = wal.position();
        // Second commit hits the scripted short write.
        let err = wal
            .log(&[WalRecord::Samples(vec![(1, 2_000, 2.0)])])
            .unwrap_err();
        assert!(err.to_string().contains("injected disk fault"));
        assert_eq!(wal.position(), pos_before, "failed commit must not advance");
        // The tail was repaired: the next commit lands on a clean boundary.
        wal.log(&[WalRecord::Samples(vec![(1, 3_000, 3.0)])]).unwrap();
        let data = fs::read(dir.join(segment_file_name(0))).unwrap();
        let (recs, consumed) = decode_frames(&data);
        assert_eq!(consumed, data.len(), "no torn bytes after repair");
        assert_eq!(
            recs,
            vec![
                WalRecord::Samples(vec![(1, 1_000, 1.0)]),
                WalRecord::Samples(vec![(1, 3_000, 3.0)]),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrepaired_short_write_leaves_torn_tail_for_recovery() {
        let dir = std::env::temp_dir().join(format!("ceems-wal-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut wal = Wal::open_at(&dir, WalOptions::default(), 0, 0, 0).unwrap();
        wal.set_disk_faults(Arc::new(
            ScriptedDiskFaults::new()
                .with_short_write(1, 0.5)
                .leaving_torn_tails(),
        ));
        wal.log(&[WalRecord::Samples(vec![(1, 1_000, 1.0)])]).unwrap();
        let pos = wal.position();
        wal.log(&[WalRecord::Samples(vec![(1, 2_000, 2.0)])])
            .unwrap_err();
        drop(wal);
        let path = dir.join(segment_file_name(0));
        let len_with_tail = fs::metadata(&path).unwrap().len();
        assert!(len_with_tail > pos.offset, "torn bytes must be on disk");
        // Frame decoding stops at the torn frame...
        let data = fs::read(&path).unwrap();
        let (recs, consumed) = decode_frames(&data);
        assert_eq!(recs.len(), 1);
        assert_eq!(consumed as u64, pos.offset);
        // ...and re-opening at the valid prefix truncates the tail away.
        let wal = Wal::open_at(&dir, WalOptions::default(), pos.seq, pos.offset, pos.records)
            .unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), pos.offset);
        assert_eq!(wal.position(), pos);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_eio_fault_surfaces_and_clears() {
        let dir = std::env::temp_dir().join(format!("ceems-wal-eio-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let opts = WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncMode::Always,
        };
        let mut wal = Wal::open_at(&dir, opts, 0, 0, 0).unwrap();
        wal.set_disk_faults(Arc::new(ScriptedDiskFaults::new().with_fsync_failures(1)));
        // Write succeeds, fsync fails: the record is on disk but not durable,
        // and the error reaches the caller to count.
        let err = wal
            .log(&[WalRecord::Samples(vec![(1, 1_000, 1.0)])])
            .unwrap_err();
        assert!(err.to_string().contains("fsync EIO"));
        // The schedule is exhausted; the next commit syncs cleanly.
        wal.log(&[WalRecord::Samples(vec![(1, 2_000, 2.0)])]).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_segments_rotate_by_size() {
        let dir = std::env::temp_dir().join(format!("ceems-wal-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let opts = WalOptions {
            segment_bytes: 256,
            fsync: FsyncMode::Never,
        };
        let mut wal = Wal::open_at(&dir, opts, 0, 0, 0).unwrap();
        for i in 0..100 {
            wal.log(&[WalRecord::Samples(vec![(i, i as i64 * 1000, 1.0)])])
                .unwrap();
        }
        assert!(wal.position().seq > 0, "must have rotated");
        assert_eq!(wal.position().records, 100);
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.last().unwrap().0, wal.position().seq);
        // Every segment replays; total records survive the split.
        let mut total = 0;
        for (_, path) in &segs {
            let data = fs::read(path).unwrap();
            let (recs, consumed) = decode_frames(&data);
            assert_eq!(consumed, data.len());
            total += recs.len();
        }
        assert_eq!(total, 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption() {
        let ckpt = Checkpoint {
            covers_seq: 7,
            generation: 42,
            next_id: 3,
            appended: 100,
            out_of_order: 2,
            records: 55,
            epoch: 4,
            epoch_history: vec![
                EpochSpan { epoch: 1, start_records: 0 },
                EpochSpan { epoch: 4, start_records: 40 },
            ],
            series: vec![
                (
                    0,
                    labels! {"__name__" => "power"},
                    vec![Sample::new(0, 1.0), Sample::new(15_000, 2.5)],
                ),
                (2, labels! {"__name__" => "up"}, vec![]),
            ],
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
        // Any flipped byte must fail the CRC.
        for i in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_checkpoint(&bad).is_none(), "flip at {i} accepted");
        }
        assert!(decode_checkpoint(&bytes[..bytes.len() - 3]).is_none());
    }

    #[test]
    fn gc_removes_covered_files() {
        let dir = std::env::temp_dir().join(format!("ceems-wal-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for seq in 0..4u64 {
            fs::write(dir.join(segment_file_name(seq)), b"x").unwrap();
        }
        fs::write(dir.join(checkpoint_file_name(1)), b"old").unwrap();
        fs::write(dir.join("checkpoint-000000000003.ckpt.tmp"), b"torn").unwrap();
        gc_covered(&dir, 3).unwrap();
        let segs: Vec<u64> = list_segments(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(segs, vec![3]);
        assert!(list_checkpoints(&dir).unwrap().is_empty());
        assert!(!dir.join("checkpoint-000000000003.ckpt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
