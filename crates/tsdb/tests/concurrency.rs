//! Thread-safety under concurrent scraping, querying, rule evaluation and
//! deletion — the TSDB's production access pattern (scrape threads write
//! while dashboards read and the API server deletes).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::matcher::LabelMatcher;
use ceems_tsdb::promql::{instant_query, parse_expr};
use ceems_tsdb::{Tsdb, TsdbConfig};

#[test]
fn concurrent_writers_readers_and_deleters() {
    let db = Arc::new(Tsdb::new(TsdbConfig {
        shards: 8,
        ..Default::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // 4 writer threads: disjoint instances, shared metric name.
        for w in 0..4u64 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let labels: Vec<_> = (0..50)
                    .map(|i| {
                        LabelSetBuilder::new()
                            .label("__name__", "conc_metric")
                            .label("instance", format!("w{w}-n{i}"))
                            .build()
                    })
                    .collect();
                let mut t = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    t += 1000;
                    for l in &labels {
                        db.append(l, t, t as f64);
                    }
                }
            });
        }
        // 2 reader threads: selects + PromQL.
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let expr = parse_expr("sum(conc_metric)").unwrap();
                let mut t = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    t += 5000;
                    let _ = db.select(&[LabelMatcher::eq("__name__", "conc_metric")], 0, t);
                    let _ = instant_query(db.as_ref(), &expr, t);
                    let _ = db.label_values("instance");
                }
            });
        }
        // 1 deleter: periodically purges one writer's series (the
        // cardinality cleanup racing live scrapes).
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut round = 0;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let victim = format!("w0-n{}", round % 50);
                    db.delete_series(&[LabelMatcher::eq("instance", victim)]);
                    std::thread::yield_now();
                }
            });
        }

        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    // The database is consistent afterwards: every surviving series is
    // selectable and ordered.
    let all = db.select(&[LabelMatcher::eq("__name__", "conc_metric")], 0, i64::MAX);
    assert!(!all.is_empty());
    for s in &all {
        assert!(s.samples.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }
    assert!(db.samples_appended() > 1000);
    assert_eq!(db.out_of_order_dropped(), 0);
}
