//! Crash-recovery matrix for the TSDB WAL (S16).
//!
//! Every test drives a WAL-backed database and an identically-configured
//! in-memory reference through the same operation trace, "kills" the
//! durable one at some point (drops it — everything reaching the OS is
//! what a crash leaves behind), reopens it from its directory, and asserts
//! the recovered state answers queries *identically* to the reference:
//! full series dumps, instant and range PromQL, label introspection, and
//! the ingest counters. Crash points cover mid-trace, mid-segment-rotation
//! (tiny segments force rotations constantly), and mid-checkpoint (stray
//! `.tmp` and corrupt checkpoint files).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ceems_metrics::labels;
use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;
use ceems_tsdb::promql::{instant_query, parse_expr, range_query};
use ceems_tsdb::wal::{self, decode_frames, encode_record, FsyncMode, WalOptions, WalRecord};
use ceems_tsdb::{Tsdb, TsdbConfig};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceems-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_config() -> TsdbConfig {
    TsdbConfig {
        shards: 4,
        retention_ms: 120_000,
        query_threads: 2,
        posting_cache_size: 16,
    }
}

fn tiny_segments() -> WalOptions {
    WalOptions {
        segment_bytes: 512, // rotate constantly: crashes land mid-rotation
        fsync: FsyncMode::Never,
    }
}

/// One step of the recorded workload.
enum Op {
    Batch(Vec<(LabelSet, i64, f64)>),
    Delete(Vec<LabelMatcher>),
    Retention(i64),
    Checkpoint,
}

/// A deterministic trace exercising every record type: steady scrape
/// batches, a short-lived burst series, a mid-trace series creation, a
/// tombstone delete, retention (which purges the burst), out-of-order
/// drops, and two checkpoints.
fn op_trace() -> Vec<Op> {
    let mut ops = Vec::new();
    for step in 0..24i64 {
        let t = step * 15_000;
        let mut batch = Vec::new();
        for i in 0..6 {
            batch.push((
                labels! {"__name__" => "power", "instance" => format!("n{i}")},
                t,
                100.0 + i as f64 * 10.0 + step as f64,
            ));
        }
        if (2..=3).contains(&step) {
            batch.push((labels! {"__name__" => "burst", "instance" => "b0"}, t, 1.0));
        }
        if step >= 6 {
            batch.push((labels! {"__name__" => "gpu_watts", "gpu" => "0"}, t, 300.0));
        }
        if step == 13 {
            // Out-of-order: must be counted and dropped on both sides.
            batch.push((
                labels! {"__name__" => "power", "instance" => "n0"},
                t - 60_000,
                0.0,
            ));
        }
        ops.push(Op::Batch(batch));
        match step {
            8 => ops.push(Op::Delete(vec![LabelMatcher::eq("instance", "n3")])),
            12 => ops.push(Op::Checkpoint),
            16 => ops.push(Op::Retention(t)),
            20 => ops.push(Op::Checkpoint),
            _ => {}
        }
    }
    ops
}

fn apply(db: &Tsdb, op: &Op) {
    match op {
        Op::Batch(b) => db.append_batch(b),
        Op::Delete(m) => {
            db.delete_series(m);
        }
        Op::Retention(now) => {
            db.enforce_retention(*now);
        }
        // The in-memory reference has no WAL: checkpoint errors there, and
        // must not change query-visible state on the durable side either.
        Op::Checkpoint => {
            let _ = db.checkpoint();
        }
    }
}

/// Everything query-visible, for equality assertions.
fn assert_identical(recovered: &Tsdb, reference: &Tsdb, context: &str) {
    assert_eq!(
        recovered.select(&[], i64::MIN, i64::MAX),
        reference.select(&[], i64::MIN, i64::MAX),
        "{context}: full dump differs"
    );
    assert_eq!(
        recovered.series_count(),
        reference.series_count(),
        "{context}: series count"
    );
    assert_eq!(
        recovered.samples_appended(),
        reference.samples_appended(),
        "{context}: appended counter"
    );
    assert_eq!(
        recovered.out_of_order_dropped(),
        reference.out_of_order_dropped(),
        "{context}: out-of-order counter"
    );
    assert_eq!(
        *recovered.label_names(),
        *reference.label_names(),
        "{context}: label names"
    );
    assert_eq!(
        *recovered.label_values("instance"),
        *reference.label_values("instance"),
        "{context}: instance values"
    );
    for q in ["sum(power)", "power", "gpu_watts", "burst"] {
        let expr = parse_expr(q).unwrap();
        for t in [0i64, 180_000, 345_000] {
            assert_eq!(
                instant_query(recovered, &expr, t),
                instant_query(reference, &expr, t),
                "{context}: instant {q} @ {t}"
            );
        }
        assert_eq!(
            range_query(recovered, &expr, 0, 345_000, 15_000),
            range_query(reference, &expr, 0, 345_000, 15_000),
            "{context}: range {q}"
        );
    }
}

#[test]
fn crash_point_matrix_recovers_exactly() {
    let ops = op_trace();
    // Crash after K ops, for K across the whole trace: before any
    // checkpoint, right at both checkpoints, mid-rotation (every point is,
    // with 512-byte segments), and at the very end.
    for crash_after in [1, 3, 7, 10, 13, 14, 17, 22, 26, ops.len()] {
        let dir = temp_dir("matrix");
        let reference = Tsdb::new(test_config());
        {
            let durable = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
            for op in ops.iter().take(crash_after) {
                apply(&durable, op);
                apply(&reference, op);
            }
            // `durable` dropped here: the crash.
        }
        let recovered = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
        assert_identical(&recovered, &reference, &format!("crash after {crash_after}"));
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovered_database_keeps_ingesting_durably() {
    let dir = temp_dir("resume");
    let reference = Tsdb::new(test_config());
    let ops = op_trace();
    {
        let durable = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
        for op in &ops {
            apply(&durable, op);
            apply(&reference, op);
        }
    }
    // Reopen, write more, crash again, reopen again.
    let tail = Op::Batch(vec![
        (labels! {"__name__" => "power", "instance" => "n0"}, 400_000, 1.0),
        (labels! {"__name__" => "fresh", "x" => "1"}, 400_000, 2.0),
    ]);
    {
        let durable = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
        apply(&durable, &tail);
        apply(&reference, &tail);
    }
    let recovered = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
    assert_identical(&recovered, &reference, "second crash");
    assert_eq!(recovered.wal_errors(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_replay_resumes() {
    let dir = temp_dir("torn");
    let reference = Tsdb::new(test_config());
    let a = Op::Batch(vec![
        (labels! {"__name__" => "m", "i" => "1"}, 1_000, 1.0),
        (labels! {"__name__" => "m", "i" => "2"}, 1_000, 2.0),
    ]);
    let b = Op::Batch(vec![(labels! {"__name__" => "m", "i" => "1"}, 2_000, 3.0)]);
    let opts = WalOptions {
        segment_bytes: 1 << 20, // one segment: the tear lands mid-segment
        fsync: FsyncMode::Never,
    };
    let boundary = {
        let durable = Tsdb::open(&dir, opts, test_config()).unwrap();
        apply(&durable, &a);
        apply(&reference, &a);
        let boundary = durable.wal_position().unwrap();
        apply(&durable, &b); // lost to the tear below
        boundary
    };
    // Tear the last record in half: a crash mid-`write`.
    let seg = dir.join(wal::segment_file_name(boundary.seq));
    let len = fs::metadata(&seg).unwrap().len();
    assert!(len > boundary.offset, "second batch must be on disk");
    let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(boundary.offset + 3).unwrap();
    drop(f);

    let recovered = Tsdb::open(&dir, opts, test_config()).unwrap();
    assert_identical(&recovered, &reference, "torn tail");
    // The torn bytes are gone from disk; new appends land cleanly after
    // the valid prefix and survive another reopen.
    assert_eq!(recovered.wal_position().unwrap().offset, boundary.offset);
    apply(&recovered, &b);
    apply(&reference, &b);
    drop(recovered);
    let again = Tsdb::open(&dir, opts, test_config()).unwrap();
    assert_identical(&again, &reference, "after tear + rewrite");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_checkpoint_crash_falls_back() {
    let dir = temp_dir("ckpt");
    let reference = Tsdb::new(test_config());
    let ops = op_trace();
    {
        let durable = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
        for op in &ops {
            apply(&durable, op);
            apply(&reference, op);
        }
    }
    // Simulate a crash mid-checkpoint: a half-written temp file plus a
    // newer checkpoint whose bytes are corrupt. Recovery must ignore both
    // and use the last good checkpoint + segments.
    fs::write(dir.join("checkpoint-000000009999.ckpt.tmp"), b"partial").unwrap();
    let good = wal::list_checkpoints(&dir).unwrap();
    assert!(!good.is_empty(), "trace must have checkpointed");
    let mut corrupt = fs::read(&good.last().unwrap().1).unwrap();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    fs::write(dir.join(wal::checkpoint_file_name(9_998)), &corrupt).unwrap();

    let recovered = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
    assert_identical(&recovered, &reference, "mid-checkpoint crash");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_gc_leaves_recoverable_state() {
    let dir = temp_dir("gc");
    let reference = Tsdb::new(test_config());
    let ops = op_trace();
    {
        let durable = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
        for op in &ops {
            apply(&durable, op);
            apply(&reference, op);
        }
        let covers = durable.checkpoint().unwrap();
        // GC happened: nothing older than the checkpoint remains.
        for (seq, _) in wal::list_segments(&dir).unwrap() {
            assert!(seq >= covers, "segment {seq} should be GC'd (covers {covers})");
        }
        assert_eq!(wal::list_checkpoints(&dir).unwrap().len(), 1);
    }
    let recovered = Tsdb::open(&dir, tiny_segments(), test_config()).unwrap();
    assert_identical(&recovered, &reference, "post-GC recovery");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property tests: codec roundtrip + torn-tail truncation
// ---------------------------------------------------------------------------

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_labels() -> impl Strategy<Value = LabelSet> {
        proptest::collection::vec(("[a-z_]{1,8}", "[a-zA-Z0-9_:.-]{0,12}"), 1..5)
            .prop_map(LabelSet::from_pairs)
    }

    fn arb_record() -> impl Strategy<Value = WalRecord> {
        prop_oneof![
            (0u64..10_000, arb_labels())
                .prop_map(|(id, labels)| WalRecord::SeriesCreate { id, labels }),
            proptest::collection::vec(
                (
                    0u64..10_000,
                    -1_000_000_000i64..1_000_000_000,
                    // All bit patterns, including NaN payloads and infinities:
                    // the codec must preserve value bits exactly.
                    any::<u64>().prop_map(f64::from_bits),
                ),
                0..20
            )
            .prop_map(WalRecord::Samples),
            proptest::collection::vec(0u64..10_000, 0..20).prop_map(WalRecord::Tombstone),
            (any::<i64>()).prop_map(|cutoff_ms| WalRecord::Retention { cutoff_ms }),
        ]
    }

    fn records_eq(a: &WalRecord, b: &WalRecord) -> bool {
        // NaN-tolerant equality: the codec must preserve value bits.
        match (a, b) {
            (WalRecord::Samples(x), WalRecord::Samples(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((i1, t1, v1), (i2, t2, v2))| {
                        i1 == i2 && t1 == t2 && v1.to_bits() == v2.to_bits()
                    })
            }
            _ => a == b,
        }
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(recs in proptest::collection::vec(arb_record(), 0..20)) {
            let mut buf = Vec::new();
            for r in &recs {
                encode_record(&mut buf, r);
            }
            let (got, consumed) = decode_frames(&buf);
            prop_assert_eq!(consumed, buf.len());
            prop_assert_eq!(got.len(), recs.len());
            for (a, b) in got.iter().zip(&recs) {
                prop_assert!(records_eq(a, b), "mismatch: {:?} vs {:?}", a, b);
            }
        }

        #[test]
        fn truncation_yields_clean_prefix(
            recs in proptest::collection::vec(arb_record(), 1..12),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut buf = Vec::new();
            let mut boundaries = Vec::new();
            for r in &recs {
                encode_record(&mut buf, r);
                boundaries.push(buf.len());
            }
            let cut = (buf.len() as f64 * cut_frac) as usize;
            let (got, consumed) = decode_frames(&buf[..cut]);
            // Consumed is a frame boundary <= the cut, and the decoded
            // records are exactly the full frames before it.
            prop_assert!(consumed <= cut);
            let whole = boundaries.iter().take_while(|&&b| b <= cut).count();
            prop_assert_eq!(got.len(), whole);
            prop_assert_eq!(consumed, if whole == 0 { 0 } else { boundaries[whole - 1] });
            for (a, b) in got.iter().zip(&recs) {
                prop_assert!(records_eq(a, b), "prefix mismatch");
            }
        }

        #[test]
        fn corruption_never_panics(
            recs in proptest::collection::vec(arb_record(), 1..8),
            flip in any::<u16>(),
        ) {
            let mut buf = Vec::new();
            for r in &recs {
                encode_record(&mut buf, r);
            }
            let idx = flip as usize % buf.len();
            buf[idx] ^= 0x5A;
            // Must stop cleanly at or before the corrupted frame.
            let (got, consumed) = decode_frames(&buf);
            prop_assert!(consumed <= buf.len());
            prop_assert!(got.len() <= recs.len());
        }
    }
}
