//! Property tests of the PromQL engine against closed-form expectations.

use ceems_metrics::labels::LabelSetBuilder;
use ceems_tsdb::promql::{instant_query, parse_expr, range_query, Value};
use ceems_tsdb::Tsdb;
use proptest::prelude::*;

fn db_with_series(series: &[(String, Vec<f64>)], step_ms: i64) -> Tsdb {
    let db = Tsdb::default();
    for (name, values) in series {
        let labels = LabelSetBuilder::new()
            .label("__name__", "m")
            .label("instance", name.clone())
            .build();
        for (i, v) in values.iter().enumerate() {
            db.append(&labels, i as i64 * step_ms, *v);
        }
    }
    db
}

fn vector(v: Value) -> Vec<(ceems_metrics::labels::LabelSet, f64)> {
    match v {
        Value::Vector(v) => v,
        other => panic!("expected vector, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rate() of any non-decreasing counter is non-negative, and equals
    /// total increase / span when there are no resets.
    #[test]
    fn rate_of_monotonic_counter(increments in proptest::collection::vec(0.0f64..1000.0, 4..40)) {
        let mut acc = 0.0;
        let values: Vec<f64> = increments.iter().map(|d| { acc += d; acc }).collect();
        let n = values.len() as i64;
        let total_increase = values.last().unwrap() - values[0];
        let span_s = (n - 1) as f64 * 15.0;

        let db = db_with_series(&[("n1".to_string(), values)], 15_000);
        let window_s = n * 15;
        let q = format!("rate(m[{window_s}s])");
        let v = vector(instant_query(&db, &parse_expr(&q).unwrap(), (n - 1) * 15_000).unwrap());
        prop_assert_eq!(v.len(), 1);
        let rate = v[0].1;
        prop_assert!(rate >= 0.0);
        prop_assert!((rate - total_increase / span_s).abs() < 1e-6,
            "rate={} expected={}", rate, total_increase / span_s);
    }

    /// sum() equals the arithmetic sum of the latest values; avg, min, max
    /// agree with their definitions.
    #[test]
    fn aggregations_match_definitions(
        values in proptest::collection::vec(-1e6f64..1e6, 1..12)
    ) {
        let series: Vec<(String, Vec<f64>)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("n{i}"), vec![*v]))
            .collect();
        let db = db_with_series(&series, 15_000);
        let at = 1000;

        let sum = vector(instant_query(&db, &parse_expr("sum(m)").unwrap(), at).unwrap())[0].1;
        let avg = vector(instant_query(&db, &parse_expr("avg(m)").unwrap(), at).unwrap())[0].1;
        let min = vector(instant_query(&db, &parse_expr("min(m)").unwrap(), at).unwrap())[0].1;
        let max = vector(instant_query(&db, &parse_expr("max(m)").unwrap(), at).unwrap())[0].1;
        let count = vector(instant_query(&db, &parse_expr("count(m)").unwrap(), at).unwrap())[0].1;

        let want_sum: f64 = values.iter().sum();
        prop_assert!((sum - want_sum).abs() < values.len() as f64);
        prop_assert!((avg - want_sum / values.len() as f64).abs() < 1.0);
        prop_assert_eq!(min, values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(max, values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        prop_assert_eq!(count, values.len() as f64);
    }

    /// A range query's series at each step equals the instant query there.
    #[test]
    fn range_query_is_pointwise_instant(vals in proptest::collection::vec(0.0f64..100.0, 4..20)) {
        let db = db_with_series(&[("n1".to_string(), vals.clone())], 15_000);
        let expr = parse_expr("sum(m)").unwrap();
        let end = (vals.len() as i64 - 1) * 15_000;
        let series = range_query(&db, &expr, 0, end, 15_000).unwrap();
        prop_assert_eq!(series.len(), 1);
        for s in &series[0].samples {
            let inst = vector(instant_query(&db, &expr, s.t_ms).unwrap())[0].1;
            prop_assert_eq!(s.v, inst, "at t={}", s.t_ms);
        }
    }

    /// Arithmetic identities hold on vectors.
    #[test]
    fn vector_arithmetic_identities(vals in proptest::collection::vec(1.0f64..1000.0, 1..8)) {
        let series: Vec<(String, Vec<f64>)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("n{i}"), vec![*v]))
            .collect();
        let db = db_with_series(&series, 15_000);
        let at = 1000;
        // m / m == 1 for every series.
        let v = vector(instant_query(&db, &parse_expr("m / m").unwrap(), at).unwrap());
        prop_assert_eq!(v.len(), vals.len());
        for (_, x) in &v {
            prop_assert!((x - 1.0).abs() < 1e-12);
        }
        // m - m == 0.
        let v = vector(instant_query(&db, &parse_expr("m - m").unwrap(), at).unwrap());
        for (_, x) in &v {
            prop_assert_eq!(*x, 0.0);
        }
        // 2*m == m+m.
        let twice = vector(instant_query(&db, &parse_expr("2 * m").unwrap(), at).unwrap());
        let added = vector(instant_query(&db, &parse_expr("m + m").unwrap(), at).unwrap());
        for (l, x) in &twice {
            let other = added.iter().find(|(l2, _)| l2 == l).unwrap().1;
            prop_assert_eq!(*x, other);
        }
    }

    /// The parser either errors or produces something the evaluator can
    /// process without panicking.
    #[test]
    fn engine_never_panics(query in "[ -~]{0,48}") {
        let db = db_with_series(&[("n1".to_string(), vec![1.0, 2.0])], 15_000);
        if let Ok(expr) = parse_expr(&query) {
            let _ = instant_query(&db, &expr, 30_000);
        }
    }
}
