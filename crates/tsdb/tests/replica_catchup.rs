//! Replica catch-up over HTTP: a follower started empty streams the
//! leader's checkpoint + WAL segments through the Prometheus-style API and
//! ends up answering queries identically to the leader.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ceems_http::{HttpServer, ServerConfig};
use ceems_metrics::labels;
use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;
use ceems_tsdb::httpapi::api_router;
use ceems_tsdb::promql::{instant_query, parse_expr, range_query};
use ceems_tsdb::replica::WalFollower;
use ceems_tsdb::wal::{FsyncMode, WalOptions};
use ceems_tsdb::{Tsdb, TsdbConfig};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceems-replica-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> TsdbConfig {
    TsdbConfig {
        shards: 4,
        retention_ms: i64::MAX,
        query_threads: 2,
        posting_cache_size: 16,
    }
}

fn wal_opts() -> WalOptions {
    WalOptions {
        segment_bytes: 1024, // many small segments: the follower must walk them
        fsync: FsyncMode::Never,
    }
}

fn open_leader(dir: &PathBuf) -> Arc<Tsdb> {
    Arc::new(Tsdb::open(dir, wal_opts(), config()).unwrap())
}

fn serve(db: Arc<Tsdb>) -> HttpServer {
    let router = api_router(db, Arc::new(|| 10_000_000));
    HttpServer::serve(ServerConfig::ephemeral(), router).unwrap()
}

fn ingest(db: &Tsdb, steps: std::ops::Range<i64>) {
    for step in steps {
        let t = step * 15_000;
        let mut batch: Vec<(LabelSet, i64, f64)> = Vec::new();
        for i in 0..5 {
            batch.push((
                labels! {"__name__" => "power", "instance" => format!("n{i}")},
                t,
                200.0 + i as f64 + step as f64,
            ));
        }
        batch.push((labels! {"__name__" => "up", "instance" => "n0"}, t, 1.0));
        db.append_batch(&batch);
    }
}

fn assert_same_answers(follower: &Tsdb, leader: &Tsdb, context: &str) {
    assert_eq!(
        follower.select(&[], i64::MIN, i64::MAX),
        leader.select(&[], i64::MIN, i64::MAX),
        "{context}: dumps differ"
    );
    for q in ["sum(power)", "power", "up"] {
        let expr = parse_expr(q).unwrap();
        assert_eq!(
            instant_query(follower, &expr, 600_000),
            instant_query(leader, &expr, 600_000),
            "{context}: instant {q}"
        );
        assert_eq!(
            range_query(follower, &expr, 0, 600_000, 15_000),
            range_query(leader, &expr, 0, 600_000, 15_000),
            "{context}: range {q}"
        );
    }
}

#[test]
fn empty_follower_catches_up_and_serves_same_results() {
    let leader_dir = temp_dir("leader");
    let leader = open_leader(&leader_dir);
    ingest(&leader, 0..10);
    // Checkpoint mid-history so bootstrap exercises the checkpoint path
    // *and* tailing the segments written after it.
    leader.checkpoint().unwrap();
    ingest(&leader, 10..25);
    leader.delete_series(&[LabelMatcher::eq("instance", "n3")]);
    ingest(&leader, 25..30);
    let server = serve(leader.clone());

    let follower_db = Arc::new(Tsdb::new(config()));
    let mut follower = WalFollower::new(follower_db.clone(), server.base_url());
    follower.bootstrap().unwrap();
    follower.catch_up(50).unwrap();

    assert_same_answers(&follower_db, &leader, "initial catch-up");
    // The follower reports the leader's applied position for LB health.
    let leader_records = leader.wal_position().unwrap().records;
    assert_eq!(follower_db.reported_wal_position().records, leader_records);

    // Leader keeps moving; an incremental catch-up converges again.
    ingest(&leader, 30..40);
    leader.delete_series(&[LabelMatcher::eq("instance", "n1")]);
    follower.catch_up(50).unwrap();
    assert_same_answers(&follower_db, &leader, "incremental catch-up");

    server.shutdown();
    let _ = fs::remove_dir_all(&leader_dir);
}

#[test]
fn durable_follower_survives_its_own_crash() {
    // The follower can itself be WAL-backed: after catch-up, kill it,
    // reopen from its directory, and it still matches the leader.
    let leader_dir = temp_dir("leader2");
    let follower_dir = temp_dir("follower2");
    let leader = open_leader(&leader_dir);
    ingest(&leader, 0..20);
    let server = serve(leader.clone());

    {
        let follower_db = Arc::new(Tsdb::open(&follower_dir, wal_opts(), config()).unwrap());
        let mut follower = WalFollower::new(follower_db.clone(), server.base_url());
        follower.bootstrap().unwrap();
        follower.catch_up(50).unwrap();
        assert_same_answers(&follower_db, &leader, "before follower crash");
    }
    let reopened = Tsdb::open(&follower_dir, wal_opts(), config()).unwrap();
    assert_same_answers(&reopened, &leader, "after follower crash");

    server.shutdown();
    let _ = fs::remove_dir_all(&leader_dir);
    let _ = fs::remove_dir_all(&follower_dir);
}

#[test]
fn gc_behind_follower_auto_resyncs() {
    let leader_dir = temp_dir("leader3");
    let leader = open_leader(&leader_dir);
    ingest(&leader, 0..10);
    let server = serve(leader.clone());

    let follower_db = Arc::new(Tsdb::new(config()));
    let mut follower = WalFollower::new(follower_db.clone(), server.base_url());
    follower.bootstrap().unwrap();
    follower.catch_up(50).unwrap();
    assert_eq!(follower.resyncs(), 0);

    // Leader checkpoints and GCs every segment the follower was tailing.
    // The follower's next fetch gets 410 Gone and it re-bootstraps from
    // the checkpoint on its own, then converges.
    ingest(&leader, 10..20);
    leader.checkpoint().unwrap();
    follower.catch_up(50).unwrap();
    assert_eq!(follower.resyncs(), 1);
    assert_same_answers(&follower_db, &leader, "post-GC auto-resync");

    // The resynced follower keeps tailing normally afterwards.
    ingest(&leader, 20..30);
    follower.catch_up(50).unwrap();
    assert_eq!(follower.resyncs(), 1);
    assert_same_answers(&follower_db, &leader, "post-resync incremental");

    server.shutdown();
    let _ = fs::remove_dir_all(&leader_dir);
}

#[test]
fn follower_refuses_leader_without_wal() {
    let leader = Arc::new(Tsdb::new(config()));
    ingest(&leader, 0..2);
    let server = serve(leader.clone());
    let follower_db = Arc::new(Tsdb::new(config()));
    let follower = WalFollower::new(follower_db, server.base_url());
    assert!(follower.leader_position().is_err());
    server.shutdown();
}

#[test]
fn rate_limited_follower_backs_off_and_still_converges() {
    let leader_dir = temp_dir("leader4");
    let leader = open_leader(&leader_dir);
    // Many 1 KiB segments force a long poll sequence, so a tiny token
    // bucket is guaranteed to fire mid-catch-up.
    ingest(&leader, 0..40);

    let limiter = ceems_tsdb::httpapi::WalFetchLimiter::new(200.0, 2.0);
    let mut opts = ceems_tsdb::httpapi::ApiOptions::new(Arc::new(|| 10_000_000));
    opts.wal_fetch_limit = Some(limiter.clone());
    let router = ceems_tsdb::httpapi::api_router_with(leader.clone(), opts);
    let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();

    let follower_db = Arc::new(Tsdb::new(config()));
    let mut follower = WalFollower::new(follower_db.clone(), server.base_url())
        .with_follower_id("test-follower");
    follower.bootstrap().unwrap();
    follower.catch_up(200).unwrap();

    assert!(
        follower.rate_limited() > 0,
        "expected the leader's token bucket to shed some fetches"
    );
    assert!(limiter.throttled_counter().get() >= follower.rate_limited() as f64);
    assert_same_answers(&follower_db, &leader, "rate-limited catch-up");

    server.shutdown();
    let _ = fs::remove_dir_all(&leader_dir);
}
