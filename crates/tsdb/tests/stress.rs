//! Stress test of the parallel read path and the generation-checked posting
//! cache under series churn.
//!
//! Writers, cached readers, a deleter and a retention enforcer hammer one
//! `Tsdb` concurrently; afterwards we assert that no stable sample was lost
//! and that the posting cache agrees exactly with the live index — a cached
//! regex resolution must never surface a series deleted (or resurrect one
//! created) after the entry was computed.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ceems_metrics::labels::{LabelSet, LabelSetBuilder};
use ceems_metrics::matcher::{LabelMatcher, MatchOp};
use ceems_tsdb::{Tsdb, TsdbConfig};
use proptest::prelude::*;

fn labels_for(name: &str, instance: &str) -> LabelSet {
    LabelSetBuilder::new()
        .label("__name__", name)
        .label("instance", instance)
        .build()
}

fn instances(series: &[ceems_tsdb::SeriesData]) -> BTreeSet<String> {
    series
        .iter()
        .map(|s| s.labels.get("instance").unwrap().to_string())
        .collect()
}

#[test]
fn stress_concurrent_append_select_delete_retention() {
    let db = Arc::new(Tsdb::new(TsdbConfig {
        shards: 8,
        // Retention cutoff used below is 150_000 - 100_000 = 50_000:
        // victim samples (t <= 10_000) get reaped, stable samples
        // (t >= 10_000_000) never do.
        retention_ms: 100_000,
        query_threads: 4,
        posting_cache_size: 64,
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let stable_re = LabelMatcher::new("instance", MatchOp::Re, "stable-.*").unwrap();
    let victim_re = LabelMatcher::new("instance", MatchOp::Re, "victim-.*").unwrap();

    let stable_appended: u64 = crossbeam::thread::scope(|s| {
        // 4 writers × 25 stable series, disjoint, strictly increasing
        // timestamps: every append must survive to the end.
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let db = db.clone();
                let stop = stop.clone();
                s.spawn(move |_| {
                    let labels: Vec<LabelSet> = (0..25)
                        .map(|i| labels_for("stress_metric", &format!("stable-w{w}-n{i}")))
                        .collect();
                    let mut t = 10_000_000i64;
                    let mut appended = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        t += 1000;
                        for l in &labels {
                            db.append(l, t, t as f64);
                            appended += 1;
                        }
                    }
                    appended
                })
            })
            .collect();

        // Churn writer: victim series at pre-cutoff timestamps, constantly
        // recreated after the deleter / retention reap them.
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..20 {
                        db.append(&labels_for("victim_metric", &format!("victim-{i}")), 1000, 1.0);
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Deleter: targeted tombstones against victims.
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move |_| {
                let mut round = 0;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    db.delete_series(&[LabelMatcher::eq(
                        "instance",
                        format!("victim-{}", round % 20),
                    )]);
                    std::thread::yield_now();
                }
            });
        }
        // Retention enforcer: reaps everything before t=50_000.
        {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    db.enforce_retention(150_000);
                    std::thread::yield_now();
                }
            });
        }
        // 2 cached readers: regex selects keep the posting cache hot while
        // membership churns under them.
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            let stable_re = stable_re.clone();
            let victim_re = victim_re.clone();
            s.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    let stable = db.select(std::slice::from_ref(&stable_re), 0, i64::MAX);
                    // A stable series can never vanish: anything selected is
                    // non-empty and internally ordered.
                    for series in &stable {
                        assert!(!series.samples.is_empty());
                        assert!(series.samples.windows(2).all(|w| w[0].t_ms < w[1].t_ms));
                    }
                    let _ = db.select(std::slice::from_ref(&victim_re), 0, i64::MAX);
                    let _ = db.label_values("instance");
                }
            });
        }

        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        writers
            .into_iter()
            .map(|h| h.join().expect("writer panicked"))
            .sum()
    })
    .expect("stress scope");

    // No lost stable samples: every appended sample is still selectable.
    let stable = db.select(std::slice::from_ref(&stable_re), 0, i64::MAX);
    assert_eq!(stable.len(), 100, "all stable series survive churn");
    let total: u64 = stable.iter().map(|s| s.samples.len() as u64).sum();
    assert_eq!(total, stable_appended, "no stable sample lost");
    assert_eq!(db.out_of_order_dropped(), 0);

    // Cache coherence after churn: the (cached) regex resolution must agree
    // with an exact-matcher resolution, which bypasses the cache entirely.
    for (re, name) in [(&stable_re, "stress_metric"), (&victim_re, "victim_metric")] {
        let via_cache = db.select(std::slice::from_ref(re), 0, i64::MAX);
        let via_index = db.select(&[LabelMatcher::eq("__name__", name)], 0, i64::MAX);
        assert_eq!(
            instances(&via_cache),
            instances(&via_index),
            "posting cache diverged from index for {name}"
        );
    }
    // And repeat queries actually hit the cache.
    let before = db.posting_cache_stats();
    let again = db.select(&[stable_re], 0, i64::MAX);
    assert_eq!(instances(&again), instances(&stable));
    assert!(db.posting_cache_stats().hits > before.hits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-checked generation counter: after every create/delete/retention
    /// step, a cached regex select returns exactly the model's live set —
    /// the cache is observationally transparent.
    #[test]
    fn posting_cache_transparent_under_churn(
        ops in proptest::collection::vec((0u8..4, 0u8..8), 1..60)
    ) {
        let db = Tsdb::new(TsdbConfig {
            retention_ms: 1_000,
            posting_cache_size: 8,
            ..TsdbConfig::default()
        });
        let re = LabelMatcher::new("instance", MatchOp::Re, "i[0-9]+").unwrap();
        // Model: last appended timestamp per live instance.
        let mut live: std::collections::BTreeMap<u8, i64> = std::collections::BTreeMap::new();
        let mut t = 1_000_000i64;
        for (op, i) in ops {
            match op {
                // Weighted 2:1 toward appends so series exist to delete.
                0 | 1 => {
                    t += 1000;
                    db.append(&labels_for("m", &format!("i{i}")), t, f64::from(i));
                    live.insert(i, t);
                }
                2 => {
                    db.delete_series(&[LabelMatcher::eq("instance", format!("i{i}"))]);
                    live.remove(&i);
                }
                _ => {
                    // Cutoff is t - 1_000: a series is reaped exactly when
                    // its newest sample predates the cutoff.
                    db.enforce_retention(t);
                    live.retain(|_, last| *last >= t - 1_000);
                }
            }
            let got = instances(&db.select(std::slice::from_ref(&re), 0, i64::MAX));
            let want: BTreeSet<String> = live.keys().map(|i| format!("i{i}")).collect();
            prop_assert_eq!(got, want, "cache/index divergence after op {} on i{}", op, i);
        }
    }
}
