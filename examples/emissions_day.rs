//! Experiment E9: how the emission-factor source changes reported CO₂e.
//!
//! §II.A.c: emission factors follow the live energy mix, so the same kWh
//! consumed at different hours carries different emissions, and a static
//! yearly factor (OWID) can disagree with real-time feeds (RTE,
//! Electricity Maps). This example runs the same 1 kW workload through a
//! simulated day and prints per-hour and total gCO₂e per provider.
//!
//! ```sh
//! cargo run --release --example emissions_day
//! ```

use std::sync::Arc;

use ceems::emissions::emaps::{EMapsProvider, EMapsService};
use ceems::emissions::owid::OwidStatic;
use ceems::emissions::rte::RteSimulated;
use ceems::emissions::{EmissionProvider, EmissionsCalculator};

fn main() {
    let service = Arc::new(EMapsService::new("token", 10_000));
    let providers: Vec<(&str, Arc<dyn EmissionProvider>)> = vec![
        ("owid (static)", Arc::new(OwidStatic)),
        ("rte (real-time)", Arc::new(RteSimulated::default())),
        ("emaps (real-time)", Arc::new(EMapsProvider::new(service, "token"))),
    ];

    println!("emission factor for FR through one simulated day (gCO2e/kWh):\n");
    println!("{:<6} {:>14} {:>14} {:>16}", "HOUR", "owid", "rte", "emaps");
    for hour in (0..24).step_by(2) {
        let t = hour * 3_600_000;
        let row: Vec<String> = providers
            .iter()
            .map(|(_, p)| {
                p.factor("FR", t)
                    .map(|f| format!("{f:.1}"))
                    .unwrap_or("-".into())
            })
            .collect();
        println!("{hour:<6} {:>14} {:>14} {:>16}", row[0], row[1], row[2]);
    }

    // Integrate a constant 1 kW load over the day with each provider.
    let trace: Vec<(i64, f64)> = (0..=(24 * 60)).map(|m| (m * 60_000, 1000.0)).collect();
    println!("\nsame 24 kWh (1 kW × 24 h) accounted per provider:");
    for (name, p) in &providers {
        let calc = EmissionsCalculator::new(p.clone(), "FR");
        let g = calc.integrate_trace(&trace).unwrap();
        println!("  {name:<18} {g:>9.1} gCO2e");
    }

    // The scheduling-for-carbon argument: run the same 4 kWh burst at night
    // versus at the evening peak under the real-time provider.
    let rte = Arc::new(RteSimulated::default());
    let calc = EmissionsCalculator::new(rte, "FR");
    let burst = |start_h: i64| -> f64 {
        let trace: Vec<(i64, f64)> = (0..=240)
            .map(|m| (start_h * 3_600_000 + m * 60_000, 1000.0))
            .collect();
        calc.integrate_trace(&trace).unwrap()
    };
    let night = burst(3);
    let peak = burst(17);
    println!(
        "\n4 kWh burst under RTE factors: 03:00 → {night:.1} g, 17:00 → {peak:.1} g ({:+.0}% at the peak)",
        (peak / night - 1.0) * 100.0
    );

    // Cross-country comparison for the same energy (static factors).
    println!("\nsame 24 kWh in other grids (OWID static):");
    for zone in ["FR", "SE", "DE", "PL", "US"] {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), zone);
        let g = calc.emissions_g(24.0 * 3.6e6, 0).unwrap();
        println!("  {zone}: {:>8.0} gCO2e", g);
    }
}
