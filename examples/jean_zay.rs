//! Experiment E6: the §III deployment at Jean-Zay scale.
//!
//! Builds the 1,400-node heterogeneous fleet (>3,500 GPUs across V100/A100/
//! H100 partitions with both IPMI wirings), drives it with a realistic job
//! churn, and reports the monitoring pipeline's sustained throughput: nodes
//! scraped, samples ingested, series cardinality, rule evaluation volume,
//! and wall-clock cost per simulated step.
//!
//! ```sh
//! cargo run --release --example jean_zay -- --minutes 10
//! ```

use std::time::Instant;

use ceems::prelude::*;

fn main() {
    let minutes: f64 = std::env::args()
        .skip_while(|a| a != "--minutes")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    let cfg = CeemsConfig {
        cluster: ClusterSpec::jean_zay(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8),
        churn: Some(ChurnSettings {
            users: 300,
            projects: 60,
            // The abstract cites a daily churn in the thousands; this
            // arrival rate yields ~10k jobs/day.
            arrivals_per_hour: 420.0,
        }),
        cleanup_cutoff_s: 120.0,
        ..CeemsConfig::default()
    };

    let dir = std::env::temp_dir().join(format!("ceems-jz-{}", std::process::id()));
    println!(
        "building Jean-Zay-like fleet: {} nodes, {} GPUs...",
        cfg.cluster.total_nodes(),
        cfg.cluster.total_gpus()
    );
    let started = Instant::now();
    let mut stack = CeemsStack::build(cfg, &dir).expect("stack builds");
    println!("built in {:.2?}\n", started.elapsed());

    let step_s = 15.0;
    let steps = (minutes * 60.0 / step_s) as usize;
    let mut scrape_wall = std::time::Duration::ZERO;
    for i in 0..steps {
        let t0 = Instant::now();
        stack.advance(step_s);
        scrape_wall += t0.elapsed();
        if (i + 1) % 20 == 0 {
            let st = stack.stats();
            println!(
                "t={:>5.0}s  jobs={:<6} running={:<5} series={:<8} samples={:<10} wall/step={:.1?}",
                stack.clock.now_secs(),
                st.jobs_submitted,
                stack.scheduler.lock().running_count(),
                stack.tsdb.series_count(),
                st.samples_scraped,
                scrape_wall / 20,
            );
            scrape_wall = std::time::Duration::ZERO;
        }
    }

    let st = stack.stats();
    let sim_s = stack.clock.now_secs();
    println!("\n=== Jean-Zay scale summary ({sim_s:.0} simulated seconds) ===");
    println!("nodes monitored:        {}", stack.cluster.len());
    println!("jobs submitted:         {}", st.jobs_submitted);
    println!("scrape passes:          {} (0 failures: {})", st.scrape_passes, st.scrape_failures == 0);
    println!("samples ingested:       {}", st.samples_scraped);
    println!(
        "ingest rate:            {:.0} samples/simulated-second",
        st.samples_scraped as f64 / sim_s
    );
    println!("live series:            {}", stack.tsdb.series_count());
    println!(
        "TSDB compressed size:   {:.1} MiB",
        stack.tsdb.storage_bytes() as f64 / (1 << 20) as f64
    );
    println!("rule series written:    {}", st.rule_series_written);
    println!(
        "attributed job power:   {:.1} kW (fleet ground truth {:.1} kW)",
        stack.total_attributed_power() / 1000.0,
        stack.cluster.total_wall_power() / 1000.0
    );
    println!(
        "total wall-clock:       {:.2?} for {:.0} simulated seconds",
        started.elapsed(),
        sim_s
    );

    std::fs::remove_dir_all(dir).ok();
}
