//! Experiment E7 (qualitative half): the load balancer's access control.
//!
//! §II.B.c: nothing stops a Grafana user from querying someone else's
//! metrics straight from Prometheus; the CEEMS LB closes that hole. This
//! example stands up TSDB replicas + API server + LB over real HTTP and
//! shows the allowed/denied matrix, then demonstrates both balancing
//! strategies.
//!
//! ```sh
//! cargo run --release --example lb_access_control
//! ```

use std::sync::Arc;

use ceems::http::Client;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router;

fn main() {
    // A small stack generates real monitored data.
    let mut stack = CeemsStack::build_default();
    for (user, cores) in [("alice", 8), ("bob", 16)] {
        stack
            .submit(JobRequest {
                user: user.into(),
                account: "demo".into(),
                partition: "cpu-intel".into(),
                nodes: 1,
                cores_per_node: cores,
                memory_per_node: 8 << 30,
                gpus_per_node: 0,
                walltime_s: 7200,
                workload: WorkloadProfile::CpuBound { intensity: 0.9 },
            })
            .unwrap();
    }
    stack.run_for(300.0, 15.0);
    println!(
        "monitoring data ready: {} series (alice owns slurm-1, bob owns slurm-2)\n",
        stack.tsdb.series_count()
    );

    // Two "Prometheus replicas" serving the same TSDB over HTTP.
    let now = stack.clock.now_ms();
    let tsdb = stack.tsdb.clone();
    let mk_replica = || {
        ceems::http::HttpServer::serve(
            ceems::http::ServerConfig::ephemeral(),
            api_router(tsdb.clone(), Arc::new(move || now)),
        )
        .unwrap()
    };
    let replica1 = mk_replica();
    let replica2 = mk_replica();

    // The LB checks ownership directly against the API server's DB.
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![
                Backend::new("replica-1", replica1.base_url()),
                Backend::new("replica-2", replica2.base_url()),
            ],
            Strategy::round_robin(),
        ),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["operator".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();
    println!("LB listening at {} in front of 2 replicas\n", lb_srv.base_url());

    let query = |user: &str, q: &str| -> (u16, String) {
        let url = format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component(q)
        );
        let resp = Client::new()
            .with_header("X-Grafana-User", user)
            .get(&url)
            .unwrap();
        (resp.status.0, resp.body_string())
    };

    println!("{:<10} {:<55} {:>8}", "USER", "QUERY", "RESULT");
    for (user, q) in [
        ("alice", "uuid:ceems_power:watts{uuid=\"slurm-1\"}"),
        ("alice", "uuid:ceems_power:watts{uuid=\"slurm-2\"}"),
        ("bob", "uuid:ceems_power:watts{uuid=\"slurm-2\"}"),
        ("alice", "sum(uuid:ceems_power:watts)"),
        ("alice", "uuid:ceems_power:watts{uuid=~\"slurm-.*\"}"),
        ("operator", "sum(uuid:ceems_power:watts)"),
    ] {
        let (code, _) = query(user, q);
        let verdict = match code {
            200 => "200 OK",
            403 => "403 DENY",
            other => {
                println!("unexpected status {other}");
                "?"
            }
        };
        println!("{user:<10} {q:<55} {verdict:>8}");
    }

    // Balancing: round-robin alternates replicas.
    println!("\nround-robin backend assignment for 6 admin queries:");
    let mut assignment = Vec::new();
    for _ in 0..6 {
        let url = format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component("sum(up)")
        );
        let resp = Client::new()
            .with_header("X-Grafana-User", "operator")
            .get(&url)
            .unwrap();
        assignment.push(
            resp.header("x-ceems-lb-backend")
                .unwrap_or("?")
                .to_string(),
        );
    }
    println!("  {}", assignment.join(" → "));

    lb_srv.shutdown();
    replica1.shutdown();
    replica2.shutdown();
}
