//! Resource-manager agnosticism (§IV future work, implemented): the same
//! CEEMS API server ingesting SLURM jobs *and* OpenStack VMs side by side
//! through the unified compute-unit schema.
//!
//! ```sh
//! cargo run --release --example openstack_cloud
//! ```

use std::sync::Arc;

use ceems::apiserver::metrics_source::TsdbLocalSource;
use ceems::apiserver::openstack::OpenStackSim;
use ceems::apiserver::schema::{unit_cols, UNITS_TABLE};
use ceems::apiserver::updater::{Updater, UpdaterConfig};
use ceems::relstore::{Aggregate, Db, Filter};
use ceems::tsdb::Tsdb;

fn main() {
    // A Nova cloud churning VMs for six simulated hours.
    let cloud = Arc::new(OpenStackSim::new(12, 4, 240.0, 2024));
    for minute in 0..(6 * 60) {
        cloud.tick(minute * 60_000);
    }
    println!(
        "simulated cloud: {} VMs created, {} currently ACTIVE",
        cloud.vm_count(),
        cloud.active_count()
    );

    // The standard CEEMS updater, pointed at OpenStack instead of SLURM —
    // no other change.
    let dir = std::env::temp_dir().join(format!("ceems-oscloud-{}", std::process::id()));
    let mut updater = Updater::new(
        Db::open(&dir).unwrap(),
        Arc::new(cloud.clone()),
        Arc::new(TsdbLocalSource::new(Arc::new(Tsdb::default()))),
        None,
        UpdaterConfig::default(),
    )
    .unwrap();
    updater.poll(6 * 3_600_000).unwrap();

    let db = updater.db();
    println!(
        "API server ingested {} compute units (resource_manager=openstack)\n",
        db.table(UNITS_TABLE).unwrap().len()
    );

    // Per-project inventory from the same aggregation path SLURM uses.
    let rows = db
        .aggregate(
            UNITS_TABLE,
            &Filter::True,
            &["project", "state"],
            &[Aggregate::Count, Aggregate::Sum("ncpus".into())],
        )
        .unwrap();
    println!("{:<12} {:<12} {:>8} {:>8}", "PROJECT", "STATE", "VMS", "VCPUS");
    for r in rows {
        println!(
            "{:<12} {:<12} {:>8} {:>8}",
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].as_real().unwrap_or(0.0)
        );
    }

    // Ownership semantics identical to SLURM units.
    let sample = db
        .query(UNITS_TABLE, &ceems::relstore::Query::all().limit(1))
        .unwrap();
    let owner = sample[0][unit_cols::USER].as_text().unwrap();
    let uuid = sample[0][unit_cols::UUID].as_text().unwrap();
    println!(
        "\nverify({owner}, {uuid}) = {}, verify(intruder, {uuid}) = {}",
        updater.verify_ownership(owner, uuid),
        updater.verify_ownership("intruder", uuid),
    );

    std::fs::remove_dir_all(dir).ok();
}
