//! The operator's side of Fig. 2 (§III.B): "Cluster operators can have
//! similar data available to them, albeit, for the entire cluster. This
//! enables the operators to perform data analysis on the job metrics data
//! to optimize the cluster usage, identify users and/or projects that are
//! using the cluster resources inefficiently."
//!
//! This example runs a churny cluster for a while, then produces the
//! operator report: fleet totals, energy by project, and the inefficiency
//! hunt — jobs holding many cores at low utilisation, and their wasted
//! energy.
//!
//! ```sh
//! cargo run --release --example operator_report -- --minutes 45
//! ```

use ceems::apiserver::schema::{unit_cols, UNITS_TABLE};
use ceems::prelude::*;
use ceems::relstore::{Aggregate, Filter, Query};

fn main() {
    let minutes: f64 = std::env::args()
        .skip_while(|a| a != "--minutes")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(45.0);

    let mut cfg = CeemsConfig {
        churn: Some(ChurnSettings {
            users: 16,
            projects: 5,
            arrivals_per_hour: 240.0,
        }),
        ..CeemsConfig::default()
    };
    cfg.cluster.intel_nodes = 8;
    cfg.cluster.amd_nodes = 4;
    cfg.cluster.a100_nodes = 2;
    let dir = std::env::temp_dir().join(format!("ceems-op-{}", std::process::id()));
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    println!("running {minutes:.0} simulated minutes of churn...");
    stack.run_for(minutes * 60.0, 15.0);

    let st = stack.stats();
    println!(
        "\n=== fleet report (t = {:.0} s) ===",
        stack.clock.now_secs()
    );
    println!(
        "nodes: {}   jobs submitted: {}   running now: {}",
        stack.cluster.len(),
        st.jobs_submitted,
        stack.scheduler.lock().running_count()
    );
    println!(
        "fleet wall power (ground truth): {:.1} kW   attributed to jobs: {:.1} kW",
        stack.cluster.total_wall_power() / 1000.0,
        stack.total_attributed_power() / 1000.0
    );

    let upd = stack.updater.lock();

    // Energy by project.
    println!("\n--- energy by project ---");
    let rows = upd
        .db()
        .aggregate(
            UNITS_TABLE,
            &Filter::True,
            &["project"],
            &[
                Aggregate::Count,
                Aggregate::Sum("total_energy_kwh".into()),
                Aggregate::Sum("total_emissions_g".into()),
                Aggregate::Avg("avg_cpu_usage_pct".into()),
            ],
        )
        .unwrap();
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>10}",
        "PROJECT", "UNITS", "ENERGY-KWH", "EMISSIONS-G", "AVG-CPU%"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>12.4} {:>12.1} {:>10}",
            r[0].to_string(),
            r[1].to_string(),
            r[2].as_real().unwrap_or(0.0),
            r[3].as_real().unwrap_or(0.0),
            r[4].as_real()
                .map(|v| format!("{v:.1}"))
                .unwrap_or("-".into()),
        );
    }

    // The inefficiency hunt: finished/running units with ≥8 cores below
    // 20% average CPU (the "idle allocation" anti-pattern).
    println!("\n--- inefficient allocations (≥8 cores, <20% avg CPU) ---");
    let units = upd
        .db()
        .query(
            UNITS_TABLE,
            &Query::all().filter(Filter::And(vec![
                Filter::Ge("ncpus".into(), ceems::relstore::Value::Int(8)),
                Filter::Lt(
                    "avg_cpu_usage_pct".into(),
                    ceems::relstore::Value::Real(20.0),
                ),
                Filter::Gt(
                    "avg_cpu_usage_pct".into(),
                    ceems::relstore::Value::Real(0.0),
                ),
            ])),
        )
        .unwrap();
    println!(
        "{:<14} {:<10} {:>6} {:>9} {:>12} {:>14}",
        "UUID", "USER", "CPUS", "AVG-CPU%", "ENERGY-KWH", "WASTE-EST-KWH"
    );
    let mut wasted_total = 0.0;
    for r in units.iter().take(12) {
        let cpus = r[unit_cols::NCPUS].as_real().unwrap_or(0.0);
        let cpu_pct = r[unit_cols::AVG_CPU_USAGE].as_real().unwrap_or(0.0);
        let kwh = r[unit_cols::ENERGY_KWH].as_real().unwrap_or(0.0);
        // Rough waste estimate: energy share proportional to unused cores.
        let waste = kwh * (1.0 - cpu_pct / 100.0);
        wasted_total += waste;
        println!(
            "{:<14} {:<10} {:>6} {:>9.1} {:>12.4} {:>14.4}",
            r[unit_cols::UUID].to_string(),
            r[unit_cols::USER].to_string(),
            cpus,
            cpu_pct,
            kwh,
            waste
        );
    }
    if units.is_empty() {
        println!("(none found in this run — raise --minutes for more churn)");
    } else {
        println!(
            "\n{} inefficient units; ≈{wasted_total:.3} kWh attributable to idle allocation",
            units.len()
        );
    }
    drop(upd);
    std::fs::remove_dir_all(dir).ok();
}
