//! Quickstart: bring up a small CEEMS deployment, run a few jobs, and read
//! their energy/emissions back from the API server.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ceems::prelude::*;

fn main() {
    let mut stack = CeemsStack::build_default();
    println!(
        "built stack: {} nodes ({} exporters), partitions via SLURM sim",
        stack.cluster.len(),
        stack.exporters.len()
    );

    // Submit three jobs of different shapes.
    for (user, partition, cores, gpus, workload) in [
        (
            "alice",
            "cpu-intel",
            16,
            0,
            WorkloadProfile::CpuBound { intensity: 0.92 },
        ),
        (
            "bob",
            "cpu-amd",
            32,
            0,
            WorkloadProfile::MemoryBound { resident: 0.8 },
        ),
        (
            "carol",
            "gpu-a100",
            8,
            4,
            WorkloadProfile::GpuTraining {
                intensity: 0.9,
                period_s: 600.0,
            },
        ),
    ] {
        let id = stack
            .submit(JobRequest {
                user: user.into(),
                account: "demo".into(),
                partition: partition.into(),
                nodes: 1,
                cores_per_node: cores,
                memory_per_node: 32 << 30,
                gpus_per_node: gpus,
                walltime_s: 7200,
                workload,
            })
            .expect("job fits");
        println!("submitted slurm-{id} for {user} on {partition}");
    }

    // Run 20 simulated minutes (the wall-clock cost is a second or two).
    stack.run_for(1200.0, 15.0);

    let stats = stack.stats();
    println!(
        "\nafter 20 simulated minutes: {} scrape passes, {} samples, {} rule series, {} TSDB series",
        stats.scrape_passes,
        stats.samples_scraped,
        stats.rule_series_written,
        stack.tsdb.series_count()
    );
    println!(
        "total attributed job power right now: {:.0} W\n",
        stack.total_attributed_power()
    );

    // What each user would see in their dashboard.
    let updater = stack.updater.lock();
    for user in ["alice", "bob", "carol"] {
        print!("{}", dashboards::render_user_overview(&updater, user));
    }
    println!("\n{}", dashboards::render_job_list(&updater, "carol"));
    drop(updater);

    println!(
        "{}",
        dashboards::render_job_timeseries(
            stack.tsdb.as_ref(),
            "slurm-1",
            120_000,
            stack.clock.now_ms(),
            30_000,
        )
    );
}
