//! Fig. 2 reproduction (experiments E1–E3): renders the three Grafana
//! dashboards of the paper from a simulated monitoring history — a user's
//! aggregate usage (2a), their job list with per-job aggregates (2b) and
//! the time-series CPU metrics of one job (2c).
//!
//! The paper shows 3 months of history; to keep this example interactive it
//! simulates a configurable window (default 2 hours — pass `--hours N` for
//! more; the shape of the panels is identical, only totals scale).
//!
//! ```sh
//! cargo run --release --example user_dashboard -- --hours 2
//! ```

use ceems::prelude::*;

fn main() {
    let hours: f64 = std::env::args()
        .skip_while(|a| a != "--hours")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let cfg = CeemsConfig {
        churn: Some(ChurnSettings {
            users: 8,
            projects: 3,
            arrivals_per_hour: 120.0,
        }),
        ..CeemsConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("ceems-dash-{}", std::process::id()));
    let mut stack = CeemsStack::build(cfg, &dir).expect("stack builds");

    println!("simulating {hours} h of churn on {} nodes...", stack.cluster.len());
    stack.run_for(hours * 3600.0, 15.0);
    let stats = stack.stats();
    println!(
        "done: {} jobs submitted, {} samples ingested, {} series live\n",
        stats.jobs_submitted,
        stats.samples_scraped,
        stack.tsdb.series_count()
    );

    // Pick the user with the most finished units for an interesting panel.
    let updater = stack.updater.lock();
    let usage = updater
        .db()
        .query(ceems::apiserver::schema::USAGE_TABLE, &ceems::relstore::Query::all())
        .unwrap();
    let busiest = usage
        .iter()
        .max_by_key(|r| r[ceems::apiserver::schema::usage_cols::NUM_UNITS].as_int())
        .map(|r| {
            r[ceems::apiserver::schema::usage_cols::USER]
                .as_text()
                .unwrap()
                .to_string()
        })
        .unwrap_or_else(|| "user000".to_string());

    // --- Fig. 2a ---------------------------------------------------------
    println!("=== Fig. 2a — aggregate usage metrics ===");
    print!("{}", dashboards::render_user_overview(&updater, &busiest));

    // --- Fig. 2b ---------------------------------------------------------
    println!("\n=== Fig. 2b — SLURM jobs with aggregate metrics ===");
    let list = dashboards::render_job_list(&updater, &busiest);
    // Show at most 15 rows.
    for line in list.lines().take(16) {
        println!("{line}");
    }

    // The uuid of the user's longest unit, for the time-series panel.
    let units = updater
        .db()
        .query(
            ceems::apiserver::schema::UNITS_TABLE,
            &ceems::relstore::Query::all().filter(ceems::relstore::Filter::Eq(
                "user".into(),
                busiest.as_str().into(),
            )),
        )
        .unwrap();
    let longest = units
        .iter()
        .max_by(|a, b| {
            let ea = a[ceems::apiserver::schema::unit_cols::ELAPSED_S]
                .as_real()
                .unwrap_or(0.0);
            let eb = b[ceems::apiserver::schema::unit_cols::ELAPSED_S]
                .as_real()
                .unwrap_or(0.0);
            ea.total_cmp(&eb)
        })
        .map(|r| {
            r[ceems::apiserver::schema::unit_cols::UUID]
                .as_text()
                .unwrap()
                .to_string()
        })
        .expect("user has units");
    drop(updater);

    // --- Fig. 2c ---------------------------------------------------------
    println!("\n=== Fig. 2c — time series CPU metrics of {longest} ===");
    println!(
        "{}",
        dashboards::render_job_timeseries(
            stack.tsdb.as_ref(),
            &longest,
            0,
            stack.clock.now_ms(),
            (stack.clock.now_ms() / 60).max(30_000),
        )
    );

    std::fs::remove_dir_all(dir).ok();
}
