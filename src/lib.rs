#![warn(missing_docs)]
//! # CEEMS — Compute Energy & Emissions Monitoring Stack (Rust reproduction)
//!
//! A from-scratch reproduction of *"CEEMS: A Resource Manager Agnostic
//! Energy and Emissions Monitoring Stack"* (Paipuri, SC-W 2024): real-time
//! per-workload energy and CO₂e reporting for HPC/cloud platforms, plus
//! every substrate the original delegates to Prometheus, Thanos, SQLite,
//! Litestream, SLURM and the node hardware.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`ceems_metrics`] | metric model, text exposition format, label matching |
//! | [`ceems_http`] | threaded HTTP/1.1 server/client, basic auth |
//! | [`ceems_obs`] | self-monitoring: process registries, query tracing, slow-query log |
//! | [`ceems_relstore`] | embedded relational store + WAL + Litestream-style backup |
//! | [`ceems_simnode`] | simulated nodes: RAPL, IPMI-DCMI, cgroups, GPUs |
//! | [`ceems_slurm`] | batch scheduler + accounting (slurmdbd) simulation |
//! | [`ceems_emissions`] | OWID / RTE / Electricity Maps emission factors |
//! | [`ceems_tsdb`] | Gorilla-compressed TSDB, PromQL subset, recording rules, Thanos-like long-term store |
//! | [`ceems_exporter`] | the per-node CEEMS exporter and its collectors |
//! | [`ceems_apiserver`] | the CEEMS API server: unit DB, rollups, ownership |
//! | [`ceems_lb`] | the access-controlled load balancer |
//! | [`ceems_qfe`] | query frontend: range splitting, results cache, tenant QoS |
//! | [`ceems_alertsrv`] | alerting: PromQL rules, alert DAGs, dedup/silence/routing, durable state |
//! | [`ceems_stream`] | streaming ingest bus: push frames, ack/resume, replay rings, live fan-out |
//! | [`ceems_core`] | Eq. (1) attribution rules, YAML config, stack wiring, dashboards |
//!
//! ## Quickstart
//!
//! ```
//! use ceems::prelude::*;
//!
//! let mut stack = CeemsStack::build_default();
//! stack.submit(JobRequest {
//!     user: "alice".into(),
//!     account: "proj".into(),
//!     partition: "cpu-intel".into(),
//!     nodes: 1,
//!     cores_per_node: 8,
//!     memory_per_node: 16 << 30,
//!     gpus_per_node: 0,
//!     walltime_s: 3600,
//!     workload: WorkloadProfile::CpuBound { intensity: 0.9 },
//! }).unwrap();
//! stack.run_for(300.0, 15.0);
//! assert!(stack.total_attributed_power() > 0.0);
//! ```

pub use ceems_alertsrv as alertsrv;
pub use ceems_apiserver as apiserver;
pub use ceems_core as core;
pub use ceems_emissions as emissions;
pub use ceems_exporter as exporter;
pub use ceems_http as http;
pub use ceems_lb as lb;
pub use ceems_metrics as metrics;
pub use ceems_obs as obs;
pub use ceems_qfe as qfe;
pub use ceems_relstore as relstore;
pub use ceems_simnode as simnode;
pub use ceems_slurm as slurm;
pub use ceems_stream as stream;
pub use ceems_tsdb as tsdb;

/// The common imports for building and driving a stack.
pub mod prelude {
    pub use ceems_core::config::{CeemsConfig, ChurnSettings};
    pub use ceems_core::dashboards;
    pub use ceems_core::{CeemsStack, NodeGroup};
    pub use ceems_simnode::{ClusterSpec, SimClock, SimCluster, WorkloadProfile};
    pub use ceems_slurm::{JobRequest, JobState, Partition, Scheduler};
    pub use ceems_tsdb::{Tsdb, TsdbConfig};
}
