//! The `ceems` command-line tool: drive a simulated CEEMS deployment from
//! a single YAML configuration file (§II.D), inspect the generated
//! recording rules, and render the Fig. 2 dashboards.
//!
//! ```text
//! ceems simulate [--config FILE] [--minutes N]   run a monitored cluster
//! ceems rules [--group NAME]                     print Eq. (1) recording rules
//! ceems config-example                           print a sample config file
//! ceems help
//! ```


use ceems::core::attribution::{rules_for_group, NodeGroup};
use ceems::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    match cmd {
        "simulate" => simulate(flag("--config"), flag("--minutes")),
        "rules" => rules(flag("--group")),
        "config-example" => print!("{}", SAMPLE_CONFIG),
        _ => help(),
    }
}

fn help() {
    println!(
        "ceems — Compute Energy & Emissions Monitoring Stack (simulated)\n\n\
         USAGE:\n  ceems simulate [--config FILE] [--minutes N]\n  \
         ceems rules [--group intel-dram|amd-nodram|gpu-typea|gpu-typeb]\n  \
         ceems config-example\n"
    );
}

fn load_config(path: Option<String>) -> CeemsConfig {
    match path {
        None => CeemsConfig {
            churn: Some(ChurnSettings {
                users: 12,
                projects: 4,
                arrivals_per_hour: 180.0,
            }),
            ..CeemsConfig::default()
        },
        Some(p) => {
            let text = std::fs::read_to_string(&p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                std::process::exit(1);
            });
            CeemsConfig::from_yaml(&text).unwrap_or_else(|e| {
                eprintln!("bad config {p}: {e}");
                std::process::exit(1);
            })
        }
    }
}

fn simulate(config_path: Option<String>, minutes: Option<String>) {
    let minutes: f64 = minutes.and_then(|m| m.parse().ok()).unwrap_or(15.0);
    let cfg = load_config(config_path);
    let dir = std::env::temp_dir().join(format!("ceems-cli-{}", std::process::id()));
    println!(
        "building stack: {} nodes, {} GPUs, providers {:?}",
        cfg.cluster.total_nodes(),
        cfg.cluster.total_gpus(),
        cfg.emission_providers
    );
    let mut stack = CeemsStack::build(cfg, &dir).unwrap_or_else(|e| {
        eprintln!("stack build failed: {e}");
        std::process::exit(1);
    });

    let step = 15.0;
    let steps = (minutes * 60.0 / step) as usize;
    for i in 0..steps {
        stack.advance(step);
        if (i + 1) % 20 == 0 || i + 1 == steps {
            let st = stack.stats();
            println!(
                "t={:>6.0}s jobs={:<5} running={:<4} series={:<7} samples={:<9} power={:.1} kW",
                stack.clock.now_secs(),
                st.jobs_submitted,
                stack.scheduler.lock().running_count(),
                stack.tsdb.series_count(),
                st.samples_scraped,
                stack.total_attributed_power() / 1000.0,
            );
        }
    }

    // Closing report: top users by energy.
    println!("\n=== energy by user (API server rollups) ===");
    let upd = stack.updater.lock();
    let mut rows = upd
        .db()
        .query(
            ceems::apiserver::schema::USAGE_TABLE,
            &ceems::relstore::Query::all(),
        )
        .unwrap_or_default();
    rows.sort_by(|a, b| {
        let ea = a[ceems::apiserver::schema::usage_cols::ENERGY_KWH]
            .as_real()
            .unwrap_or(0.0);
        let eb = b[ceems::apiserver::schema::usage_cols::ENERGY_KWH]
            .as_real()
            .unwrap_or(0.0);
        eb.total_cmp(&ea)
    });
    println!(
        "{:<10} {:<10} {:>6} {:>12} {:>12} {:>14}",
        "USER", "PROJECT", "UNITS", "CPU-HOURS", "ENERGY-KWH", "EMISSIONS-G"
    );
    for r in rows.iter().take(10) {
        let (user, project, n, cpu_h, _g, kwh, em) =
            ceems::apiserver::updater::usage_row_values(r);
        println!("{user:<10} {project:<10} {n:>6} {cpu_h:>12.2} {kwh:>12.4} {em:>14.1}");
    }
    drop(upd);
    std::fs::remove_dir_all(dir).ok();
}

fn rules(group: Option<String>) {
    let groups: Vec<NodeGroup> = match group.as_deref() {
        None => NodeGroup::all().to_vec(),
        Some(g) => match NodeGroup::all().into_iter().find(|n| n.label() == g) {
            Some(n) => vec![n],
            None => {
                eprintln!("unknown group {g:?}; expected one of: intel-dram amd-nodram gpu-typea gpu-typeb");
                std::process::exit(1);
            }
        },
    };
    for g in groups {
        println!("# --- node group: {} ---", g.label());
        for rule in rules_for_group(g, "2m") {
            let statics: Vec<String> = rule
                .static_labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!(
                "- record: {}{}\n  expr: {}",
                rule.record,
                if statics.is_empty() {
                    String::new()
                } else {
                    format!("  # labels: {}", statics.join(","))
                },
                rule.expr_src
            );
        }
        println!();
    }
}

const SAMPLE_CONFIG: &str = r#"# CEEMS simulated deployment — single-file configuration (see §II.D).
cluster:
  # preset: jean-zay        # uncomment for the full 1,400-node fleet
  intel_nodes: 4
  amd_nodes: 2
  v100_nodes: 1
  a100_nodes: 1
  h100_nodes: 0
  seed: 42
tsdb:
  scrape_interval_s: 15
  rule_window: 2m
  rule_interval_s: 30
  query_threads: 4            # select/rule-eval fan-out; 1 = serial reads
  posting_cache_size: 128     # cached regex/negative matcher resolutions; 0 = off
  # wal_dir: /var/lib/ceems/wal   # uncomment for a durable head (crash recovery)
  # wal_segment_bytes: 4194304
  # wal_checkpoint_interval_s: 300
  # wal_fsync: batch            # always | batch | never
api_server:
  update_interval_s: 60
  cleanup_cutoff_s: 120       # purge TSDB series of units shorter than this
  admin_users:
    - root
emissions:
  zone: FR
  providers:
    - rte
    - owid
lb:
  strategy: round_robin       # or least_connection
churn:
  users: 12
  projects: 4
  arrivals_per_hour: 180
threads: 4
"#;
