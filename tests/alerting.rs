//! End-to-end alerting: budget rules over the full stack, grouped webhook
//! delivery under fault injection, silences, and restart durability.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ceems::alertsrv::{
    packs, AlertConfig, AlertService, AlertState, LocalQuerySource, LogSink, NotificationSink,
    RoutingTree, RuleSet, WebhookSink,
};
use ceems::http::fault::{FaultKind, FaultPlan, FaultRule};
use ceems::http::router::Router;
use ceems::http::types::{Response, Status};
use ceems::http::{Client, HttpServer, ServerConfig};
use ceems::metrics::matcher::LabelMatcher;
use ceems::prelude::*;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceems-alerting-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn stack_yaml() -> &'static str {
    // Small cluster, fast cadences, a 1 W per-project budget every real
    // job exceeds, 60 s `for:` hold, deliveries to the in-process log sink.
    "\
cluster:
  intel_nodes: 2
  amd_nodes: 0
  v100_nodes: 0
  a100_nodes: 0
  h100_nodes: 0
  seed: 11
tsdb:
  scrape_interval_s: 15
  rule_window: 2m
  rule_interval_s: 30
alerting:
  eval_interval_s: 15
  group_wait_s: 0
  group_interval_s: 30
  repeat_interval_s: 100000
  resolved_retention_s: 600
  energy_budget_watts: 1
  energy_budget_for_s: 60
"
}

fn cpu_job(walltime_s: u64) -> JobRequest {
    JobRequest {
        user: "alice".into(),
        account: "proj-a".into(),
        partition: "cpu-intel".into(),
        nodes: 1,
        cores_per_node: 8,
        memory_per_node: 16 << 30,
        gpus_per_node: 0,
        walltime_s,
        workload: WorkloadProfile::CpuBound { intensity: 0.9 },
    }
}

#[test]
fn energy_budget_alert_fires_groups_silences_and_resolves() {
    let cfg = CeemsConfig::from_yaml(stack_yaml()).unwrap();
    let dir = tempdir("e2e");
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    let svc = stack.alertsrv.clone().expect("alerting enabled");
    let log = stack.alert_log.clone().unwrap();

    // A 5-minute job: the budget rule goes pending, holds 60 s, fires.
    stack.submit(cpu_job(300)).unwrap();
    stack.run_for(60.0, 15.0);
    let states: Vec<AlertState> = svc.alerts().iter().map(|a| a.state).collect();
    assert!(
        states.contains(&AlertState::Pending) || states.contains(&AlertState::Firing),
        "budget rule saw the job within a minute: {states:?}"
    );
    assert!(
        log.delivered().is_empty(),
        "nothing notifies during the hold"
    );

    stack.run_for(120.0, 15.0);
    let alerts = svc.alerts();
    let firing: Vec<_> = alerts
        .iter()
        .filter(|a| a.state == AlertState::Firing)
        .collect();
    assert_eq!(firing.len(), 1, "one project over budget: {alerts:?}");
    assert_eq!(firing[0].rule, "ProjectEnergyBudgetExceeded");
    assert!(firing[0].labels.get("uuid").is_some());

    // Exactly one grouped notification for the firing group.
    let delivered = log.delivered();
    assert_eq!(delivered.len(), 1, "one grouped notification");
    assert_eq!(delivered[0].status, "firing");
    assert_eq!(delivered[0].alerts.len(), 1);
    assert!(delivered[0].alerts[0].annotations[0].1.contains("over its energy budget"));

    // A matching silence suppresses delivery without touching lifecycle.
    let sid = svc
        .add_silence(
            vec![LabelMatcher::eq("alertname", "ProjectEnergyBudgetExceeded")],
            i64::MAX,
            "maintenance window",
        )
        .unwrap();
    stack.run_for(60.0, 15.0);
    assert_eq!(log.delivered().len(), 1, "silenced group stays quiet");
    assert!(svc.remove_silence(&sid));

    // The job ends; once its series ages out of lookback the alert
    // resolves and the group sends exactly one resolution notice.
    stack.run_for(600.0, 15.0);
    let alerts = svc.alerts();
    assert!(
        alerts
            .iter()
            .all(|a| a.state != AlertState::Firing),
        "recovered: {alerts:?}"
    );
    let delivered = log.delivered();
    assert_eq!(delivered.len(), 2, "firing + resolved, nothing else");
    assert_eq!(delivered[1].status, "resolved");
}

#[test]
fn same_seed_runs_have_identical_notification_traces() {
    let run = |tag: &str| {
        let cfg = CeemsConfig::from_yaml(stack_yaml()).unwrap();
        let mut stack = CeemsStack::build(cfg, &tempdir(tag)).unwrap();
        stack.submit(cpu_job(300)).unwrap();
        stack.run_for(600.0, 15.0);
        let trace = stack.alertsrv.as_ref().unwrap().notification_trace();
        serde_json::to_string(&trace).unwrap()
    };
    let a = run("det-a");
    let b = run("det-b");
    assert!(!a.is_empty() && a.contains("sent"));
    assert_eq!(a, b, "same seed, same notification trace");
}

#[test]
fn restart_mid_firing_reloads_state_without_renotifying() {
    let dir = tempdir("restart");
    {
        let cfg = CeemsConfig::from_yaml(stack_yaml()).unwrap();
        let mut stack = CeemsStack::build(cfg, &dir).unwrap();
        stack.submit(cpu_job(600)).unwrap();
        stack.run_for(180.0, 15.0);
        let log = stack.alert_log.clone().unwrap();
        assert_eq!(log.delivered().len(), 1, "fired and notified pre-restart");
        assert_eq!(stack.stats().alert_notifications, 1);
    }
    // Same db dir: the relstore-backed alert and group state reload.
    let cfg = CeemsConfig::from_yaml(stack_yaml()).unwrap();
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    let svc = stack.alertsrv.clone().unwrap();
    let log = stack.alert_log.clone().unwrap();
    let alerts = svc.alerts();
    assert!(
        alerts.iter().any(|a| a.state == AlertState::Firing),
        "firing alert survived the restart: {alerts:?}"
    );
    stack.run_for(120.0, 15.0);
    assert!(
        log.delivered().is_empty(),
        "restart must not repeat the notification: {:?}",
        log.delivered().len()
    );
}

/// A webhook receiver counting successful deliveries.
fn webhook_server() -> (HttpServer, Arc<AtomicUsize>) {
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    let mut router = Router::new();
    router.post("/hook", move |req| {
        assert!(
            std::str::from_utf8(&req.body).unwrap().contains("groupKey"),
            "payload is the Alertmanager JSON"
        );
        h.fetch_add(1, Ordering::SeqCst);
        Response::json(r#"{"ok":true}"#.to_string())
    });
    (
        HttpServer::serve(ServerConfig::ephemeral(), router).unwrap(),
        hits,
    )
}

fn service_with_sink(
    db: &Arc<Tsdb>,
    sink: Arc<dyn NotificationSink>,
    dir: &std::path::Path,
) -> AlertService {
    let default_sink = sink.name().to_string();
    AlertService::new(
        RuleSet::compile(vec![packs::node_power_anomaly(50.0, 0)]),
        Arc::new(LocalQuerySource::new(db.clone(), 30_000)),
        vec![sink],
        RoutingTree::new(default_sink),
        AlertConfig {
            group_wait_ms: 0,
            group_interval_ms: 15_000,
            repeat_interval_ms: 1_000_000,
            resolved_retention_ms: 60_000,
            lookback_ms: 30_000,
        },
        dir,
    )
    .unwrap()
}

fn hot_node_sample(db: &Arc<Tsdb>, t_ms: i64, watts: f64) {
    use ceems::metrics::labels;
    db.append(
        &labels! {"__name__" => "instance:ceems_total:watts", "instance" => "n1:9100"},
        t_ms,
        watts,
    );
}

#[test]
fn webhook_delivery_survives_seeded_faults_exactly_once() {
    // The first two POSTs are reset client-side, the third gets a
    // synthesized 503; the sink's retry loop rides them out within one
    // delivery, so the receiver sees exactly one request per notification.
    let (server, hits) = webhook_server();
    let plan = Arc::new(
        FaultPlan::new(1234)
            .with_rule(FaultRule::new("/hook", FaultKind::ConnReset, 1.0).between(0, 2))
            .with_rule(
                FaultRule::new("/hook", FaultKind::ServerError { status: 503 }, 1.0)
                    .between(2, 3),
            ),
    );
    let sink = Arc::new(
        WebhookSink::new(format!("{}/hook", server.base_url()))
            .with_client(Client::new().with_fault_plan(plan))
            .with_retries(5, Duration::from_millis(1)),
    );

    let db = Arc::new(Tsdb::default());
    let dir = tempdir("faults");
    let svc = service_with_sink(&db, sink, &dir);

    hot_node_sample(&db, 10_000, 400.0);
    let s = svc.tick(10_000);
    assert_eq!(s.firing, 1);
    assert_eq!(s.notifications_sent, 1, "delivered through the faults");
    assert_eq!(hits.load(Ordering::SeqCst), 1, "receiver saw exactly one");

    // Still firing, unchanged, inside repeat_interval: no re-delivery.
    hot_node_sample(&db, 20_000, 400.0);
    svc.tick(20_000);
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    // Recovery sends exactly one resolution.
    hot_node_sample(&db, 60_000, 5.0);
    let s = svc.tick(60_000);
    assert_eq!(s.notifications_sent, 1);
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    server.shutdown();
}

#[test]
fn retry_after_defers_the_next_delivery_attempt() {
    // The receiver sheds the first delivery with 429 + Retry-After: 20 s.
    // The service must hold further attempts until that deadline passes.
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    let mut router = Router::new();
    router.post("/hook", move |_req| {
        if h.fetch_add(1, Ordering::SeqCst) == 0 {
            Response::error(Status(429), "slow down").with_retry_after(20.0)
        } else {
            Response::json(r#"{"ok":true}"#.to_string())
        }
    });
    let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
    let sink = Arc::new(
        WebhookSink::new(format!("{}/hook", server.base_url()))
            .with_retries(3, Duration::from_millis(1)),
    );

    let db = Arc::new(Tsdb::default());
    let dir = tempdir("retry-after");
    let svc = service_with_sink(&db, sink, &dir);

    hot_node_sample(&db, 10_000, 400.0);
    let s = svc.tick(10_000);
    assert_eq!(s.notifications_failed, 1, "shed by the receiver");
    assert_eq!(hits.load(Ordering::SeqCst), 1, "no inline hammering on 429");

    // 10 s later: inside the Retry-After window, no attempt.
    hot_node_sample(&db, 20_000, 400.0);
    svc.tick(20_000);
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    // Past the window: the retry lands.
    hot_node_sample(&db, 31_000, 400.0);
    let s = svc.tick(31_000);
    assert_eq!(s.notifications_sent, 1);
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    server.shutdown();
}

#[test]
fn service_restart_with_log_sink_preserves_group_state() {
    // Pure service-level restart (no stack): firing + notified, reopen,
    // still firing, no duplicate.
    let db = Arc::new(Tsdb::default());
    let dir = tempdir("svc-restart");
    {
        let log = LogSink::new();
        let svc = service_with_sink(&db, log.clone(), &dir);
        hot_node_sample(&db, 10_000, 400.0);
        svc.tick(10_000);
        assert_eq!(log.delivered().len(), 1);
        svc.checkpoint().unwrap();
    }
    let log = LogSink::new();
    let svc = service_with_sink(&db, log.clone(), &dir);
    assert_eq!(svc.alerts().len(), 1);
    hot_node_sample(&db, 20_000, 400.0);
    let s = svc.tick(20_000);
    assert_eq!(s.firing, 1);
    assert_eq!(s.notifications_sent, 0);
    assert!(log.delivered().is_empty());
}
