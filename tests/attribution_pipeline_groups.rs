//! E5 across the remaining node groups: the recording-rule pipeline must
//! match the closed form not only on Intel nodes (covered in
//! `ceems-core`'s unit test) but on AMD nodes (no DRAM counters) and GPU
//! servers of both IPMI wirings.

use ceems::core::attribution::{
    all_rule_groups, attribute, JobObservables, NodeGroup, NodeObservables,
};
use ceems::metrics::labels::LabelSetBuilder;
use ceems::metrics::matcher::LabelMatcher;
use ceems::tsdb::rules::RuleEngine;
use ceems::tsdb::Tsdb;

struct Fixture {
    group: NodeGroup,
    ipmi_w: f64,
    rapl_cpu_w: f64,
    rapl_dram_w: f64,
    gpu_w: Vec<f64>, // per GPU ordinal; job i owns ordinal i
}

/// Loads 10 minutes of steady raw series for one node with two jobs
/// (5 busy cores and 40 GB memory each; node totals 10 cores / 80 GB).
fn load(db: &Tsdb, f: &Fixture) {
    let g = f.group.label();
    let inst = "node-x:9100";
    let label = |name: &str| {
        LabelSetBuilder::new()
            .label("__name__", name)
            .label("instance", inst)
            .label("nodegroup", g)
            .build()
    };
    for i in 0..41i64 {
        let t = i * 15_000;
        let secs = (i * 15) as f64;
        db.append(&label("ceems_ipmi_dcmi_power_current_watts"), t, f.ipmi_w);
        db.append(&label("ceems_rapl_package_joules_total"), t, f.rapl_cpu_w * secs);
        if f.rapl_dram_w > 0.0 {
            db.append(&label("ceems_rapl_dram_joules_total"), t, f.rapl_dram_w * secs);
        }
        db.append(&label("ceems_memory_used_bytes"), t, 80e9);
        for (mode, rate) in [("user", 9.2), ("system", 0.8), ("idle", 30.0)] {
            db.append(
                &LabelSetBuilder::new()
                    .label("__name__", "ceems_cpu_seconds_total")
                    .label("mode", mode)
                    .label("instance", inst)
                    .label("nodegroup", g)
                    .build(),
                t,
                rate * secs,
            );
        }
        for j in 0..2usize {
            let uuid = format!("slurm-{j}");
            let jl = |name: &str| {
                LabelSetBuilder::new()
                    .label("__name__", name)
                    .label("uuid", uuid.clone())
                    .label("instance", inst)
                    .label("nodegroup", g)
                    .build()
            };
            db.append(&jl("ceems_compute_unit_cpu_user_seconds_total"), t, 4.6 * secs);
            db.append(&jl("ceems_compute_unit_cpu_system_seconds_total"), t, 0.4 * secs);
            db.append(&jl("ceems_compute_unit_memory_used_bytes"), t, 40e9);
            if !f.gpu_w.is_empty() {
                db.append(
                    &LabelSetBuilder::new()
                        .label("__name__", "ceems_compute_unit_gpu_index_flag")
                        .label("uuid", uuid.clone())
                        .label("gpu", j.to_string())
                        .label("index", j.to_string())
                        .label("instance", inst)
                        .label("nodegroup", g)
                        .build(),
                    t,
                    1.0,
                );
            }
        }
        for (ordinal, w) in f.gpu_w.iter().enumerate() {
            db.append(
                &LabelSetBuilder::new()
                    .label("__name__", "DCGM_FI_DEV_POWER_USAGE")
                    .label("gpu", ordinal.to_string())
                    .label("instance", inst)
                    .label("nodegroup", g)
                    .build(),
                t,
                *w,
            );
        }
    }
}

fn run_case(f: Fixture) {
    let db = Tsdb::default();
    load(&db, &f);
    let mut engine = RuleEngine::new(all_rule_groups("2m", 30_000));
    engine.force_eval(&db, 600_000);
    assert_eq!(engine.stats().failures, 0, "{:?} rules failed", f.group);

    let got = db.select_latest(&[LabelMatcher::eq("__name__", "uuid:ceems_power:watts")]);
    assert_eq!(got.len(), 2, "{:?}: {got:?}", f.group);

    let expected = attribute(&NodeObservables {
        group: f.group,
        ipmi_w: f.ipmi_w,
        rapl_cpu_w: f.rapl_cpu_w,
        rapl_dram_w: f.rapl_dram_w,
        node_cpu_rate: 10.0,
        node_mem_bytes: 80e9,
        gpu_total_w: f.gpu_w.iter().sum(),
        jobs: (0..2)
            .map(|j| JobObservables {
                uuid: format!("slurm-{j}"),
                cpu_rate: 5.0,
                mem_bytes: 40e9,
                gpu_w: f.gpu_w.get(j).copied().unwrap_or(0.0),
            })
            .collect(),
    });
    for (uuid, want) in expected {
        let have = got
            .iter()
            .find(|(l, _)| l.get("uuid") == Some(uuid.as_str()))
            .map(|(_, s)| s.v)
            .unwrap_or_else(|| panic!("{:?}: missing {uuid}", f.group));
        assert!(
            (have - want).abs() / want < 0.02,
            "{:?} {uuid}: rules={have:.2} closed-form={want:.2}",
            f.group
        );
    }
}

#[test]
fn amd_group_pipeline_matches_closed_form() {
    run_case(Fixture {
        group: NodeGroup::AmdNoDram,
        ipmi_w: 640.0,
        rapl_cpu_w: 380.0,
        rapl_dram_w: 0.0,
        gpu_w: vec![],
    });
}

#[test]
fn gpu_type_a_pipeline_matches_closed_form() {
    // IPMI includes the two GPUs' 350 W each.
    run_case(Fixture {
        group: NodeGroup::GpuIpmiInclusive,
        ipmi_w: 500.0 + 700.0,
        rapl_cpu_w: 240.0,
        rapl_dram_w: 60.0,
        gpu_w: vec![350.0, 350.0],
    });
}

#[test]
fn gpu_type_b_pipeline_matches_closed_form() {
    // IPMI excludes GPU draw entirely.
    run_case(Fixture {
        group: NodeGroup::GpuIpmiExclusive,
        ipmi_w: 500.0,
        rapl_cpu_w: 240.0,
        rapl_dram_w: 60.0,
        gpu_w: vec![300.0, 420.0],
    });
}
