//! Property-based tests of the Eq. (1) attribution (experiment E5).
//!
//! Invariants:
//! * attributed power is non-negative and finite for any job mix;
//! * per-node attributed power never exceeds the node's total power, and
//!   equals it exactly when the jobs' shares exhaust the node;
//! * attribution is monotone: a job that burns more CPU gets more power;
//! * the four node-group variants agree on their common sub-expressions.

use ceems::core::attribution::{attribute, JobObservables, NodeGroup, NodeObservables};
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<JobObservables>> {
    proptest::collection::vec(
        (0.01f64..16.0, 1e8f64..64e9, 0.0f64..1200.0).prop_map(|(cpu, mem, gpu)| JobObservables {
            uuid: String::new(), // filled below
            cpu_rate: cpu,
            mem_bytes: mem,
            gpu_w: gpu,
        }),
        1..8,
    )
    .prop_map(|mut jobs| {
        for (i, j) in jobs.iter_mut().enumerate() {
            j.uuid = format!("slurm-{i}");
        }
        jobs
    })
}

fn node_for(group: NodeGroup, mut jobs: Vec<JobObservables>, overhead_cpu: f64) -> NodeObservables {
    // CPU-only node groups have no GPUs to draw power.
    if matches!(group, NodeGroup::IntelDram | NodeGroup::AmdNoDram) {
        for j in &mut jobs {
            j.gpu_w = 0.0;
        }
    }
    let job_cpu: f64 = jobs.iter().map(|j| j.cpu_rate).sum();
    let job_mem: f64 = jobs.iter().map(|j| j.mem_bytes).sum();
    let gpu_total: f64 = jobs.iter().map(|j| j.gpu_w).sum();
    let ipmi = match group {
        NodeGroup::GpuIpmiInclusive => 600.0 + gpu_total,
        _ => 600.0,
    };
    NodeObservables {
        group,
        ipmi_w: ipmi,
        rapl_cpu_w: 300.0,
        rapl_dram_w: 80.0,
        node_cpu_rate: job_cpu + overhead_cpu,
        node_mem_bytes: job_mem + 4e9,
        gpu_total_w: gpu_total,
        jobs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn attribution_is_nonnegative_and_bounded(
        jobs in arb_jobs(),
        overhead in 0.0f64..4.0,
    ) {
        for group in NodeGroup::all() {
            let node = node_for(group, jobs.clone(), overhead);
            let out = attribute(&node);
            prop_assert_eq!(out.len(), node.jobs.len());
            let total_node_power = match group {
                NodeGroup::GpuIpmiExclusive => node.ipmi_w + node.gpu_total_w,
                _ => node.ipmi_w,
            };
            let mut sum = 0.0;
            for (uuid, w) in &out {
                prop_assert!(w.is_finite(), "{group:?} {uuid} -> {w}");
                prop_assert!(*w >= 0.0, "{group:?} {uuid} -> {w}");
                sum += w;
            }
            // Never attribute more than the node drew (tiny fp slack).
            prop_assert!(
                sum <= total_node_power * (1.0 + 1e-9),
                "{group:?}: attributed {sum} of {total_node_power}"
            );
        }
    }

    #[test]
    fn attribution_exact_when_shares_exhaust_node(jobs in arb_jobs()) {
        // No OS overhead, no extra memory: job shares sum to exactly 1 on
        // a CPU node, so the 0.9 + 0.1 split hands out everything.
        let job_cpu: f64 = jobs.iter().map(|j| j.cpu_rate).sum();
        let job_mem: f64 = jobs.iter().map(|j| j.mem_bytes).sum();
        let cpu_only: Vec<JobObservables> = jobs
            .iter()
            .map(|j| JobObservables { gpu_w: 0.0, ..j.clone() })
            .collect();
        let node = NodeObservables {
            group: NodeGroup::IntelDram,
            ipmi_w: 500.0,
            rapl_cpu_w: 250.0,
            rapl_dram_w: 50.0,
            node_cpu_rate: job_cpu,
            node_mem_bytes: job_mem,
            gpu_total_w: 0.0,
            jobs: cpu_only,
        };
        let total: f64 = attribute(&node).iter().map(|(_, w)| w).sum();
        prop_assert!((total - 500.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn more_cpu_means_more_power(
        base_cpu in 0.5f64..4.0,
        extra in 0.5f64..8.0,
    ) {
        let mk = |cpu: f64, uuid: &str| JobObservables {
            uuid: uuid.into(),
            cpu_rate: cpu,
            mem_bytes: 8e9,
            gpu_w: 0.0,
        };
        let node = node_for(
            NodeGroup::AmdNoDram,
            vec![mk(base_cpu, "small"), mk(base_cpu + extra, "big")],
            1.0,
        );
        let out = attribute(&node);
        let small = out.iter().find(|(u, _)| u == "small").unwrap().1;
        let big = out.iter().find(|(u, _)| u == "big").unwrap().1;
        prop_assert!(big > small, "big={big} small={small}");
    }

    #[test]
    fn gpu_power_is_passed_through_exactly(gpu_w in 1.0f64..1500.0) {
        let jobs = vec![JobObservables {
            uuid: "g".into(),
            cpu_rate: 1.0,
            mem_bytes: 8e9,
            gpu_w,
        }];
        for group in [NodeGroup::GpuIpmiInclusive, NodeGroup::GpuIpmiExclusive] {
            let node = node_for(group, jobs.clone(), 0.5);
            let without_gpu = {
                let mut n = node.clone();
                n.jobs[0].gpu_w = 0.0;
                n.gpu_total_w = 0.0;
                if group == NodeGroup::GpuIpmiInclusive {
                    n.ipmi_w -= gpu_w;
                }
                attribute(&n)[0].1
            };
            let with_gpu = attribute(&node)[0].1;
            // The GPU's own watts arrive exactly 1:1 — the network share is
            // taken from the non-GPU budget, so it does not move.
            let expected_delta = gpu_w;
            prop_assert!(
                (with_gpu - without_gpu - expected_delta).abs() < 1e-6,
                "{group:?}: delta={} expected={expected_delta}",
                with_gpu - without_gpu
            );
        }
    }
}

#[test]
fn network_share_split_equally() {
    // Two jobs with wildly different CPU get the identical network share.
    let jobs = vec![
        JobObservables {
            uuid: "a".into(),
            cpu_rate: 15.0,
            mem_bytes: 50e9,
            gpu_w: 0.0,
        },
        JobObservables {
            uuid: "b".into(),
            cpu_rate: 0.1,
            mem_bytes: 1e9,
            gpu_w: 0.0,
        },
    ];
    let node = NodeObservables {
        group: NodeGroup::AmdNoDram,
        ipmi_w: 400.0,
        rapl_cpu_w: 200.0,
        rapl_dram_w: 0.0,
        node_cpu_rate: 15.1,
        node_mem_bytes: 51e9,
        gpu_total_w: 0.0,
        jobs,
    };
    let out = attribute(&node);
    // net per job = 0.1 * 400 / 2 = 20 W; subtracting each job's CPU term
    // must leave exactly that.
    let cpu_term = |cpu: f64| 0.9 * 400.0 * (cpu / 15.1);
    let a = out.iter().find(|(u, _)| u == "a").unwrap().1 - cpu_term(15.0);
    let b = out.iter().find(|(u, _)| u == "b").unwrap().1 - cpu_term(0.1);
    assert!((a - 20.0).abs() < 1e-9, "a_net={a}");
    assert!((b - 20.0).abs() < 1e-9, "b_net={b}");
}
