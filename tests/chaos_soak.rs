//! Chaos soak: the full stack driven under seeded, deterministic fault
//! schedules. The TSDB replicas behind the load balancer reset
//! connections, return 5xx, corrupt and truncate bodies and add latency;
//! the invariants are that nothing panics, no corrupt 2xx ever reaches a
//! client, the stack converges to correct answers once the fault windows
//! close, the query frontend bounds staleness when every replica is down,
//! and the same seed replays the exact same fault trace.

use std::sync::Arc;

use ceems::http::fault::{FaultKind, FaultPlan, FaultRule};
use ceems::http::resilience::RetryPolicy;
use ceems::http::{Client, HttpServer, ServerConfig};
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::metrics::labels;
use ceems::metrics::matcher::LabelMatcher;
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ceems-chaos-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// A monitored stack with one busy CPU job, advanced far enough that the
/// recording rules have produced per-job power.
fn monitored_stack() -> CeemsStack {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);
    stack
}

/// The soak schedule: every fault kind at once, all bounded to the first
/// `until` requests per endpoint so the run has a guaranteed quiet tail.
fn chaos_plan(seed: u64, until: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_rule(
            FaultRule::new("/api/v1/query", FaultKind::ServerError { status: 503 }, 0.2)
                .between(0, until),
        )
        .with_rule(FaultRule::new("/api/v1/query", FaultKind::ConnReset, 0.15).between(0, until))
        .with_rule(FaultRule::new("/api/v1/query", FaultKind::CorruptBody, 0.15).between(0, until))
        .with_rule(FaultRule::new("/api/v1/query", FaultKind::TruncateBody, 0.1).between(0, until))
        .with_rule(FaultRule::new("*", FaultKind::Latency { ms: 2 }, 0.2).between(0, until))
}

#[test]
fn chaos_soak_converges_and_never_leaks_corruption() {
    let stack = monitored_stack();
    let now = stack.clock.now_ms();
    let query = "uuid:ceems_power:watts{uuid=\"slurm-1\"}";
    let url_for = |base: &str| {
        format!(
            "{base}/api/v1/query?query={}&time={}",
            ceems::http::url::encode_component(query),
            now as f64 / 1000.0
        )
    };

    // The ground truth: the same query against a fault-free API server.
    let clean = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();
    let truth = Client::new().get(&url_for(&clean.base_url())).unwrap();
    assert!(truth.status.is_success());
    let truth_json: serde_json::Value = serde_json::from_slice(&truth.body).unwrap();
    assert_eq!(truth_json["status"], "success");

    for seed in [11u64, 23, 47] {
        // Two replicas over the same TSDB, sharing one fault schedule that
        // goes quiet after 40 requests per endpoint.
        let plan = chaos_plan(seed, 40).shared();
        let replicas: Vec<HttpServer> = (0..2)
            .map(|_| {
                HttpServer::serve(
                    ServerConfig::ephemeral().with_fault_plan(plan.clone()),
                    api_router(stack.tsdb.clone(), Arc::new(move || now)),
                )
                .unwrap()
            })
            .collect();
        let lb = Arc::new(CeemsLb::new(
            BackendPool::new(
                replicas
                    .iter()
                    .enumerate()
                    .map(|(i, r)| Backend::new(format!("b{i}"), r.base_url()))
                    .collect(),
                Strategy::round_robin(),
            ),
            Authorizer::DirectDb(stack.updater.clone()),
            LbConfig {
                admin_users: vec!["op".into()],
                query_frontend: None,
                trace_sink: None,
            },
        ));
        let lb_srv = lb.serve().unwrap();
        let client = Client::new().with_header("X-Grafana-User", "alice");
        let lb_url = url_for(&lb_srv.base_url());

        let mut ok = 0u32;
        let mut failed = 0u32;
        for i in 0..60 {
            let resp = client.get(&lb_url).unwrap_or_else(|e| {
                panic!("seed {seed} request {i}: LB itself must stay reachable: {e}")
            });
            match resp.status.0 {
                200 => {
                    // The hard invariant: whatever the replicas mangled,
                    // a 2xx from the LB is always intact JSON.
                    let json: serde_json::Value =
                        serde_json::from_slice(&resp.body).unwrap_or_else(|e| {
                            panic!("seed {seed} request {i}: corrupt 2xx escaped the LB: {e}")
                        });
                    assert_eq!(json["status"], "success", "seed {seed} request {i}");
                    ok += 1;
                }
                502 | 503 => failed += 1,
                other => panic!("seed {seed} request {i}: unexpected status {other}"),
            }
        }
        assert!(plan.injected() > 0, "seed {seed}: schedule never fired");
        assert!(ok > 0, "seed {seed}: nothing succeeded under faults");
        // The LB's retries + breakers should absorb most of the chaos.
        assert!(
            failed < 30,
            "seed {seed}: {failed}/60 requests failed through the LB"
        );

        // Convergence: the schedule is quiet now — the next renders must
        // be byte-identical to the fault-free answer.
        for i in 0..5 {
            let resp = client.get(&lb_url).unwrap();
            assert_eq!(resp.status.0, 200, "seed {seed} post-fault request {i}");
            assert_eq!(
                resp.body, truth.body,
                "seed {seed}: post-fault answer diverges from ground truth"
            );
        }

        // The degradation was observable: the LB exported its retry and
        // per-backend outcome counters the whole time.
        let metrics = client
            .get(&format!("{}/metrics", lb_srv.base_url()))
            .unwrap()
            .body_string();
        assert!(metrics.contains("ceems_lb_proxy_requests_total"));

        lb_srv.shutdown();
        for r in replicas {
            r.shutdown();
        }
    }
    clean.shutdown();
}

#[test]
fn same_seed_replays_the_same_fault_trace() {
    // Two servers over the same router, each with its own copy of the same
    // schedule, driven with identical request sequences: the injected
    // fault traces and the per-request outcomes must match exactly.
    let db = Arc::new(Tsdb::default());
    for i in 0..20i64 {
        db.append(&labels! {"__name__" => "watts", "uuid" => "u1"}, i * 15_000, 100.0);
    }
    let run = |seed: u64| {
        let plan = chaos_plan(seed, u64::MAX).shared();
        let server = HttpServer::serve(
            ServerConfig::ephemeral().with_fault_plan(plan.clone()),
            api_router(db.clone(), Arc::new(|| 300_000)),
        )
        .unwrap();
        let client = Client::new();
        let mut outcomes = Vec::new();
        for i in 0..80 {
            let path = if i % 3 == 0 { "/api/v1/labels" } else { "/api/v1/query" };
            let url = format!("{}{path}?query=watts&time=300", server.base_url());
            outcomes.push(match client.get(&url) {
                Ok(resp) => format!("status={}", resp.status.0),
                Err(_) => "transport-error".to_string(),
            });
        }
        server.shutdown();
        (plan.trace(), outcomes)
    };

    let (trace_a, outcomes_a) = run(7);
    let (trace_b, outcomes_b) = run(7);
    assert!(!trace_a.is_empty(), "schedule never fired");
    assert_eq!(trace_a, trace_b, "same seed must replay the same faults");
    assert_eq!(outcomes_a, outcomes_b);

    let (trace_c, _) = run(8);
    assert_ne!(trace_a, trace_c, "different seeds should diverge");
}

#[test]
fn qfe_bounds_staleness_when_every_replica_dies() {
    use ceems::qfe::{HttpDownstream, QueryFrontend};

    // Short split extents and no recent-window holdback, so the warm
    // render actually populates the cache.
    let mut cfg = CeemsConfig::default();
    cfg.qfe.split_interval_s = 300.0;
    cfg.qfe.recent_window_s = 0.0;
    let dir = tmp_dir("qfe");
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(900.0, 15.0);
    let now = stack.clock.now_ms();
    let server = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();
    let fe = QueryFrontend::new(
        Arc::new(
            HttpDownstream::new(vec![server.base_url().to_string()])
                .with_retry(RetryPolicy::disabled()),
        ),
        stack.qfe_config(Arc::new(move || now)),
    );
    let req = |q: &str, end_s: i64| {
        ceems::http::Request::new(
            ceems::http::Method::Get,
            &format!(
                "/api/v1/query_range?query={}&start=0&end={end_s}&step=15",
                ceems::http::url::encode_component(q)
            ),
        )
        .with_header("x-grafana-user", "alice")
    };

    // Warm render over the first two extents while the replica is alive.
    let q = "sum(uuid:ceems_power:watts{uuid=\"slurm-1\"})";
    let warm = fe.handle(&req(q, 590));
    assert_eq!(warm.status.0, 200, "warm render failed: {}", warm.body_string());

    // Total outage: every replica gone. A wider render (one extent past
    // the warm one) must still answer from cache, flagged degraded.
    server.shutdown();
    let stale = fe.handle(&req(q, 890));
    assert_eq!(stale.status.0, 200, "stale serve failed: {}", stale.body_string());
    let degraded = stale.header("x-ceems-qfe-degraded").unwrap();
    assert!(
        degraded.starts_with("stale; age="),
        "degraded header must carry the served age: {degraded:?}"
    );
    let body: serde_json::Value = serde_json::from_slice(&stale.body).unwrap();
    assert!(
        body["warnings"][0].as_str().unwrap().contains("replicas down"),
        "missing degradation warning: {body}"
    );
    // Bounded staleness: the degraded render serves real cached data.
    assert!(
        stale
            .header("x-ceems-qfe-cached-steps")
            .unwrap()
            .parse::<usize>()
            .unwrap()
            > 0
    );
    // A query that was never cached stays a clean error, not a fake answer.
    let cold = fe.handle(&req("sum(never_seen_metric)", 590));
    assert_eq!(cold.status.0, 502);
}

/// One leader-kill soak run: a streaming failover stack under churn-free
/// load, leader killed mid-ingest (for seed 23 right after a checkpoint,
/// so the rejoin exercises the checkpoint-resync path), old leader
/// rejoined after the election settles. Returns the failover trace and
/// the converged series for cross-run comparison.
fn leader_kill_run(seed: u64, kill: bool) -> (Vec<String>, Vec<(i64, f64)>, CeemsStack) {
    use ceems::core::config::{FailoverSettings, StreamSettings};

    let dir = tmp_dir(&format!("fo-{seed}-{kill}"));
    let cfg = CeemsConfig {
        seed,
        wal_dir: Some(dir.join("wal").to_string_lossy().into_owned()),
        stream: StreamSettings {
            enabled: true,
            ..Default::default()
        },
        failover: FailoverSettings {
            enabled: true,
            replicas: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut stack = CeemsStack::build(cfg, &dir.join("db")).unwrap();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);

    let group = stack.replication_group().expect("failover enabled");
    if kill {
        if seed == 23 {
            // Mid-checkpoint kill: the leader checkpoints, then dies before
            // anything else replicates — rejoin cannot carve the divergent
            // suffix out file-level and must fall back to a full resync.
            stack.tsdb.checkpoint().unwrap();
        }
        group.lock().kill("node-0");
    }
    stack.run_for(120.0, 15.0);
    if kill {
        group.lock().rejoin("node-0").unwrap();
    }
    stack.run_for(300.0, 15.0);
    // Drain replication of the final step's appends (followers pump on the
    // next coordinator tick, which the run just ended before).
    group.lock().tick(stack.clock.now_ms());

    let series = stack
        .tsdb
        .select(
            &[
                LabelMatcher::eq("__name__", "ceems_compute_unit_cpu_user_seconds_total"),
                LabelMatcher::eq("uuid", "slurm-1"),
            ],
            0,
            i64::MAX,
        )
        .into_iter()
        .next()
        .map(|s| s.samples.iter().map(|p| (p.t_ms, p.v)).collect())
        .unwrap_or_default();
    let events = group.lock().events();
    (events, series, stack)
}

#[test]
fn leader_kill_mid_ingest_fails_over_and_replays_deterministically() {
    use ceems::tsdb::NodeRole;

    for seed in [11u64, 23, 47] {
        let (events, series, stack) = leader_kill_run(seed, true);
        let (_, truth, _) = leader_kill_run(seed, false);
        let group = stack.replication_group().unwrap();

        // Exactly one election happened, and exactly one leader holds each
        // epoch: epochs in the trace are unique, and the group ends with a
        // single Leader role.
        let elected: Vec<&str> = events
            .iter()
            .filter(|e| e.contains(" elect epoch="))
            .map(String::as_str)
            .collect();
        assert_eq!(elected.len(), 1, "seed {seed}: {events:?}");
        let mut epochs: Vec<String> = events
            .iter()
            .filter_map(|e| {
                e.split_whitespace()
                    .find_map(|w| w.strip_prefix("epoch=").map(str::to_string))
            })
            .collect();
        let total = epochs.len();
        epochs.sort();
        epochs.dedup();
        assert_eq!(epochs.len(), total, "seed {seed}: epoch led twice: {events:?}");
        {
            let g = group.lock();
            assert_eq!(g.epoch(), 2, "seed {seed}");
            let leaders = g
                .roles()
                .iter()
                .filter(|(_, r)| *r == NodeRole::Leader)
                .count();
            assert_eq!(leaders, 1, "seed {seed}: roles {:?}", g.roles());
            assert_eq!(g.leader_id(), Some("node-1"), "seed {seed}");
        }

        // Publishers resumed with zero duplicates, and the post-failover
        // series is byte-identical to the unkilled ground truth minus the
        // frames the failover lost: every sample that survived matches
        // truth exactly, timestamps never repeat, and ingest demonstrably
        // continued on the new leader.
        assert!(!series.is_empty(), "seed {seed}: series lost entirely");
        for window in series.windows(2) {
            assert!(
                window[0].0 < window[1].0,
                "seed {seed}: duplicate or reordered sample at t={}",
                window[1].0
            );
        }
        for sample in &series {
            assert!(
                truth.contains(sample),
                "seed {seed}: sample {sample:?} diverges from ground truth"
            );
        }
        let kill_ms = 300_000;
        assert!(
            series.iter().filter(|(t, _)| *t > kill_ms + 120_000).count() > 5,
            "seed {seed}: no sustained post-failover ingest"
        );

        // The rejoined old leader converged onto the new leader's log —
        // its divergent tail is gone, not resurrected.
        {
            let g = group.lock();
            let rejoined = g.node_db("node-0").unwrap();
            let leader = g.node_db("node-1").unwrap();
            let sel = [
                LabelMatcher::eq("__name__", "ceems_compute_unit_cpu_user_seconds_total"),
                LabelMatcher::eq("uuid", "slurm-1"),
            ];
            let a = rejoined.select(&sel, 0, i64::MAX);
            let b = leader.select(&sel, 0, i64::MAX);
            assert_eq!(a.len(), 1, "seed {seed}");
            assert_eq!(
                a[0].samples, b[0].samples,
                "seed {seed}: rejoined replica diverges from leader"
            );
            assert!(
                events.iter().any(|e| e.contains("rejoin node=node-0")),
                "seed {seed}: {events:?}"
            );
        }

        // Same seed, same failover trace — byte-identical event logs.
        let (events_b, series_b, _) = leader_kill_run(seed, true);
        assert_eq!(
            events, events_b,
            "seed {seed}: failover trace is not deterministic"
        );
        assert_eq!(series, series_b, "seed {seed}: replay diverged");
    }
}

#[test]
fn wal_survives_scripted_disk_faults() {
    use ceems::tsdb::wal::{ScriptedDiskFaults, WalOptions};

    let dir = tmp_dir("wal");
    let series = labels! {"__name__" => "watts", "uuid" => "u1"};
    let errors;
    {
        let db = Tsdb::open(&dir, WalOptions::default(), TsdbConfig::default()).unwrap();
        // A flaky disk: two short writes (repaired tails) and two EIO
        // fsyncs across the run.
        db.set_wal_disk_faults(Arc::new(
            ScriptedDiskFaults::new()
                .with_short_write(5, 0.4)
                .with_short_write(20, 0.7)
                .with_fsync_failures(2),
        ));
        for i in 0..100i64 {
            db.append(&series, i * 1_000, i as f64);
        }
        errors = db.wal_errors();
        assert!(errors > 0, "the scripted faults never fired");
    }

    // Recovery: reopen over whatever the flaky disk left behind. The TSDB
    // swallows WAL write errors (ingest availability beats durability), so
    // the loss is bounded by the failed commits — never more, and never a
    // corrupted or unreadable log.
    let db = Tsdb::open(&dir, WalOptions::default(), TsdbConfig::default()).unwrap();
    let recovered = db.select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
    assert_eq!(recovered.len(), 1);
    let samples = &recovered[0].samples;
    assert!(
        samples.len() as u64 >= 100 - errors && samples.len() <= 100,
        "recovered {} of 100 samples with {errors} write errors",
        samples.len()
    );
    assert_eq!(samples.last().unwrap().v, 99.0);

    db.append(&series, 200_000, 123.0);
    let latest = db.select_latest(&[LabelMatcher::eq("__name__", "watts")]);
    assert_eq!(latest[0].1.v, 123.0);
    std::fs::remove_dir_all(&dir).ok();
}
