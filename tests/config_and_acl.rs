//! Config-file-driven deployments and the LB's HTTP verification path.

use std::sync::Arc;

use ceems::http::Client;
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router;

#[test]
fn stack_builds_from_single_yaml_file() {
    // The §II.D single-file configuration, end to end.
    let yaml = "\
cluster:
  intel_nodes: 3
  amd_nodes: 1
  v100_nodes: 0
  a100_nodes: 1
  h100_nodes: 0
  seed: 99
tsdb:
  scrape_interval_s: 15
  rule_window: 2m
  rule_interval_s: 30
api_server:
  update_interval_s: 60
  admin_users:
    - root
emissions:
  zone: FR
  providers:
    - rte
    - owid
lb:
  strategy: least_connection
churn:
  users: 6
  projects: 2
  arrivals_per_hour: 300
threads: 2
";
    let cfg = CeemsConfig::from_yaml(yaml).unwrap();
    assert_eq!(cfg.cluster.total_nodes(), 5);
    assert_eq!(cfg.lb_strategy, "least_connection");

    let dir = std::env::temp_dir().join(format!(
        "ceems-cfg-it-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    stack.run_for(900.0, 15.0);

    let st = stack.stats();
    assert!(st.jobs_submitted > 10, "churn produced {}", st.jobs_submitted);
    assert_eq!(st.scrape_failures, 0);
    assert!(stack.tsdb.series_count() > 100);
    // Both RTE and OWID factors are being exported.
    let providers = stack.tsdb.label_values("provider");
    assert!(providers.contains(&"rte".to_string()), "{providers:?}");
    assert!(providers.contains(&"owid".to_string()));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn lb_verifies_through_api_server_http() {
    // Fig. 1's fallback path: the LB cannot read the DB file, so it calls
    // the API server's /api/v1/verify endpoint over HTTP.
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 8,
            memory_per_node: 8 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);

    // API server over HTTP.
    let api = Arc::new(ceems::apiserver::ApiServer::new(
        stack.updater.clone(),
        vec![],
    ));
    let api_srv = api.serve().unwrap();

    // TSDB over HTTP.
    let now = stack.clock.now_ms();
    let tsdb_srv = ceems::http::HttpServer::serve(
        ceems::http::ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();

    // LB with the HTTP authorizer.
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::LeastConnection,
        ),
        Authorizer::api(api_srv.base_url()),
        LbConfig::default(),
    ));
    let lb_srv = lb.serve().unwrap();

    let q = |user: &str, uuid: &str| -> u16 {
        let query = format!("uuid:ceems_power:watts{{uuid=\"{uuid}\"}}");
        let url = format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component(&query)
        );
        Client::new()
            .with_header("X-Grafana-User", user)
            .get(&url)
            .unwrap()
            .status
            .0
    };

    assert_eq!(q("alice", "slurm-1"), 200);
    assert_eq!(q("mallory", "slurm-1"), 403);
    assert_eq!(q("alice", "slurm-404"), 403);

    // Kill the API server: verification must fail closed, not open.
    api_srv.shutdown();
    assert_eq!(q("alice", "slurm-1"), 403);

    lb_srv.shutdown();
    tsdb_srv.shutdown();
}

#[test]
fn fleet_power_conservation_under_churn() {
    // Attributed job power can never exceed the simulated fleet draw, and
    // should account for most of it when the fleet is busy.
    let cfg = CeemsConfig {
        churn: Some(ChurnSettings {
            users: 10,
            projects: 3,
            arrivals_per_hour: 500.0,
        }),
        ..CeemsConfig::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "ceems-conserve-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let mut stack = CeemsStack::build(cfg, &dir).unwrap();
    stack.run_for(1500.0, 15.0);

    let truth_w = stack.cluster.total_wall_power();
    let attributed_w = stack.total_attributed_power();
    assert!(attributed_w > 0.0);
    // IPMI noise is ±3% per node; allow 10% headroom overall.
    assert!(
        attributed_w <= truth_w * 1.10,
        "attributed {attributed_w:.0} W exceeds fleet truth {truth_w:.0} W"
    );
    // With heavy churn most nodes hold jobs, so attribution should cover a
    // sizeable share of the fleet (idle nodes are never attributed).
    assert!(
        attributed_w >= truth_w * 0.3,
        "attributed only {attributed_w:.0} of {truth_w:.0} W"
    );
    std::fs::remove_dir_all(dir).ok();
}
