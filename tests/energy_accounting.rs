//! Cross-crate accounting invariants: the energy the API server reports for
//! a job must be consistent with the power the rules attributed, and the
//! fleet's attributed power must track the simulated ground truth.

use ceems::metrics::matcher::LabelMatcher;
use ceems::prelude::*;

#[test]
fn attributed_power_tracks_ground_truth_on_busy_node() {
    let mut stack = CeemsStack::build_default();
    // Saturate one Intel node so nearly all of its power belongs to the job.
    stack
        .submit(JobRequest {
            user: "u".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 40,
            memory_per_node: 128 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.97 },
        })
        .unwrap();
    stack.run_for(600.0, 15.0);

    let host = {
        let sched = stack.scheduler.lock();
        sched.dbd().get(1).unwrap().placements[0].hostname.clone()
    };
    let node = stack.cluster.node_by_hostname(&host).unwrap();
    let truth_w = node.lock().ground_truth_power().wall_w();

    let attributed = stack.tsdb.select_latest(&[
        LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
        LabelMatcher::eq("uuid", "slurm-1"),
    ]);
    assert_eq!(attributed.len(), 1);
    let got_w = attributed[0].1.v;

    // The job burns ~97% of the node's cores; Eq. (1) should hand it most
    // of the node's measured power. IPMI noise (±3%), the OS overhead share
    // and PSU modelling keep this from being exact.
    assert!(
        got_w > truth_w * 0.75 && got_w < truth_w * 1.1,
        "attributed {got_w:.0} W vs ground truth {truth_w:.0} W"
    );
}

#[test]
fn api_server_energy_equals_power_integral() {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "u".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 20,
            memory_per_node: 64 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(900.0, 15.0);

    // Integrate the recorded per-job power series directly.
    let series = stack.tsdb.select(
        &[
            LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
            LabelMatcher::eq("uuid", "slurm-1"),
        ],
        0,
        i64::MAX,
    );
    assert_eq!(series.len(), 1);
    let samples = &series[0].samples;
    assert!(samples.len() > 10);
    let mut joules = 0.0;
    for w in samples.windows(2) {
        joules += w[0].v * (w[1].t_ms - w[0].t_ms) as f64 / 1000.0;
    }
    let integral_kwh = joules / 3.6e6;

    // The API server computed mean power × elapsed.
    let upd = stack.updater.lock();
    let row = upd
        .db()
        .get(ceems::apiserver::schema::UNITS_TABLE, &"slurm-1".into())
        .unwrap()
        .unwrap();
    let api_kwh = row[ceems::apiserver::schema::unit_cols::ENERGY_KWH]
        .as_real()
        .expect("energy filled");

    // Same quantity computed two ways; windows differ slightly at the job
    // start, so allow 15%.
    let ratio = api_kwh / integral_kwh;
    assert!(
        (0.85..1.15).contains(&ratio),
        "api={api_kwh:.4} kWh integral={integral_kwh:.4} kWh ratio={ratio:.3}"
    );

    // Emissions are energy × factor with a plausible French factor.
    let g = row[ceems::apiserver::schema::unit_cols::EMISSIONS_G]
        .as_real()
        .expect("emissions filled");
    let implied_factor = g / api_kwh;
    assert!(
        (15.0..120.0).contains(&implied_factor),
        "implied factor {implied_factor} g/kWh"
    );
}

#[test]
fn multi_node_job_gets_power_on_every_node() {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "mpi".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 3,
            cores_per_node: 40,
            memory_per_node: 64 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.95 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);

    let per_node = stack.tsdb.select_latest(&[
        LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
        LabelMatcher::eq("uuid", "slurm-1"),
    ]);
    // One series per node of the allocation.
    assert_eq!(per_node.len(), 3, "{per_node:?}");
    let instances: std::collections::BTreeSet<_> = per_node
        .iter()
        .map(|(l, _)| l.get("instance").unwrap().to_string())
        .collect();
    assert_eq!(instances.len(), 3);
    for (_, s) in &per_node {
        assert!(s.v > 50.0, "per-node power {}", s.v);
    }
}
