//! Property tests for S24 leader failover: epoch fencing and
//! divergence-safe rejoin under arbitrary interleavings of replicated
//! ("acked") and unreplicated appends around a leader kill.
//!
//! The invariants, whatever the interleaving:
//!
//! * an acked write (appended through the route and replicated before the
//!   leader died) is never lost by the failover;
//! * a truncated write (the dead leader's divergent WAL tail) is never
//!   resurrected by the rejoin — the rejoiner converges byte-identically
//!   onto the new leader;
//! * the old epoch is fenced everywhere live, and the old leader rejects
//!   the new epoch it never saw.

use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use ceems::metrics::labels;
use ceems::metrics::matcher::LabelMatcher;
use ceems::tsdb::{FailoverConfig, ReplicationGroup, TsdbConfig, WalOptions};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ceems-failover-prop-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn group(dir: &std::path::Path, now: ceems::tsdb::httpapi::NowFn) -> ReplicationGroup {
    ReplicationGroup::new(
        dir,
        2,
        WalOptions::default(),
        TsdbConfig::default(),
        FailoverConfig {
            probe_interval_ms: 100,
            election_timeout_ms: 300,
            min_catchup_records: u64::MAX,
            catchup_polls: 64,
        },
        now,
    )
    .unwrap()
}

/// Divergent-tail values are offset into their own band so a resurrected
/// one is unmistakable in the converged series.
const TAIL_BAND: f64 = 10_000.0;
const POST_BAND: f64 = 20_000.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ops` drives the pre-kill schedule: 0 = coordinator tick (pumps
    /// replication, so everything appended so far becomes acked), 1..=3 =
    /// append that many samples through the write route. `tail` is the
    /// dead leader's divergent suffix, `post` the post-failover appends
    /// the rejoiner must converge onto.
    #[test]
    fn acked_writes_survive_and_truncated_tails_stay_dead(
        ops in proptest::collection::vec(0u8..4, 1..24),
        tail in 0usize..6,
        post in 1usize..8,
    ) {
        let dir = tmp("case");
        let t = Arc::new(AtomicI64::new(0));
        let t2 = t.clone();
        let mut g = group(&dir, Arc::new(move || t2.load(Ordering::Relaxed)));
        let router = g.write_router();
        let series = labels! {"__name__" => "watts", "uuid" => "u1"};
        let old_epoch = g.epoch();

        // Pre-kill schedule. A sample is acked once a tick replicated it.
        let mut seq = 0i64;
        let mut pending: Vec<(i64, f64)> = Vec::new();
        let mut acked: Vec<(i64, f64)> = Vec::new();
        for op in &ops {
            if *op == 0 {
                t.fetch_add(100, Ordering::Relaxed);
                g.tick(t.load(Ordering::Relaxed));
                acked.append(&mut pending);
            } else {
                for _ in 0..*op {
                    let sample = (seq * 1000, seq as f64);
                    router.append_batch(&[(series.clone(), sample.0, sample.1)]).unwrap();
                    pending.push(sample);
                    seq += 1;
                }
            }
        }

        // The leader dies; its divergent tail was never replicated.
        g.kill("node-0");
        let old_db = g.node_db("node-0").unwrap();
        let mut tail_ts: Vec<i64> = Vec::new();
        for _ in 0..tail {
            old_db
                .append_batch_fenced(old_epoch, &[(series.clone(), seq * 1000, TAIL_BAND + seq as f64)])
                .unwrap();
            tail_ts.push(seq * 1000);
            seq += 1;
        }
        for _ in 0..6 {
            t.fetch_add(100, Ordering::Relaxed);
            g.tick(t.load(Ordering::Relaxed));
        }
        prop_assert_eq!(g.failovers(), 1, "events: {:?}", g.events());
        prop_assert_eq!(g.epoch(), old_epoch + 1);
        prop_assert_eq!(router.epoch(), old_epoch + 1);

        // Never lose an acked write.
        let leader_db = router.leader_db().unwrap();
        let got = leader_db.select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
        let have: Vec<(i64, f64)> = got
            .first()
            .map(|s| s.samples.iter().map(|p| (p.t_ms, p.v)).collect())
            .unwrap_or_default();
        for sample in &acked {
            prop_assert!(
                have.contains(sample),
                "acked write {sample:?} lost by failover; events: {:?}",
                g.events()
            );
        }

        // The fence: the old epoch is dead on the new leader, and the old
        // leader rejects the epoch it never saw.
        prop_assert!(leader_db
            .append_batch_fenced(old_epoch, &[(series.clone(), 1, 1.0)])
            .is_err());
        prop_assert!(old_db
            .append_batch_fenced(g.epoch(), &[(series.clone(), 2, 2.0)])
            .is_err());

        // Post-failover writes, then the old leader rejoins: its divergent
        // tail must be truncated, never resurrected.
        for _ in 0..post {
            router
                .append_batch(&[(series.clone(), seq * 1000, POST_BAND + seq as f64)])
                .unwrap();
            seq += 1;
        }
        g.rejoin("node-0").unwrap();
        for _ in 0..4 {
            t.fetch_add(100, Ordering::Relaxed);
            g.tick(t.load(Ordering::Relaxed));
        }
        let rejoined = g.node_db("node-0").unwrap();
        let got = rejoined.select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
        prop_assert_eq!(got.len(), 1);
        for p in &got[0].samples {
            prop_assert!(
                !(TAIL_BAND..POST_BAND).contains(&p.v),
                "truncated write resurrected at t={} v={}; events: {:?}",
                p.t_ms,
                p.v,
                g.events()
            );
        }
        // Convergence: byte-identical to the new leader's view.
        let want = router
            .leader_db()
            .unwrap()
            .select(&[LabelMatcher::eq("__name__", "watts")], 0, i64::MAX);
        prop_assert_eq!(&got[0].samples, &want[0].samples);
        std::fs::remove_dir_all(&dir).ok();
    }
}
