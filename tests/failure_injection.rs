//! Failure-injection: the monitoring pipeline must degrade gracefully when
//! sensors or exporters misbehave — flaky BMCs, dead scrape targets,
//! malformed payloads.

use std::sync::Arc;

use ceems::exporter::{CeemsExporter, ExporterConfig};
use ceems::metrics::matcher::LabelMatcher;
use ceems::prelude::*;
use ceems::simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
use ceems::tsdb::rules::RuleEngine;
use ceems::tsdb::scrape::{ScrapeManager, ScrapeTarget, TargetSource};
use parking_lot::Mutex;

fn busy_intel_node(seed: u64) -> ceems::simnode::cluster::NodeHandle {
    let mut n = SimNode::new(
        NodeSpec {
            hostname: format!("n{seed}"),
            profile: HardwareProfile::IntelCpu,
        },
        seed,
    );
    n.add_task(
        TaskSpec {
            id: seed,
            cores: 16,
            memory_bytes: 16 << 30,
            gpus: 0,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        },
        0,
    )
    .unwrap();
    Arc::new(Mutex::new(n))
}

#[test]
fn flaky_bmc_degrades_attribution_gracefully() {
    // One node's BMC times out on 60% of invocations. The pipeline must
    // keep producing per-job power whenever a reading is available, and
    // produce *nothing incorrect* when it is not.
    let clock = SimClock::new();
    let node = busy_intel_node(1);
    let exporter = Arc::new(CeemsExporter::new(
        node.clone(),
        clock.clone(),
        ExporterConfig {
            ipmi_failure_rate: 0.6,
            ..Default::default()
        },
    ));
    let mgr = ScrapeManager::new(vec![ScrapeTarget {
        instance: "n1:9100".into(),
        job: "ceems".into(),
        extra_labels: vec![("nodegroup".into(), "intel-dram".into())],
        source: TargetSource::InProcess(exporter.render_fn()),
    }]);
    let db = Tsdb::default();
    let mut rules = RuleEngine::new(ceems::core::attribution::all_rule_groups("2m", 30_000));

    let mut power_samples = 0;
    for i in 1..=40 {
        let now = i * 15_000;
        clock.advance_ms(15_000);
        node.lock().step(now, 15.0);
        let stats = mgr.scrape_once(&db, now, 1);
        assert_eq!(stats.failed, 0, "scrape itself never fails");
        rules.tick(&db, now);
        power_samples += db
            .select(
                &[LabelMatcher::eq("__name__", "uuid:ceems_power:watts")],
                now,
                now,
            )
            .len();
    }
    // Some rounds produced power, despite the majority of BMC timeouts
    // (the IPMI gauge keeps its last scraped value within lookback).
    assert!(power_samples > 5, "only {power_samples} power evaluations");
    // Whatever was produced is physical.
    let all = db.select(
        &[LabelMatcher::eq("__name__", "uuid:ceems_power:watts")],
        0,
        i64::MAX,
    );
    for s in &all {
        for sample in &s.samples {
            assert!(sample.v >= 0.0 && sample.v < 1000.0, "bad power {}", sample.v);
        }
    }
}

#[test]
fn mixed_fleet_with_dead_targets_keeps_up_series_honest() {
    let clock = SimClock::new();
    let node = busy_intel_node(2);
    let exporter = Arc::new(CeemsExporter::new(
        node.clone(),
        clock.clone(),
        ExporterConfig::default(),
    ));
    let mgr = ScrapeManager::new(vec![
        ScrapeTarget {
            instance: "alive:9100".into(),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::InProcess(exporter.render_fn()),
        },
        ScrapeTarget {
            instance: "dead:9100".into(),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: "http://127.0.0.1:1/metrics".into(),
                auth: None,
            },
        },
        ScrapeTarget {
            instance: "garbage:9100".into(),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::InProcess(Arc::new(|| "{{{not metrics".to_string())),
        },
    ]);
    let db = Tsdb::default();
    node.lock().step(15_000, 15.0);
    let stats = mgr.scrape_once(&db, 15_000, 2);
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.failed, 2);

    let up = db.select_latest(&[LabelMatcher::eq("__name__", "up")]);
    assert_eq!(up.len(), 3);
    for (labels, s) in up {
        let want = if labels.get("instance") == Some("alive:9100") { 1.0 } else { 0.0 };
        assert_eq!(s.v, want, "up for {labels:?}");
    }
}

#[test]
fn scheduler_survives_unsatisfiable_and_hostile_submissions() {
    let mut stack = CeemsStack::build_default();
    // Rejections must not wedge the queue.
    assert!(stack
        .submit(JobRequest {
            user: "evil".into(),
            account: "p".into(),
            partition: "nope".into(),
            nodes: 1,
            cores_per_node: 1,
            memory_per_node: 1 << 30,
            gpus_per_node: 0,
            walltime_s: 60,
            workload: WorkloadProfile::Idle,
        })
        .is_err());
    assert!(stack
        .submit(JobRequest {
            user: "evil".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 999,
            cores_per_node: 1,
            memory_per_node: 1 << 30,
            gpus_per_node: 0,
            walltime_s: 60,
            workload: WorkloadProfile::Idle,
        })
        .is_err());
    // A legitimate job still runs end-to-end afterwards.
    let id = stack
        .submit(JobRequest {
            user: "good".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 4,
            memory_per_node: 4 << 30,
            gpus_per_node: 0,
            walltime_s: 3600,
            workload: WorkloadProfile::CpuBound { intensity: 0.8 },
        })
        .unwrap();
    stack.run_for(120.0, 15.0);
    let sched = stack.scheduler.lock();
    assert_eq!(sched.dbd().get(id).unwrap().state, JobState::Running);
}
