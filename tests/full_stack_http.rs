//! End-to-end integration over real sockets: exporter HTTP endpoints →
//! HTTP scraping → TSDB HTTP API → load balancer → API server HTTP API.
//! This is the Fig. 1 architecture with every arrow being an actual HTTP
//! request (the in-process fast paths used elsewhere are bypassed).

use std::sync::Arc;

use ceems::http::{Client, HttpServer, ServerConfig};
use ceems::lb::acl::Authorizer;
use ceems::lb::proxy::LbConfig;
use ceems::lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems::prelude::*;
use ceems::tsdb::httpapi::api_router;
use ceems::tsdb::scrape::{ScrapeManager, ScrapeTarget, TargetSource};

#[test]
fn full_stack_over_http() {
    // 1. A small simulated deployment with one busy job.
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "alice".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(300.0, 15.0);

    // 2. Serve two exporters over real HTTP and scrape them over HTTP into
    //    a *fresh* TSDB.
    let http_tsdb = Arc::new(Tsdb::default());
    let mut servers = Vec::new();
    let mut targets = Vec::new();
    for (i, exporter) in stack.exporters.iter().take(2).enumerate() {
        let server = exporter.clone().serve().unwrap();
        targets.push(ScrapeTarget {
            instance: format!("http-node-{i}"),
            job: "ceems".into(),
            extra_labels: vec![("nodegroup".into(), "intel-dram".into())],
            source: TargetSource::Http {
                url: format!("{}/metrics", server.base_url()),
                auth: None,
            },
        });
        servers.push(server);
    }
    let mgr = ScrapeManager::new(targets);
    let stats = mgr.scrape_once(&http_tsdb, stack.clock.now_ms(), 2);
    assert_eq!(stats.failed, 0);
    assert!(stats.samples > 20, "only {} samples over HTTP", stats.samples);

    // 3. The Prometheus API over the main TSDB.
    let now = stack.clock.now_ms();
    let api = HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();

    // 4. The LB in front of it, with DB-backed ACL.
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(vec![Backend::new("b1", api.base_url())], Strategy::round_robin()),
        Authorizer::DirectDb(stack.updater.clone()),
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb.serve().unwrap();

    let q = |user: &str, query: &str| -> (u16, serde_json::Value) {
        let url = format!(
            "{}/api/v1/query?query={}",
            lb_srv.base_url(),
            ceems::http::url::encode_component(query)
        );
        let resp = Client::new()
            .with_header("X-Grafana-User", user)
            .get(&url)
            .unwrap();
        let body = serde_json::from_slice(&resp.body).unwrap_or(serde_json::Value::Null);
        (resp.status.0, body)
    };

    // Alice reads her job's power through the LB.
    let (code, body) = q("alice", "uuid:ceems_power:watts{uuid=\"slurm-1\"}");
    assert_eq!(code, 200);
    let result = body["data"]["result"].as_array().unwrap();
    assert_eq!(result.len(), 1);
    let watts: f64 = result[0]["value"][1].as_str().unwrap().parse().unwrap();
    assert!(watts > 10.0, "watts={watts}");

    // Bob cannot.
    let (code, _) = q("bob", "uuid:ceems_power:watts{uuid=\"slurm-1\"}");
    assert_eq!(code, 403);

    // 5. The API server over HTTP, sharing the updater.
    let api_server = Arc::new(ceems::apiserver::ApiServer::new(
        stack.updater.clone(),
        vec!["op".into()],
    ));
    let api_srv = api_server.serve().unwrap();
    let resp = Client::new()
        .with_header("X-Grafana-User", "alice")
        .get(&format!("{}/api/v1/units", api_srv.base_url()))
        .unwrap();
    assert_eq!(resp.status.0, 200);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["units"][0]["uuid"], "slurm-1");
    assert!(v["units"][0]["total_energy_kwh"].as_f64().unwrap() > 0.0);

    api_srv.shutdown();
    lb_srv.shutdown();
    api.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn exporter_auth_protects_scrapes_end_to_end() {
    use ceems::http::auth::BasicAuth;
    use ceems::exporter::{CeemsExporter, ExporterConfig};
    use ceems::simnode::node::{HardwareProfile, NodeSpec, SimNode};
    use parking_lot::Mutex;

    let node = Arc::new(Mutex::new(SimNode::new(
        NodeSpec {
            hostname: "n1".into(),
            profile: HardwareProfile::IntelCpu,
        },
        1,
    )));
    node.lock().step(1000, 1.0);
    let auth = BasicAuth::new("prom", "pw");
    let exporter = Arc::new(CeemsExporter::new(
        node,
        SimClock::new(),
        ExporterConfig {
            basic_auth: Some(auth.clone()),
            ..Default::default()
        },
    ));
    let server = exporter.serve().unwrap();

    let db = Tsdb::default();
    // Unauthenticated scrape fails, authenticated succeeds.
    let bad = ScrapeManager::new(vec![ScrapeTarget {
        instance: "n1".into(),
        job: "ceems".into(),
        extra_labels: vec![],
        source: TargetSource::Http {
            url: format!("{}/metrics", server.base_url()),
            auth: None,
        },
    }]);
    assert_eq!(bad.scrape_once(&db, 0, 1).failed, 1);

    let good = ScrapeManager::new(vec![ScrapeTarget {
        instance: "n1".into(),
        job: "ceems".into(),
        extra_labels: vec![],
        source: TargetSource::Http {
            url: format!("{}/metrics", server.base_url()),
            auth: Some(auth),
        },
    }]);
    let stats = good.scrape_once(&db, 0, 1);
    assert_eq!(stats.ok, 1);
    assert!(stats.samples > 5);
    server.shutdown();
}
