//! Long-term storage (Thanos role) and continuous backup (Litestream role)
//! integrated with live stack data — the right-hand side of Fig. 1.

use std::sync::Arc;

use ceems::metrics::matcher::LabelMatcher;
use ceems::prelude::*;
use ceems::relstore::backup::{restore, Replicator};
use ceems::tsdb::longterm::{FanInQuerier, LongTermStore};
use ceems::tsdb::promql::{instant_query, parse_expr, Queryable, Value};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ceems-it-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[test]
fn hot_to_cold_replication_preserves_queries() {
    let mut stack = CeemsStack::build_default();
    stack
        .submit(JobRequest {
            user: "u".into(),
            account: "p".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(1200.0, 15.0);
    let now = stack.clock.now_ms();

    // Replicate the first half into the cold store (as the hot TSDB's
    // sidecar would), then pretend hot retention dropped it.
    let cold = Arc::new(LongTermStore::new());
    let horizon = now / 2;
    let replicated = cold.replicate(&stack.tsdb, 0, horizon - 1);
    assert!(replicated > 10, "replicated {replicated} series");
    assert!(cold.block_count() == 1);
    assert!(cold.byte_len() > 0);

    let fan = FanInQuerier::new(stack.tsdb.clone(), cold.clone(), horizon);

    // A range query spanning the horizon returns a continuous series.
    let matcher = [
        LabelMatcher::eq("__name__", "ceems_compute_unit_cpu_user_seconds_total"),
        LabelMatcher::eq("uuid", "slurm-1"),
    ];
    let spanning = fan.select(&matcher, 0, now);
    assert_eq!(spanning.len(), 1);
    let hot_only = stack.tsdb.select(&matcher, horizon, now);
    assert!(spanning[0].samples.len() > hot_only[0].samples.len());
    assert!(spanning[0].samples.windows(2).all(|w| w[0].t_ms < w[1].t_ms));

    // PromQL evaluates against the fan-in view inside the cold window.
    let v = instant_query(
        &fan,
        &parse_expr("rate(ceems_compute_unit_cpu_user_seconds_total{uuid=\"slurm-1\"}[2m])")
            .unwrap(),
        horizon - 60_000,
    )
    .unwrap();
    let Value::Vector(v) = v else { panic!("not a vector") };
    assert_eq!(v.len(), 1);
    assert!(v[0].1 > 5.0, "cpu rate {}", v[0].1); // ~14 busy cores

    // Downsampled data exists at 5-minute resolution.
    let ds = cold.select_downsampled(
        &[LabelMatcher::eq("__name__", "ceems_ipmi_dcmi_power_current_watts")],
        "avg",
        0,
        i64::MAX,
    );
    assert!(!ds.is_empty());
    let raw = cold.select_raw(
        &[LabelMatcher::eq("__name__", "ceems_ipmi_dcmi_power_current_watts")],
        0,
        i64::MAX,
    );
    let raw_n: usize = raw.iter().map(|s| s.samples.len()).sum();
    let ds_n: usize = ds.iter().map(|s| s.samples.len()).sum();
    assert!(
        ds_n * 10 < raw_n,
        "downsampling should shrink sample count (raw={raw_n} ds={ds_n})"
    );
}

#[test]
fn api_db_continuous_backup_survives_crash() {
    let db_dir = tmpdir("db");
    let bk_dir = tmpdir("bk");
    let rs_dir = tmpdir("rs");

    let cfg = CeemsConfig {
        churn: Some(ChurnSettings {
            users: 6,
            projects: 2,
            arrivals_per_hour: 240.0,
        }),
        ..CeemsConfig::default()
    };
    let mut stack = CeemsStack::build(cfg, &db_dir).unwrap();
    let mut replicator = Replicator::new(&db_dir, &bk_dir).unwrap();

    // Run with periodic replication, like the litestream sidecar.
    for _ in 0..6 {
        stack.run_for(300.0, 15.0);
        replicator.sync().unwrap();
    }
    let live_units = stack
        .updater
        .lock()
        .db()
        .table(ceems::apiserver::schema::UNITS_TABLE)
        .unwrap()
        .len();
    assert!(live_units > 5, "only {live_units} units");

    // "Crash": drop the stack, restore from the backup alone.
    drop(stack);
    let restored = restore(&bk_dir, &rs_dir).unwrap();
    let restored_units = restored
        .table(ceems::apiserver::schema::UNITS_TABLE)
        .unwrap()
        .len();
    assert_eq!(restored_units, live_units);

    // Ownership checks still work on the restored database.
    let some_row = restored
        .query(
            ceems::apiserver::schema::UNITS_TABLE,
            &ceems::relstore::Query::all().limit(1),
        )
        .unwrap();
    let user = some_row[0][ceems::apiserver::schema::unit_cols::USER]
        .as_text()
        .unwrap()
        .to_string();
    let uuid = some_row[0][ceems::apiserver::schema::unit_cols::UUID]
        .as_text()
        .unwrap()
        .to_string();
    assert!(ceems::apiserver::updater::verify_ownership_in_db(
        &restored, &user, &uuid
    ));
    assert!(!ceems::apiserver::updater::verify_ownership_in_db(
        &restored,
        "intruder",
        &uuid
    ));

    for d in [db_dir, bk_dir, rs_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn cardinality_cleanup_reduces_series() {
    // E10: short jobs create series churn; the updater purges them.
    let db_dir = tmpdir("card");
    let cfg = CeemsConfig {
        cleanup_cutoff_s: 600.0, // purge anything shorter than 10 min
        churn: Some(ChurnSettings {
            users: 8,
            projects: 2,
            arrivals_per_hour: 600.0,
        }),
        ..CeemsConfig::default()
    };
    let mut stack = CeemsStack::build(cfg, &db_dir).unwrap();
    stack.run_for(3600.0, 15.0);

    let purged = stack.updater.lock().stats().units_purged;
    let deleted = stack.updater.lock().stats().series_deleted;
    assert!(purged > 0, "no short units purged");
    assert!(deleted >= purged, "deleted {deleted} < purged {purged}");

    // Purged units have no uuid-labelled series left in the TSDB.
    let upd = stack.updater.lock();
    let rows = upd
        .db()
        .query(
            ceems::apiserver::schema::UNITS_TABLE,
            &ceems::relstore::Query::all(),
        )
        .unwrap();
    drop(upd);
    let mut checked = 0;
    for r in &rows {
        let elapsed = r[ceems::apiserver::schema::unit_cols::ELAPSED_S]
            .as_real()
            .unwrap_or(0.0);
        let state = r[ceems::apiserver::schema::unit_cols::STATE]
            .as_text()
            .unwrap_or("");
        let uuid = r[ceems::apiserver::schema::unit_cols::UUID]
            .as_text()
            .unwrap();
        let terminal = matches!(state, "COMPLETED" | "FAILED" | "CANCELLED" | "TIMEOUT");
        if terminal && elapsed < 600.0 && elapsed > 0.0 {
            let series = stack
                .tsdb
                .select_latest(&[LabelMatcher::eq("uuid", uuid)]);
            assert!(series.is_empty(), "{uuid} ({elapsed}s) still has series");
            checked += 1;
        }
    }
    assert!(checked > 0, "no purged unit verified");
    std::fs::remove_dir_all(db_dir).ok();
}
